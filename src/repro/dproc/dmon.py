"""d-mon: the distributed-monitor coordinator module.

One :class:`DMon` runs per node.  It owns the two KECho channels
(monitoring + control), polls registered monitoring modules once per
polling interval, runs parameters and dynamic filters over the sampled
metrics, publishes the surviving records, and maintains the local cache
of every *remote* node's metrics (which procfs exposes under
``/proc/cluster``).

Instrumentation mirrors the paper's measurements:

* ``submit_overhead`` — kernel CPU seconds spent submitting events, one
  sample per polling iteration (Figures 6 and 7);
* ``receive_overhead`` — kernel CPU seconds spent receiving events
  between consecutive polls (Figure 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional

from repro.dproc.filters import FilterManager
from repro.dproc.metrics import (MODULE_METRICS, MetricId, metric_by_name)
from repro.dproc.modules.base import (KeyedSample, MetricSample,
                                      MonitoringModule)
from repro.dproc.params import MetricPolicy, parse_threshold_spec
from repro.errors import ControlSyntaxError, DprocError, InterruptError
from repro.kecho import (ChannelEvent, ClearParameter, ControlMessage,
                         DeployFilter, RemoveFilter, SetParameter,
                         control_message_size)
from repro.runtime.protocol import Bus, RuntimeNode
from repro.runtime.series import CounterTrace, TimeSeries
from repro.tracing.context import TraceRef

__all__ = ["DMonConfig", "DMon", "RemoteMetric", "RemoteProcs",
           "register_default_modules",
           "PEER_FRESH", "PEER_STALE", "PEER_DEAD", "PEER_UNKNOWN"]

UpdateHook = Callable[[str, MetricId, float, float], None]

#: Peer-liveness states, derived from how long ago a peer's monitoring
#: data was last heard (in units of the polling interval).
PEER_FRESH = "fresh"
PEER_STALE = "stale"
PEER_DEAD = "dead"
PEER_UNKNOWN = "unknown"


@dataclass(frozen=True)
class DMonConfig:
    """Static d-mon configuration."""

    #: Seconds between polling iterations ("every second, d-mon polls").
    poll_interval: float = 1.0
    monitor_channel: str = "dproc.monitor"
    control_channel: str = "dproc.control"
    #: Encoded event framing bytes.
    event_header_bytes: float = 40.0
    #: Encoded bytes per metric record.
    bytes_per_record: float = 12.0
    #: Extra payload bytes per event (the Figure 7 "5 KB events" knob).
    payload_padding: float = 0.0
    #: Restrict publication to these metrics (None = all registered).
    metric_subset: Optional[frozenset[MetricId]] = None
    #: Subscribe to the monitoring channel at start (import remote data).
    subscribe_monitoring: bool = True
    #: Retention bound for per-node instrumentation traces (None =
    #: unbounded).  The default keeps day-long runs on large clusters
    #: from growing without bound while never trimming within the
    #: benchmark horizons used by the paper figures.
    trace_max_samples: Optional[int] = 65536
    #: A peer unheard for more than this many polling intervals is
    #: reported *stale* ...
    stale_after_intervals: float = 3.0
    #: ... and after this many, *dead*.  Stale/dead entries stay
    #: readable (last-known values) but are flagged, never silently
    #: fresh.
    dead_after_intervals: float = 10.0

    def with_padding(self, padding: float) -> "DMonConfig":
        return replace(self, payload_padding=padding)


@dataclass
class RemoteMetric:
    """Latest known value of one metric at one remote host."""

    value: float
    timestamp: float      # when the source sampled it
    received_at: float    # when this node learned it


@dataclass
class RemoteProcs:
    """Latest per-process summary received from one remote host.

    ``kind`` is ``"top"`` (sketch-filtered: pid -> ranked weight) or
    ``"full"`` (unfiltered firehose: pid -> (cpu, mem, io)).
    """

    kind: str
    rows: dict[int, object]
    received_at: float


class DMon:
    """The per-node distributed monitor."""

    def __init__(self, node: RuntimeNode, bus: Bus,
                 config: DMonConfig | None = None) -> None:
        self.node = node
        self.bus = bus
        self.config = config or DMonConfig()
        self.modules: dict[str, MonitoringModule] = {}
        self.policies: dict[MetricId, MetricPolicy] = {}
        self.filters = FilterManager(node)
        self.running = False
        # publication state ------------------------------------------------
        self._last_sent: dict[MetricId, float] = {}
        self._last_sent_at: dict[MetricId, float] = {}
        # remote cache ------------------------------------------------------
        self.remote: dict[str, dict[MetricId, RemoteMetric]] = {}
        #: host -> latest per-process summary heard from that host.
        self.remote_procs: dict[str, RemoteProcs] = {}
        #: What this node last *published* on the keyed stream (served
        #: for its own /proc/cluster/<self>/proc_top entry).
        self.last_procs: Optional[tuple[str, dict[int, object]]] = None
        #: host -> sim time its monitoring data was last received
        #: (drives the fresh/stale/dead liveness states).
        self.peer_last_heard: dict[str, float] = {}
        self.update_hooks: list[UpdateHook] = []
        # instrumentation ---------------------------------------------------
        bound = self.config.trace_max_samples
        self.submit_overhead = TimeSeries(f"{node.name}:submit-overhead",
                                          max_samples=bound)
        self.receive_overhead = TimeSeries(
            f"{node.name}:receive-overhead", max_samples=bound)
        self.events_published = CounterTrace(f"{node.name}:published",
                                             max_samples=bound)
        self.records_published = CounterTrace(f"{node.name}:records",
                                              max_samples=bound)
        self.polls = 0
        # self-telemetry: named instruments in the node registry, bound
        # once (hot path).  All no-ops when the node disables telemetry.
        telemetry = node.telemetry
        self._t_polls = telemetry.counter("dmon.polls")
        self._t_collect = telemetry.counter("dmon.collect_seconds")
        self._t_filter = telemetry.counter("dmon.filter_seconds")
        self._t_param = telemetry.counter("dmon.param_seconds")
        self._t_submit = telemetry.counter("dmon.submit_seconds")
        self._t_receive = telemetry.counter("dmon.receive_seconds")
        self._t_events = telemetry.counter("dmon.events_published")
        self._t_records = telemetry.counter("dmon.records_published")
        self._t_poll_spans = telemetry.spans("dmon.poll")
        #: module name -> its dmon.module.<name>.collect_seconds counter.
        self._t_module_collect: dict[str, object] = {}
        #: Most recent local samples (served for the node's own
        #: /proc/cluster/<self>/ entries).
        self.last_samples: dict[MetricId, float] = {}
        #: (host, metric) -> TraceRef of the traced event that last
        #: updated the remote cache — the adaptation audit's evidence
        #: link.  Bounded by cluster size x metric count.
        self._provenance: dict[tuple[str, MetricId], TraceRef] = {}
        self._ctl_seq = 0
        self._rx_cost_mark = 0.0
        self._monitor_ep = None
        self._control_ep = None
        self._poll_proc = None
        #: Bumped on every start/stop so a stale polling process from a
        #: previous life exits instead of double-polling after restart.
        self._epoch = 0
        # cached audience check: (bus subscription version, result)
        self._audience_cache: tuple[int, bool] | None = None

    # -- lifecycle ------------------------------------------------------------

    def register_service(self, module: MonitoringModule) -> None:
        """Register a monitoring module (its collect() is the callback).

        Modules can be added at any time, before or after start —
        dproc's run-time extensibility.
        """
        if module.name in self.modules:
            raise DprocError(
                f"module {module.name!r} already registered on "
                f"{self.node.name}")
        self.modules[module.name] = module
        self._t_module_collect[module.name] = self.node.telemetry.counter(
            f"dmon.module.{module.name}.collect_seconds")
        for metric in module.metrics():
            self.policies.setdefault(metric, MetricPolicy())
        if self.running and not module.started:
            module.start()

    def start(self) -> None:
        """Connect channels, start modules, begin the polling loop.

        Restartable: after :meth:`stop` the d-mon comes back with fresh
        endpoints and instrumentation marks (the remote cache is kept —
        a rebooted node remembers, but its entries age normally).
        """
        if self.running:
            raise DprocError(f"d-mon on {self.node.name} already running")
        self.running = True
        self._epoch += 1
        # Restart hygiene: sketch filters (count-min / top-K) must not
        # carry counters across a crash/reboot — every epoch starts
        # with empty sketch state.
        self.filters.reset_state()
        self._monitor_ep = self.bus.connect(
            self.node, self.config.monitor_channel)
        self._control_ep = self.bus.connect(
            self.node, self.config.control_channel)
        self._control_ep.subscribe(self._on_control_event)
        if self.config.subscribe_monitoring:
            self._monitor_ep.subscribe(self._on_monitor_event)
        for module in self.modules.values():
            if not module.started:
                module.start()
        self._poll_proc = self.node.spawn(self._poll_loop(), name="d-mon")

    def stop(self) -> None:
        """Stop polling and detach from the channels.

        Every piece of per-life state is reset so a later
        :meth:`start` begins clean: endpoints, the audience cache, the
        receive-cost mark (a stale mark would make the first
        ``receive_overhead`` sample after restart negative) and the
        polling process.
        """
        if not self.running:
            return
        self.running = False
        self._epoch += 1
        for module in self.modules.values():
            module.stop()
        if self._monitor_ep is not None:
            self._monitor_ep.close()
        if self._control_ep is not None:
            self._control_ep.close()
        self._monitor_ep = None
        self._control_ep = None
        self._rx_cost_mark = 0.0
        self._audience_cache = None
        proc, self._poll_proc = self._poll_proc, None
        if proc is not None and proc.is_alive \
                and self.node.env.active_process is not proc:
            proc.interrupt("d-mon stopped")

    # -- the polling loop --------------------------------------------------------

    def _poll_loop(self):
        env = self.node.env
        epoch = self._epoch
        try:
            # Small deterministic stagger so an n-node cluster's d-mons
            # do not submit in lock-step.
            yield env.timeout(
                float(self.node.rng.uniform(0, self.config.poll_interval)))
            while self.running and self._epoch == epoch:
                self.poll_once()
                yield env.timeout(self.config.poll_interval)
        except InterruptError:
            return

    def poll_once(self) -> float:
        """One polling iteration; returns its submission overhead (s)."""
        now = self.node.env.now
        self.polls += 1
        self._t_polls.inc()
        costs = self.node.costs
        tracer = self.node.tracer
        root = None
        if tracer.enabled:
            # Poll counts are monotonic across restarts, so the trace
            # id is unique for the node's whole life.
            root = tracer.begin_trace(
                f"{self.node.name}:poll:{self.polls}",
                name=f"poll:{self.node.name}", stage="dmon",
                node=self.node.name, start=now, poll=self.polls)
        ctx = root.context if root is not None else None

        # 1. Collect from every registered module ("retrieve monitoring
        #    information from them at regular intervals").
        samples: dict[MetricId, float] = {}
        keyed_by_module: dict[str, list[KeyedSample]] = {}
        collect_cost = 0.0
        module_counters = self._t_module_collect
        for module in self.modules.values():
            collect_cost += costs.module_poll
            module_counters[module.name].inc(costs.module_poll)
            n_before = len(samples)
            for sample in module.collect(now):
                samples[sample.metric] = sample.value
            if module.provides_keyed:
                rows = module.keyed_collect(now)
                if rows:
                    keyed_by_module[module.name] = rows
                    # Walking the per-process table costs kernel CPU
                    # per row sampled.
                    collect_cost += costs.proc_sample * len(rows)
                if ctx is not None:
                    tracer.record_span(
                        ctx, name=f"module:{module.name}",
                        stage="module", node=self.node.name,
                        start=now, end=now,
                        samples=len(samples) - n_before,
                        keyed=len(rows),
                        cpu_seconds=costs.module_poll
                        + costs.proc_sample * len(rows))
            elif ctx is not None:
                tracer.record_span(
                    ctx, name=f"module:{module.name}", stage="module",
                    node=self.node.name, start=now, end=now,
                    samples=len(samples) - n_before,
                    cpu_seconds=costs.module_poll)
        if self.config.metric_subset is not None:
            samples = {m: v for m, v in samples.items()
                       if m in self.config.metric_subset}
        # `samples` is already a fresh dict private to this poll — hand
        # it over without another copy.
        self.last_samples = samples

        # 2. Decide what to publish: dynamic filters first, parameters
        #    for every metric not governed by a filter.  Keyed streams
        #    (per-PID tables) go through sketch filters, which compress
        #    them to emitted top-K pairs; unfiltered keyed rows publish
        #    whole.
        to_send, decide_cost, top_pairs, full_rows = self._decide(
            samples, now, ctx, keyed_by_module)
        self.node.charge_kernel_seconds(collect_cost + decide_cost)

        # 3. Publish.  A full keyed row carries three values
        #    (cpu/mem/io), a top-K pair one — the record accounting
        #    that the ablation benchmark's event-volume story rests on.
        keyed_records = len(top_pairs) + 3 * len(full_rows)
        n_records = len(to_send) + keyed_records
        submit_cost = 0.0
        if n_records and self._monitor_ep is not None:
            if self._has_audience():
                size = (self.config.event_header_bytes
                        + self.config.bytes_per_record * n_records
                        + self.config.payload_padding)
                payload = {
                    "host": self.node.name,
                    "metrics": {m: (v, now) for m, v in to_send.items()},
                }
                if top_pairs:
                    payload["proc_top"] = dict(top_pairs)
                    self.last_procs = ("top", dict(top_pairs))
                if full_rows:
                    procs = {int(pid): (cpu, mem, io)
                             for pid, cpu, mem, io in full_rows}
                    payload["procs"] = procs
                    if not top_pairs:
                        self.last_procs = ("full", procs)
                receipt = self._monitor_ep.submit(payload, size=size,
                                                  trace=ctx)
                submit_cost = receipt.cpu_seconds
                self.events_published.add(now, 1.0)
                self.records_published.add(now, float(n_records))
                self._t_events.inc()
                self._t_records.inc(n_records)
                for metric, value in to_send.items():
                    self._last_sent[metric] = value
                    self._last_sent_at[metric] = now

        # 4. Instrumentation (the paper's rdtsc-style measurements).
        self.submit_overhead.record(now, submit_cost)
        self._t_collect.inc(collect_cost)
        self._t_submit.inc(submit_cost)
        if self._monitor_ep is not None:
            rx = self._monitor_ep.receive_cpu_seconds
            self.receive_overhead.record(now, rx - self._rx_cost_mark)
            self._t_receive.inc(rx - self._rx_cost_mark)
            self._rx_cost_mark = rx
        self._t_poll_spans.record(
            "poll", now, now,
            cpu=collect_cost + decide_cost + submit_cost,
            records=n_records)
        if root is not None:
            root.finish(now, published=bool(submit_cost),
                        records=n_records,
                        cpu_seconds=collect_cost + decide_cost
                        + submit_cost)
        return submit_cost

    def _has_audience(self) -> bool:
        """Anyone (remote or local) listening on the monitoring channel?

        The bus query walks the channel membership, so the answer is
        cached and invalidated by the bus's subscription version
        counter instead of being recomputed every polling iteration.
        """
        version = self.bus.subscription_version
        cached = self._audience_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        result = bool(
            self.bus.remote_subscribers(
                self.config.monitor_channel, self.node.name)
            or (self._monitor_ep is not None
                and self._monitor_ep.is_subscriber))
        self._audience_cache = (version, result)
        return result

    def _decide(self, samples: dict[MetricId, float], now: float,
                trace=None,
                keyed: Optional[dict[str, list[KeyedSample]]] = None,
                ) -> tuple[dict[MetricId, float], float,
                           list[tuple[int, float]], list[KeyedSample]]:
        """Apply filters/parameters; returns ``(metrics to send, cpu
        cost, emitted top-K pairs, unfiltered keyed rows)``.

        A module's keyed stream is governed by whichever filter governs
        the module: the filter's ``emit()`` pairs replace the raw table
        (the sketch-compressed summary); with no filter the whole table
        publishes.  With ``trace`` (a TraceContext), every filter
        execution and parameter check records a decision span — the
        evidence the adaptation audit trail links SmartPointer
        decisions back to.
        """
        costs = self.node.costs
        cost = 0.0
        to_send: dict[MetricId, float] = {}
        top_pairs: list[tuple[int, float]] = []
        full_rows: list[KeyedSample] = []
        keyed = keyed or {}
        tracer = self.node.tracer if trace is not None else None

        global_filter = self.filters.global_filter
        if global_filter is not None:
            records = self.filters.input_array(samples, self._last_sent,
                                               now)
            all_rows = [row for rows in keyed.values() for row in rows]
            result = self.filters.run(global_filter, records,
                                      keyed=all_rows or None)
            cost += costs.filter_exec
            self._t_filter.inc(costs.filter_exec)
            for record in result.outputs:
                metric = metric_by_name(record.name)
                if metric in samples:
                    to_send[metric] = record.value
            top_pairs = result.emitted
            if tracer is not None:
                extra = {"emitted": len(top_pairs)} if keyed else {}
                tracer.record_span(
                    trace, name=f"filter:{global_filter.filter_id}",
                    stage="dmon.filter", node=self.node.name,
                    start=now, end=now,
                    filter_id=global_filter.filter_id, scope="*",
                    kept=tuple(sorted(m.name.lower() for m in to_send)),
                    **extra)
            return to_send, cost, top_pairs, full_rows

        filter_input: Optional[list] = None
        for module in self.modules.values():
            rows = keyed.get(module.name)
            scoped = self.filters.filter_for(module.name)
            if scoped is not None:
                if filter_input is None:
                    filter_input = self.filters.input_array(
                        samples, self._last_sent, now)
                result = self.filters.run(scoped, filter_input,
                                          keyed=rows)
                cost += costs.filter_exec
                self._t_filter.inc(costs.filter_exec)
                module_metrics = set(module.metrics())
                kept = []
                for record in result.outputs:
                    metric = metric_by_name(record.name)
                    if metric in module_metrics and metric in samples:
                        to_send[metric] = record.value
                        kept.append(metric.name.lower())
                top_pairs.extend(result.emitted)
                if tracer is not None:
                    extra = ({"emitted": len(result.emitted)}
                             if rows else {})
                    tracer.record_span(
                        trace, name=f"filter:{scoped.filter_id}",
                        stage="dmon.filter", node=self.node.name,
                        start=now, end=now,
                        filter_id=scoped.filter_id, scope=module.name,
                        kept=tuple(sorted(kept)), **extra)
            else:
                if rows:
                    full_rows.extend(rows)
                for metric in module.metrics():
                    if metric not in samples:
                        continue
                    cost += costs.param_check
                    self._t_param.inc(costs.param_check)
                    policy = self.policies[metric]
                    send = policy.should_send(
                        samples[metric], now,
                        self._last_sent.get(metric),
                        self._last_sent_at.get(metric))
                    if send:
                        to_send[metric] = samples[metric]
                    if tracer is not None:
                        tracer.record_span(
                            trace,
                            name=f"param:{metric.name.lower()}",
                            stage="dmon.param", node=self.node.name,
                            start=now, end=now,
                            metric=metric.name.lower(),
                            value=samples[metric],
                            decision="send" if send else "suppress",
                            rule=policy.describe())
        return to_send, cost, top_pairs, full_rows

    # -- receiving remote monitoring data ------------------------------------------

    def _on_monitor_event(self, event: ChannelEvent) -> None:
        payload = event.payload
        host = payload["host"]
        if host == self.node.name:
            return
        store = self.remote.get(host)
        if store is None:
            store = self.remote[host] = {}
        now = self.node.env.now
        self.peer_last_heard[host] = now
        top = payload.get("proc_top")
        if top is not None:
            self.remote_procs[host] = RemoteProcs(
                kind="top", rows=dict(top), received_at=now)
        else:
            full = payload.get("procs")
            if full is not None:
                self.remote_procs[host] = RemoteProcs(
                    kind="full", rows=dict(full), received_at=now)
        if event.trace is not None:
            self.node.tracer.record_span(
                event.trace, name=f"update:{self.node.name}",
                stage="update", node=self.node.name, start=now, end=now,
                source=host, records=len(payload["metrics"]))
            ref = TraceRef(trace_id=event.trace.trace_id,
                           received_at=now)
            for metric in payload["metrics"]:
                self._provenance[(host, metric)] = ref
        hooks = self.update_hooks
        if hooks:
            for metric, (value, ts) in payload["metrics"].items():
                self._store_remote(store, metric, value, ts, now)
                for hook in hooks:
                    hook(host, metric, value, ts)
        else:
            for metric, (value, ts) in payload["metrics"].items():
                self._store_remote(store, metric, value, ts, now)

    @staticmethod
    def _store_remote(store: dict[MetricId, RemoteMetric],
                      metric: MetricId, value: float, ts: float,
                      now: float) -> None:
        # Update the cached record in place: one RemoteMetric per
        # (host, metric) for the life of the d-mon instead of a fresh
        # allocation per record per event.
        rec = store.get(metric)
        if rec is None:
            store[metric] = RemoteMetric(value=value, timestamp=ts,
                                         received_at=now)
        else:
            rec.value = value
            rec.timestamp = ts
            rec.received_at = now

    def remote_value(self, host: str,
                     metric: MetricId) -> Optional[RemoteMetric]:
        """Latest cached value of ``metric`` at ``host`` (None if unseen)."""
        return self.remote.get(host, {}).get(metric)

    def provenance(self, host: str,
                   metric: MetricId) -> Optional[TraceRef]:
        """Trace reference of the event that last updated (host, metric).

        None when the cache entry was written by an untraced (or
        sampled-out) event.  This is what the SmartPointer server hands
        to :func:`repro.tracing.adaptation_audit` as decision evidence.
        """
        return self._provenance.get((host, metric))

    # -- peer liveness ---------------------------------------------------------

    def peer_age(self, host: str) -> float:
        """Seconds since ``host``'s monitoring data was last heard
        (``inf`` if never; 0 for the local node)."""
        if host == self.node.name:
            return 0.0
        heard = self.peer_last_heard.get(host)
        if heard is None:
            return math.inf
        return self.node.env.now - heard

    def peer_state(self, host: str) -> str:
        """Liveness of one peer: fresh, stale, dead or unknown.

        Entries transition fresh → stale → dead as polls go unheard;
        a cached value is therefore never *silently* fresh — consumers
        (procfs, :class:`~repro.dproc.aggregate.ClusterView`) can see
        exactly how much to trust it.
        """
        age = self.peer_age(host)
        if math.isinf(age):
            return PEER_UNKNOWN
        interval = self.config.poll_interval
        if age > self.config.dead_after_intervals * interval:
            return PEER_DEAD
        if age > self.config.stale_after_intervals * interval:
            return PEER_STALE
        return PEER_FRESH

    def peer_states(self) -> dict[str, str]:
        """Liveness of every peer ever heard from (sorted by host)."""
        return {host: self.peer_state(host)
                for host in sorted(self.peer_last_heard)}

    # -- local customization API ----------------------------------------------------

    def resolve_metrics(self, spec: str) -> list[MetricId]:
        """Resolve a control-file metric spec to concrete metric ids.

        ``spec`` may be '*' (all resources), a module name ('cpu'),
        or one metric name ('loadavg').
        """
        spec = spec.strip().lower()
        if spec == "*":
            # Modules may share metric ids: de-duplicate, keeping the
            # stable first-registration order.
            return list(dict.fromkeys(
                m for module in self.modules.values()
                for m in module.metrics()))
        if spec in self.modules:
            return list(self.modules[spec].metrics())
        if spec in MODULE_METRICS:
            return list(MODULE_METRICS[spec])
        return [metric_by_name(spec)]

    def apply_control(self, msg: ControlMessage) -> None:
        """Apply a control message to this d-mon (local or remote origin)."""
        if isinstance(msg, SetParameter):
            # Validate the whole message before touching any policy, so
            # a rejected control write leaves no partial state behind.
            if msg.parameter not in ("period", "threshold"):
                raise ControlSyntaxError(
                    f"unknown parameter {msg.parameter!r}")
            metrics = self.resolve_metrics(msg.metric)
            if msg.parameter == "period":
                try:
                    seconds = float(msg.spec)
                except ValueError:
                    raise ControlSyntaxError(
                        f"bad period {msg.spec!r}") from None
                if not seconds > 0 or not math.isfinite(seconds):
                    raise ControlSyntaxError(
                        f"update period must be positive, got "
                        f"{msg.spec!r}")
                for metric in metrics:
                    self.policies.setdefault(
                        metric, MetricPolicy()).set_period(seconds)
            else:
                rule = parse_threshold_spec(msg.spec.split())
                for metric in metrics:
                    self.policies.setdefault(
                        metric, MetricPolicy()).add_threshold(rule)
        elif isinstance(msg, ClearParameter):
            # The parameter name is validated even when no policy exists
            # yet for any resolved metric.
            if msg.parameter not in ("period", "threshold"):
                raise ControlSyntaxError(
                    f"unknown parameter {msg.parameter!r}")
            for metric in self.resolve_metrics(msg.metric):
                policy = self.policies.get(metric)
                if policy is None:
                    continue
                if msg.parameter == "period":
                    policy.clear_period()
                else:
                    policy.clear_thresholds()
        elif isinstance(msg, DeployFilter):
            scope = msg.metric if msg.metric in ("*", *self.modules) \
                else self._scope_of(msg.metric)
            self.filters.deploy(msg.source, scope=scope,
                                filter_id=msg.filter_id or None)
        elif isinstance(msg, RemoveFilter):
            self.filters.remove(msg.filter_id)
        else:
            raise DprocError(
                f"unsupported control message {type(msg).__name__}")

    def _scope_of(self, metric_spec: str) -> str:
        metric = metric_by_name(metric_spec)
        for name, module in self.modules.items():
            if metric in module.metrics():
                return name
        raise DprocError(
            f"metric {metric_spec!r} is not produced by any registered "
            f"module")

    def send_control(self, msg: ControlMessage) -> None:
        """Distribute a control message over the control channel.

        Messages addressed to this host are also applied locally.
        """
        if self._control_ep is None:
            raise DprocError("d-mon not started: no control channel")
        now = self.node.env.now
        tracer = self.node.tracer
        root = None
        if tracer.enabled:
            self._ctl_seq += 1
            root = tracer.begin_trace(
                f"{self.node.name}:ctl:{self._ctl_seq}",
                name=f"control:{type(msg).__name__}", stage="control",
                node=self.node.name, start=now,
                kind=type(msg).__name__,
                target=getattr(msg, "metric", ""))
        self._control_ep.submit(
            msg, size=control_message_size(msg),
            trace=root.context if root is not None else None)
        if msg.addressed_to(self.node.name):
            self.apply_control(msg)
            if root is not None:
                tracer.record_span(
                    root.context, name=f"apply:{self.node.name}",
                    stage="update", node=self.node.name,
                    start=now, end=now, kind=type(msg).__name__)
        if root is not None:
            root.finish(now)

    def _on_control_event(self, event: ChannelEvent) -> None:
        msg = event.payload
        if not isinstance(msg, ControlMessage):
            raise DprocError(
                f"non-control payload on control channel: {msg!r}")
        if msg.sender == self.node.name:
            return  # we applied our own message at send time
        if msg.addressed_to(self.node.name):
            self.apply_control(msg)
            if event.trace is not None:
                now = self.node.env.now
                self.node.tracer.record_span(
                    event.trace, name=f"apply:{self.node.name}",
                    stage="update", node=self.node.name,
                    start=now, end=now, kind=type(msg).__name__)

    # -- instrumentation helpers ----------------------------------------------------

    def mean_submit_overhead(self, since: float = 0.0) -> float:
        """Average submission overhead per polling iteration (seconds)."""
        return self.submit_overhead.mean(since)

    def mean_receive_overhead(self, since: float = 0.0) -> float:
        """Average receive overhead per polling iteration (seconds)."""
        return self.receive_overhead.mean(since)


def register_default_modules(dmon: DMon,
                             names: Iterable[str] = ("cpu", "mem",
                                                     "disk", "net",
                                                     "pmc")) -> None:
    """Attach the standard module set (or a named subset) to a d-mon."""
    from repro.dproc.modules import (CpuMon, DiskMon, MemMon, NetMon,
                                     PmcMon, ProcMon, SelfMon)
    factory = {"cpu": CpuMon, "mem": MemMon, "disk": DiskMon,
               "net": NetMon, "pmc": PmcMon, "proc": ProcMon,
               "dproc": SelfMon}
    for name in names:
        try:
            cls = factory[name]
        except KeyError:
            raise DprocError(f"no standard module named {name!r}") \
                from None
        dmon.register_service(cls(dmon.node))
