"""Wide-area grid federation of dproc sites (the paper's future work).

"Our future work will focus on using dproc in wide-area grids …"
(paper §5).  This module federates independent dproc clusters over
simulated WAN links:

* each *site* is a cluster with its own dproc deployment and a
  designated **gateway** node;
* gateways periodically condense their site's state into a
  :class:`SiteSummary` (using the staleness-aware
  :class:`~repro.dproc.aggregate.ClusterView`) and exchange summaries
  with peer gateways over :class:`WanLink` connections — FIFO pipes
  with WAN-scale latency and limited bandwidth;
* remote sites appear on the gateway's /proc tree under
  ``/proc/grid/<site>/...``, mirroring how remote *nodes* appear under
  ``/proc/cluster``.

Summaries, not raw streams, cross the WAN: the intra-site monitoring
rate never leaves the site, which is the point of a hierarchical
design at grid scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.dproc.aggregate import ClusterView
from repro.dproc.metrics import MetricId
from repro.dproc.procfs import ProcFile
from repro.dproc.toolkit import Dproc
from repro.errors import DprocError, NetworkError
from repro.sim.cluster import Cluster
from repro.sim.core import Environment
from repro.sim.node import Node
from repro.sim.stores import Store
from repro.sim.trace import CounterTrace
from repro.units import mbps, msec

__all__ = ["SiteSummary", "WanLink", "Site", "GridFederation"]

#: Encoded size of one site summary on the WAN (bytes).
SUMMARY_BYTES = 160.0


@dataclass
class SiteSummary:
    """Condensed state of one site, as shipped across the WAN."""

    site: str
    n_nodes: int
    mean_loadavg: float
    total_free_bytes: float
    max_diskusage: float
    min_net_bandwidth: float
    generated_at: float
    received_at: Optional[float] = None

    FIELDS = ("n_nodes", "mean_loadavg", "total_free_bytes",
              "max_diskusage", "min_net_bandwidth")


class WanLink:
    """A FIFO wide-area pipe between two gateway nodes.

    Messages serialise at ``bandwidth`` and arrive after ``latency``;
    both gateways pay the usual kernel messaging costs.

    WAN links fail: while the link is marked down (:meth:`fail_link`)
    or the destination gateway is down (the ``node_down`` probe, wired
    to the fault plane by :meth:`GridFederation.connect`), deliveries
    are retried with exponential backoff — ``retry_initial`` doubling
    up to ``retry_max`` seconds — instead of being dropped, so site
    summaries resume on their own after a WAN outage heals.
    """

    def __init__(self, env: Environment, a: Node, b: Node,
                 bandwidth: float = mbps(10),
                 latency: float = msec(40),
                 retry_initial: float = 0.5,
                 retry_max: float = 8.0,
                 node_down: Optional[Callable[[str], bool]] = None)\
            -> None:
        if bandwidth <= 0 or latency < 0:
            raise NetworkError("invalid WAN link parameters")
        if retry_initial <= 0 or retry_max < retry_initial:
            raise NetworkError("invalid WAN retry parameters")
        if a.name == b.name:
            raise NetworkError(
                f"WAN endpoints need distinct node names, both are "
                f"{a.name!r} — name federated sites' nodes uniquely")
        self.env = env
        self.endpoints = {a.name: a, b.name: b}
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.retry_initial = float(retry_initial)
        self.retry_max = float(retry_max)
        #: True while the named gateway is unreachable (defaults to
        #: never; GridFederation wires it to the cluster fault planes).
        self.node_down = node_down or (lambda host: False)
        #: Administratively/fault down: deliveries stall and retry.
        self.down = False
        self.bytes_carried = CounterTrace(f"wan:{a.name}<->{b.name}")
        self.retries = CounterTrace(f"wan:{a.name}<->{b.name}:retries")
        # self-telemetry on each endpoint's node registry: queue depth
        # and retry/backoff activity show up in that node's overhead
        # report (no-ops when the node disables telemetry).
        self._telemetry = {
            name: {
                "deliveries": n.telemetry.counter("wan.deliveries"),
                "retries": n.telemetry.counter("wan.retries"),
                "backoff": n.telemetry.counter("wan.backoff_seconds"),
                "queue": n.telemetry.gauge("wan.queue_depth"),
            }
            for name, n in self.endpoints.items()
        }
        self._queues: dict[str, Store] = {a.name: Store(env),
                                          b.name: Store(env)}
        #: Per-direction send counters (trace ids for WAN transfers).
        self._seq: dict[str, int] = {a.name: 0, b.name: 0}
        self._handlers: dict[str, object] = {}
        for name in self.endpoints:
            env.process(self._pump(name), name=f"wan-pump:{name}")

    def fail_link(self) -> None:
        """Mark the link down; queued messages stall and back off."""
        self.down = True

    def restore_link(self) -> None:
        """Bring the link back; stalled deliveries retry and drain."""
        self.down = False

    def other(self, name: str) -> Node:
        try:
            (peer,) = [n for n in self.endpoints.values()
                       if n.name != name]
        except ValueError:
            raise NetworkError(f"{name!r} is not on this WAN link") \
                from None
        return peer

    def bind(self, gateway: str, handler) -> None:
        """Register the receive callback at one endpoint."""
        if gateway not in self.endpoints:
            raise NetworkError(f"{gateway!r} is not on this WAN link")
        self._handlers[gateway] = handler

    def send(self, src: str, payload: object,
             size: float = SUMMARY_BYTES) -> None:
        """Queue a message from ``src`` toward the other endpoint."""
        if src not in self.endpoints:
            raise NetworkError(f"{src!r} is not on this WAN link")
        node = self.endpoints[src]
        node.charge_kernel_seconds(
            node.costs.encode_cost(size) + node.costs.send_cost(size, 1))
        dst = self.other(src).name
        span = None
        tracer = node.tracer
        if tracer.enabled:
            # The id names both endpoints: one gateway can sit on many
            # links, and per-direction counters alone would collide.
            self._seq[src] += 1
            span = tracer.begin_trace(
                f"wan:{src}->{dst}:{self._seq[src]}",
                name=f"wan:{src}->{dst}", stage="wan", node=src,
                start=self.env.now, dst=dst, size=float(size))
        self._telemetry[dst]["queue"].adjust(1)
        self._queues[dst].put((payload, size, span))

    def _pump(self, dst: str):
        queue = self._queues[dst]
        telemetry = self._telemetry[dst]
        while True:
            payload, size, span = yield queue.get()
            telemetry["queue"].adjust(-1)
            backoff = self.retry_initial
            n_retries = 0
            backoff_seconds = 0.0
            while True:
                # A retry resends the bytes: the serialisation and
                # propagation delay is paid again on every attempt.
                yield self.env.timeout(
                    size / self.bandwidth + self.latency)
                if not self.down and not self.node_down(dst):
                    break
                self.retries.add(self.env.now, 1.0)
                telemetry["retries"].inc()
                telemetry["backoff"].inc(backoff)
                n_retries += 1
                backoff_seconds += backoff
                yield self.env.timeout(backoff)
                backoff = min(self.retry_max, backoff * 2.0)
            node = self.endpoints[dst]
            node.charge_kernel_seconds(node.costs.receive_cost(size))
            telemetry["deliveries"].inc()
            now = self.env.now
            self.bytes_carried.add(now, size)
            if span is not None:
                if n_retries:
                    span.annotate(retries=n_retries,
                                  backoff_seconds=backoff_seconds)
                # Record via the sender's collector (the one that
                # began the trace; attach the same collector to both
                # sites to trace a federation end to end).
                self.other(dst).tracer.record_span(
                    span.context, name=f"deliver:{dst}",
                    stage="delivery", node=dst, start=now, end=now,
                    latency=now - span.record.start)
                span.finish(now)
            handler = self._handlers.get(dst)
            if handler is not None:
                handler(payload)  # type: ignore[operator]


@dataclass
class Site:
    """One federated cluster."""

    name: str
    cluster: Cluster
    dprocs: dict[str, Dproc]
    gateway: str

    @property
    def gateway_dproc(self) -> Dproc:
        return self.dprocs[self.gateway]


class GridFederation:
    """Gateways exchanging site summaries over WAN links."""

    def __init__(self, env: Environment,
                 summary_period: float = 5.0,
                 staleness: float = 10.0) -> None:
        if summary_period <= 0:
            raise DprocError("summary period must be positive")
        self.env = env
        self.summary_period = float(summary_period)
        self.staleness = float(staleness)
        self.sites: dict[str, Site] = {}
        self._links: dict[str, list[WanLink]] = {}
        #: site -> (peer site -> latest summary) as known at that site.
        self.known: dict[str, dict[str, SiteSummary]] = {}
        self.running = False

    # -- construction ------------------------------------------------------------

    def add_site(self, name: str, cluster: Cluster,
                 dprocs: dict[str, Dproc], gateway: str) -> Site:
        if name in self.sites:
            raise DprocError(f"site {name!r} already federated")
        if gateway not in dprocs:
            raise DprocError(
                f"gateway {gateway!r} has no dproc instance")
        site = Site(name=name, cluster=cluster, dprocs=dprocs,
                    gateway=gateway)
        self.sites[name] = site
        self._links[name] = []
        self.known[name] = {}
        return site

    def connect(self, site_a: str, site_b: str,
                bandwidth: float = mbps(10),
                latency: float = msec(40),
                retry_initial: float = 0.5,
                retry_max: float = 8.0) -> WanLink:
        """Lay a WAN link between two sites' gateways.

        The link's ``node_down`` probe consults each site's cluster
        fault plane, so an injected gateway crash stalls summary
        exchange (with backoff) instead of losing summaries.
        """
        try:
            a = self.sites[site_a]
            b = self.sites[site_b]
        except KeyError as exc:
            raise DprocError(f"unknown site {exc.args[0]!r}") from None

        owners = {a.gateway: a, b.gateway: b}

        def gateway_down(host: str) -> bool:
            site = owners.get(host)
            if site is None:
                return False
            faults = site.cluster.fabric.faults
            return faults is not None and faults.node_down(host)

        link = WanLink(self.env,
                       a.cluster[a.gateway], b.cluster[b.gateway],
                       bandwidth=bandwidth, latency=latency,
                       retry_initial=retry_initial,
                       retry_max=retry_max,
                       node_down=gateway_down)
        link.bind(a.gateway, lambda payload, s=site_a:
                  self._receive(s, payload))
        link.bind(b.gateway, lambda payload, s=site_b:
                  self._receive(s, payload))
        self._links[site_a].append(link)
        self._links[site_b].append(link)
        return link

    # -- operation ------------------------------------------------------------

    def start(self) -> "GridFederation":
        if self.running:
            raise DprocError("federation already running")
        if not self.sites:
            raise DprocError("no sites to federate")
        self.running = True
        for site in self.sites.values():
            self.env.process(self._gateway_loop(site),
                             name=f"grid:{site.name}")
            self._mount_grid_tree(site)
        return self

    def stop(self) -> None:
        self.running = False

    def summarize_site(self, site: Site) -> SiteSummary:
        """Condense one site's current state via its gateway's view."""
        view = ClusterView(site.gateway_dproc,
                           staleness=self.staleness)
        free = view.total(MetricId.FREEMEM)
        mean_load = view.mean(MetricId.LOADAVG)
        _h, max_disk = view.extreme(MetricId.DISKUSAGE, largest=True)
        _h, min_bw = view.extreme(MetricId.NET_BANDWIDTH, largest=False)
        return SiteSummary(
            site=site.name,
            n_nodes=len(site.cluster),
            mean_loadavg=mean_load,
            total_free_bytes=free,
            max_diskusage=max_disk,
            min_net_bandwidth=min_bw,
            generated_at=self.env.now)

    def _gateway_loop(self, site: Site):
        rng = site.cluster[site.gateway].rng
        yield self.env.timeout(float(
            rng.uniform(0, self.summary_period)))
        while self.running:
            summary = self.summarize_site(site)
            self.known[site.name][site.name] = summary
            for link in self._links[site.name]:
                link.send(site.gateway, summary)
            yield self.env.timeout(self.summary_period)

    def _receive(self, at_site: str, payload: object) -> None:
        assert isinstance(payload, SiteSummary)
        payload.received_at = self.env.now
        self.known[at_site][payload.site] = payload

    # -- queries ---------------------------------------------------------------

    def summary(self, at_site: str,
                of_site: str) -> Optional[SiteSummary]:
        """What ``at_site``'s gateway knows about ``of_site``."""
        return self.known.get(at_site, {}).get(of_site)

    def least_loaded_site(self, at_site: str) -> Optional[str]:
        """The known site with the lowest mean load (grid scheduling)."""
        candidates = {
            name: s for name, s in self.known.get(at_site, {}).items()
            if s.mean_loadavg == s.mean_loadavg  # not NaN
        }
        if not candidates:
            return None
        return min(candidates,
                   key=lambda n: candidates[n].mean_loadavg)

    # -- procfs integration --------------------------------------------------------

    def _mount_grid_tree(self, site: Site) -> None:
        """Expose peer-site summaries under /proc/grid/ at the gateway."""
        dproc = site.gateway_dproc

        def reader(of_site: str, fieldname: str):
            def read() -> str:
                summary = self.summary(site.name, of_site)
                if summary is None:
                    return "nan\n"
                return f"{getattr(summary, fieldname):.6g}\n"
            return read

        for other in self.sites:
            for fieldname in SiteSummary.FIELDS:
                dproc.procfs.mount(
                    f"/proc/grid/{other}/{fieldname}",
                    ProcFile(reader(other, fieldname)))
