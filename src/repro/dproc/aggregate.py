"""Cluster-wide aggregate views over dproc monitoring data.

The paper motivates dproc with management activities — load balancing,
task placement, resource distribution — that need *cluster-wide*
answers ("which node has a free CPU and the most memory?"), not single
readings.  :class:`ClusterView` layers those queries over one node's
dproc instance: it aggregates the local ``/proc/cluster`` cache with
explicit staleness handling, so a consumer never acts on data older
than it can tolerate.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.dproc.dmon import PEER_DEAD, PEER_FRESH
from repro.dproc.metrics import MetricId
from repro.dproc.toolkit import Dproc
from repro.errors import DprocError

__all__ = ["ClusterView"]


class ClusterView:
    """Aggregated, staleness-aware view of the whole cluster."""

    def __init__(self, dproc: Dproc, staleness: float = 5.0) -> None:
        """``staleness`` — maximum age (seconds) of a remote reading
        before it is treated as unknown."""
        if staleness <= 0:
            raise DprocError("staleness bound must be positive")
        self.dproc = dproc
        self.staleness = float(staleness)

    # -- raw snapshots ------------------------------------------------------------

    def snapshot(self, metric: MetricId,
                 include_self: bool = True) -> dict[str, float]:
        """Fresh readings of ``metric`` per host (stale ones omitted)."""
        now = self.dproc.node.env.now
        dmon = self.dproc.dmon
        values: dict[str, float] = {}
        for host in self.dproc.hosts():
            if host == self.dproc.node.name:
                if include_self and metric in dmon.last_samples:
                    values[host] = dmon.last_samples[metric]
                continue
            remote = dmon.remote_value(host, metric)
            if remote is None:
                continue
            if now - remote.received_at > self.staleness:
                continue
            values[host] = remote.value
        return values

    def age(self, host: str, metric: MetricId) -> float:
        """Seconds since ``host``'s ``metric`` was last received
        (``inf`` if never; 0 for the local node)."""
        if host == self.dproc.node.name:
            return 0.0
        remote = self.dproc.dmon.remote_value(host, metric)
        if remote is None:
            return math.inf
        return self.dproc.node.env.now - remote.received_at

    # -- aggregates ---------------------------------------------------------------

    def mean(self, metric: MetricId) -> float:
        """Mean over fresh readings (NaN when nothing is fresh)."""
        values = self.snapshot(metric)
        if not values:
            return math.nan
        return sum(values.values()) / len(values)

    def total(self, metric: MetricId) -> float:
        """Sum over fresh readings (NaN when nothing is fresh)."""
        values = self.snapshot(metric)
        return sum(values.values()) if values else math.nan

    def extreme(self, metric: MetricId,
                largest: bool = True) -> tuple[Optional[str], float]:
        """(host, value) with the largest/smallest fresh reading."""
        values = self.snapshot(metric)
        if not values:
            return None, math.nan
        pick = max if largest else min
        host = pick(values, key=lambda h: values[h])
        return host, values[host]

    # -- liveness -----------------------------------------------------------------

    def liveness(self) -> dict[str, str]:
        """Per-host liveness state for every mounted cluster member.

        Hosts whose monitoring data has never arrived are ``unknown``;
        the rest transition fresh → stale → dead as their d-mon's polls
        go unheard (see :meth:`repro.dproc.dmon.DMon.peer_state`).
        """
        dmon = self.dproc.dmon
        return {host: dmon.peer_state(host)
                for host in self.dproc.hosts()}

    def live_hosts(self) -> list[str]:
        """Hosts currently reported *fresh* (sorted)."""
        return sorted(h for h, state in self.liveness().items()
                      if state == PEER_FRESH)

    def dead_hosts(self) -> list[str]:
        """Hosts currently reported *dead* (sorted)."""
        return sorted(h for h, state in self.liveness().items()
                      if state == PEER_DEAD)

    # -- placement-style queries ---------------------------------------------------

    def hosts_where(self, metric: MetricId,
                    predicate: Callable[[float], bool]) -> list[str]:
        """Hosts whose fresh reading satisfies ``predicate`` (sorted)."""
        return sorted(host
                      for host, value in self.snapshot(metric).items()
                      if predicate(value))

    def least_loaded(self) -> Optional[str]:
        """Host with the lowest fresh load average."""
        host, _value = self.extreme(MetricId.LOADAVG, largest=False)
        return host

    def most_free_memory(self) -> Optional[str]:
        """Host with the most fresh free memory."""
        host, _value = self.extreme(MetricId.FREEMEM, largest=True)
        return host

    def placement_candidates(self, min_free_bytes: float = 0.0,
                             max_loadavg: float = math.inf
                             ) -> list[str]:
        """Hosts satisfying both a memory floor and a load ceiling —
        the scheduler query the paper's §3 example builds up to."""
        memory_ok = set(self.hosts_where(
            MetricId.FREEMEM, lambda v: v >= min_free_bytes))
        load_ok = set(self.hosts_where(
            MetricId.LOADAVG, lambda v: v <= max_loadavg))
        return sorted(memory_ok & load_ok)
