"""The Dproc toolkit facade: one object per node, /proc included.

This is the user-visible surface of the reproduction: deploy dproc on a
cluster, then read remote resource data through the familiar /proc
hierarchy and customize monitoring by writing to control files —
exactly the workflow of the paper's §2.

Example::

    env = Environment()
    cluster = build_cluster(env, nodes=3)
    dprocs = deploy_dproc(cluster)
    env.run(until=5.0)
    loadavg = dprocs["alan"].read("/proc/cluster/maui/loadavg")
    dprocs["alan"].write("/proc/cluster/maui/control",
                         "period cpu 2\\nthreshold cpu above 0.8")
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional, Sequence

from repro.dproc.control_api import ControlRequest
from repro.dproc.control_file import parse_control_text
from repro.dproc.dmon import DMon, DMonConfig, register_default_modules
from repro.dproc.metrics import METRIC_FILES, MetricId
from repro.dproc.procfs import ProcFS, ProcFile
from repro.errors import DprocError
from repro.kecho import KechoBus
from repro.runtime.protocol import Bus, NodeGroup, RuntimeNode
from repro.telemetry import MONITOR_CPU_COUNTERS, render_text

__all__ = ["Dproc", "deploy_dproc"]

DEFAULT_MODULES = ("cpu", "mem", "disk", "net", "pmc")

#: Builds one monitoring module for (module name, node).  Backends with
#: their own collectors (the live backend's host modules) pass one of
#: these; None selects the standard simulator module set.
ModuleFactory = Callable[[str, RuntimeNode], object]


class Dproc:
    """Per-node dproc instance: d-mon + the /proc view."""

    def __init__(self, node: RuntimeNode, bus: Bus,
                 config: DMonConfig | None = None,
                 modules: Sequence[str] = DEFAULT_MODULES,
                 module_factory: Optional[ModuleFactory] = None) -> None:
        self.node = node
        self.bus = bus
        self.dmon = DMon(node, bus, config)
        if module_factory is None:
            register_default_modules(self.dmon, modules)
        else:
            for name in modules:
                self.dmon.register_service(module_factory(name, node))
        self.procfs = ProcFS()
        self._control_log: dict[str, list[str]] = {}
        self._mounted_hosts: set[str] = set()
        self._mount_standard()
        node.attach_service("dproc", self)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Start d-mon (channels, modules, polling)."""
        self.dmon.start()

    def stop(self) -> None:
        self.dmon.stop()

    # -- the /proc interface -----------------------------------------------------

    def read(self, path: str) -> str:
        """Read a pseudo-file (e.g. ``/proc/cluster/maui/loadavg``)."""
        return self.procfs.read(path)

    def write(self, path: str, text) -> None:
        """Write to a pseudo-file (only ``control`` files accept writes).

        ``text`` is the raw string to write, or a
        :class:`~repro.dproc.control_api.ControlRequest` which is
        rendered to the control-file grammar first.
        """
        if isinstance(text, ControlRequest):
            text = text.render()
        self.procfs.write(path, text)

    def listdir(self, path: str) -> list[str]:
        return self.procfs.listdir(path)

    def add_cluster_node(self, host: str) -> None:
        """Expose ``/proc/cluster/<host>/`` for a (possibly remote) node."""
        if host in self._mounted_hosts:
            raise DprocError(f"{host!r} already in /proc/cluster")
        self._mounted_hosts.add(host)
        base = f"/proc/cluster/{host}"
        local = host == self.node.name
        for metric, fname in METRIC_FILES.items():
            self.procfs.mount(
                f"{base}/{fname}",
                ProcFile(self._metric_reader(host, metric, local)))
        self.procfs.mount(
            f"{base}/control",
            ProcFile(read_fn=lambda h=host: self._control_read(h),
                     write_fn=lambda text, h=host:
                     self._control_write(h, text)))
        self.procfs.mount(
            f"{base}/status",
            ProcFile(read_fn=lambda h=host: self._status_read(h)))
        # Per-process summary (the keyed stream): the local node shows
        # what it last published, remote hosts what was last received.
        self.procfs.mount(
            f"{base}/proc_top",
            ProcFile(read_fn=lambda h=host: self._proc_top_read(h)))
        # Self-telemetry, dogfooded through /proc: dproc reporting on
        # dproc.  The local node renders its live registry; remote
        # hosts render whatever their SELF_MON module published.
        self.procfs.mount(
            f"{base}/dproc/overhead",
            ProcFile(read_fn=lambda h=host: self._overhead_read(h)))
        self.procfs.mount(
            f"{base}/dproc/channels",
            ProcFile(read_fn=lambda h=host:
                     self._telemetry_read(h, "kecho.")))
        self.procfs.mount(
            f"{base}/dproc/dmon",
            ProcFile(read_fn=lambda h=host:
                     self._telemetry_read(h, "dmon.")))

    def hosts(self) -> list[str]:
        """Nodes visible under /proc/cluster."""
        return sorted(self._mounted_hosts)

    # -- convenience accessors -----------------------------------------------------

    def metric(self, host: str, metric: MetricId) -> float:
        """Numeric value of a metric for ``host`` (NaN until known)."""
        if host == self.node.name:
            return self.dmon.last_samples.get(metric, math.nan)
        remote = self.dmon.remote_value(host, metric)
        return remote.value if remote is not None else math.nan

    def loadavg(self, host: str) -> float:
        return self.metric(host, MetricId.LOADAVG)

    def freemem(self, host: str) -> float:
        return self.metric(host, MetricId.FREEMEM)

    def peer_state(self, host: str) -> str:
        """Liveness of one cluster member (fresh/stale/dead/unknown)."""
        return self.dmon.peer_state(host)

    # -- internals ------------------------------------------------------------

    def _mount_standard(self) -> None:
        # The stock /proc/loadavg with 1/5/15-minute averages.
        def read_loadavg() -> str:
            self.node.cpu.loadavg.update(
                self.node.env.now, self.node.cpu.run_queue_length)
            one, five, fifteen = self.node.cpu.loadavg.as_tuple()
            return f"{one:.2f} {five:.2f} {fifteen:.2f}\n"

        self.procfs.mount("/proc/loadavg", ProcFile(read_loadavg))

        def read_meminfo() -> str:
            mem = self.node.memory
            return (f"MemTotal: {int(mem.capacity_bytes / 1024)} kB\n"
                    f"MemFree:  {int(mem.free_bytes / 1024)} kB\n")

        self.procfs.mount("/proc/meminfo", ProcFile(read_meminfo))

    def _metric_reader(self, host: str, metric: MetricId, local: bool):
        def read() -> str:
            value = self.metric(host, metric)
            return f"{value:.6g}\n"
        return read

    def _status_read(self, host: str) -> str:
        """``/proc/cluster/<host>/status``: liveness state and data age."""
        state = self.dmon.peer_state(host)
        age = self.dmon.peer_age(host)
        age_text = "inf" if math.isinf(age) else f"{age:.3f}"
        return f"state: {state}\nage: {age_text}\n"

    def _proc_top_read(self, host: str) -> str:
        """``/proc/cluster/<host>/proc_top``: per-process summary.

        ``kind: top`` rows are ``pid weight`` (sketch-ranked, heaviest
        first); ``kind: full`` rows are ``pid cpu mem io`` — whatever
        the host's keyed stream last published.  ``kind: none`` until
        anything is heard.
        """
        if host == self.node.name:
            published = self.dmon.last_procs
            if published is None:
                return "kind: none\n"
            kind, rows = published
        else:
            received = self.dmon.remote_procs.get(host)
            if received is None:
                return "kind: none\n"
            kind, rows = received.kind, received.rows
        lines = [f"kind: {kind}"]
        if kind == "top":
            ranked = sorted(rows.items(), key=lambda p: (-p[1], p[0]))
            lines += [f"{pid} {weight:.6g}" for pid, weight in ranked]
        else:
            for pid in sorted(rows):
                cpu, mem, io = rows[pid]
                lines.append(f"{pid} {cpu:.6g} {mem:.6g} {io:.6g}")
        return "".join(f"{line}\n" for line in lines)

    def _overhead_read(self, host: str) -> str:
        """``/proc/cluster/<host>/dproc/overhead``: monitoring cost.

        The local file is computed from the node's live telemetry
        registry; a remote host's file shows the last SELF_MON report
        received from it (NaN until that host publishes one).
        """
        if host == self.node.name:
            reg = self.node.telemetry
            polls = reg.value("dmon.polls")
            components = {name.split(".", 1)[1]: reg.value(name)
                          for name in MONITOR_CPU_COUNTERS}
            total = sum(components.values())
            lines = [f"polls: {polls:.6g}",
                     f"monitor_cpu_seconds: {total:.6g}"]
            lines += [f"{key}: {value:.6g}"
                      for key, value in components.items()]
            mean_cost = total / polls if polls else 0.0
            lines += [
                f"mean_poll_cost: {mean_cost:.6g}",
                f"events_published: "
                f"{reg.value('dmon.events_published'):.6g}",
                f"records_published: "
                f"{reg.value('dmon.records_published'):.6g}",
            ]
            return "".join(f"{line}\n" for line in lines)
        return (
            f"poll_cost: "
            f"{self.metric(host, MetricId.DMON_POLL_COST):.6g}\n"
            f"rx_cost: "
            f"{self.metric(host, MetricId.DMON_RX_COST):.6g}\n"
            f"event_rate: "
            f"{self.metric(host, MetricId.DMON_EVENT_RATE):.6g}\n")

    def _telemetry_read(self, host: str, prefix: str) -> str:
        """Raw telemetry dump for one name prefix (local host only)."""
        if host == self.node.name:
            return render_text(self.node.telemetry, prefix=prefix)
        return (f"unavailable: {prefix}* telemetry is node-local; "
                f"see dproc/overhead\n")

    def _control_read(self, host: str) -> str:
        """Control files read back the accepted command log."""
        log = self._control_log.get(host, [])
        return "".join(f"{line}\n" for line in log)

    def _control_write(self, host: str, text: str) -> None:
        """Parse commands and distribute them via the control channel."""
        messages = parse_control_text(text, sender=self.node.name,
                                      target=host)
        for msg in messages:
            self.dmon.send_control(msg)
        self._control_log.setdefault(host, []).extend(
            line for line in text.splitlines() if line.strip())


def deploy_dproc(cluster: NodeGroup,
                 config: DMonConfig | None = None,
                 modules: Sequence[str] = DEFAULT_MODULES,
                 bus: Optional[Bus] = None,
                 hosts: Optional[Iterable[str]] = None,
                 start: bool = True,
                 module_factory: Optional[ModuleFactory] = None,
                 config_fn: Optional[Callable[[str],
                                              DMonConfig]] = None,
                 ) -> dict[str, Dproc]:
    """Deploy dproc on every node (or a subset) of a cluster.

    All instances share one KECho bus/registry; each node's /proc tree
    shows every participating host, as in the paper's Figure 1.
    ``cluster`` is any :class:`~repro.runtime.protocol.NodeGroup` —
    a simulated :class:`~repro.sim.cluster.Cluster` or the live
    backend's node group (which supplies its own ``bus`` and
    ``module_factory``).  ``config_fn`` overrides ``config`` per host
    (e.g. restricting which hosts subscribe to the monitoring channel
    on large live pools).
    """
    bus = bus if bus is not None else KechoBus()
    names = list(hosts) if hosts is not None else cluster.names
    instances: dict[str, Dproc] = {}
    for name in names:
        host_config = config_fn(name) if config_fn is not None \
            else config
        instances[name] = Dproc(cluster[name], bus, host_config,
                                modules,
                                module_factory=module_factory)
    for dproc in instances.values():
        for name in names:
            dproc.add_cluster_node(name)
    if start:
        for dproc in instances.values():
            dproc.start()
    return instances
