"""Dynamic filter lifecycle: deploy, compile-at-host, execute, remove.

"An application can deploy filters by writing the filter code as string
to the control file in /proc.  It is d-mon's responsibility to
distribute the string to the corresponding hosts via KECho's control
channel.  Incoming filter strings are received by d-mon, which then
dynamically generates binary code.  The resulting filters are executed
by d-mon before any information is submitted to the channel, allowing
the filters to customize (or block) the monitoring information."
(paper §3)

A filter's *scope* is either one resource module ("cpu", "disk", ...)
or "*" for all resources together.  Every filter sees the full metric
record array (so cross-resource conditions work); its scope determines
which metrics it is responsible for publishing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.dproc.metrics import METRIC_CONSTANTS, MetricId
from repro.ecode import (CompiledFilter, FilterResult, KeyedSample,
                         MetricRecord, compile_filter)
from repro.errors import EcodeError, FilterDeploymentError
from repro.runtime.protocol import RuntimeNode

__all__ = ["DeployedFilter", "FilterManager"]

_filter_seq = itertools.count(1)


@dataclass
class DeployedFilter:
    """One live filter at a publishing host."""

    filter_id: str
    scope: str                    # module name or '*'
    source: str
    compiled: CompiledFilter
    deployed_at: float
    invocations: int = 0
    total_outputs: int = 0
    #: Cumulative (key, value) pairs emitted over the keyed stream.
    total_emitted: int = 0
    errors: int = 0
    compile_cpu_seconds: float = field(default=0.0)


class FilterManager:
    """Per-node registry of deployed dynamic filters."""

    def __init__(self, node: RuntimeNode) -> None:
        self.node = node
        self._by_id: dict[str, DeployedFilter] = {}
        self._by_scope: dict[str, DeployedFilter] = {}

    # -- deployment -----------------------------------------------------------

    def deploy(self, source: str, scope: str = "*",
               filter_id: Optional[str] = None) -> DeployedFilter:
        """Compile ``source`` at this host and install it.

        Compilation cost is charged to this node's CPU — dynamic code
        generation happens *at the publisher*, preserving the paper's
        heterogeneity argument.  An existing filter with the same scope
        is replaced.
        """
        if filter_id is None:
            filter_id = f"{self.node.name}-f{next(_filter_seq)}"
        if filter_id in self._by_id:
            raise FilterDeploymentError(
                f"filter id {filter_id!r} already deployed")
        try:
            compiled = compile_filter(source, constants=METRIC_CONSTANTS)
        except EcodeError as exc:
            raise FilterDeploymentError(
                f"filter {filter_id!r} failed to compile: {exc}") from exc
        cost = self.node.costs.filter_compile
        self.node.charge_kernel_seconds(cost)
        deployed = DeployedFilter(
            filter_id=filter_id, scope=scope, source=source,
            compiled=compiled, deployed_at=self.node.env.now,
            compile_cpu_seconds=cost)
        old = self._by_scope.get(scope)
        if old is not None:
            del self._by_id[old.filter_id]
        self._by_scope[scope] = deployed
        self._by_id[filter_id] = deployed
        return deployed

    def remove(self, filter_id: str) -> None:
        """Tear a filter down (error if unknown)."""
        deployed = self._by_id.pop(filter_id, None)
        if deployed is None:
            raise FilterDeploymentError(
                f"no deployed filter with id {filter_id!r}")
        self._by_scope.pop(deployed.scope, None)

    def clear(self) -> None:
        self._by_id.clear()
        self._by_scope.clear()

    def reset_state(self) -> None:
        """Drop every deployed filter's persistent sketch state.

        Called on DMon restart epochs: a rebooted node's sketch
        counters (count-min cells, top-K weights) must start empty
        instead of leaking monitoring history across the crash.
        """
        for deployed in self._by_id.values():
            deployed.compiled.reset_state()

    # -- lookup ---------------------------------------------------------------

    def filter_for(self, scope: str) -> Optional[DeployedFilter]:
        return self._by_scope.get(scope)

    @property
    def global_filter(self) -> Optional[DeployedFilter]:
        return self._by_scope.get("*")

    def deployed(self) -> list[DeployedFilter]:
        return list(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)

    # -- execution ------------------------------------------------------------

    def run(self, deployed: DeployedFilter,
            records: list[MetricRecord],
            keyed: Optional[list[KeyedSample]] = None) -> FilterResult:
        """Execute one filter over the full record array (plus the
        optional keyed record table).

        The caller (d-mon) accounts for the execution cost.  A filter
        that raises is counted and treated as "publish nothing" — a
        broken filter must not take d-mon down (the paper's in-kernel
        safety requirement).
        """
        deployed.invocations += 1
        try:
            result = deployed.compiled.run(records, keyed=keyed)
        except EcodeError:
            deployed.errors += 1
            return FilterResult(outputs=[], returned=None, steps=0)
        deployed.total_outputs += len(result.outputs)
        deployed.total_emitted += len(result.emitted)
        return result

    def input_array(self, samples: dict[MetricId, float],
                    last_sent: dict[MetricId, float],
                    now: float) -> list[MetricRecord]:
        """Build the dense ``input[]`` record array for filters.

        Metrics not collected this round appear as zero-valued records
        so that fixed metric indices always resolve.
        """
        size = max(int(m) for m in MetricId) + 1
        array: list[MetricRecord] = []
        for i in range(size):
            metric = MetricId(i)
            value = samples.get(metric, 0.0)
            array.append(MetricRecord(
                name=metric.name.lower(), value=float(value),
                last_value_sent=float(last_sent.get(metric, 0.0)),
                timestamp=now))
        return array
