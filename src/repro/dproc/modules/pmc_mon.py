"""PMC: performance-monitoring counters.

"Most modern processors offer performance monitoring counters ...
cache misses, number of operations, and other potentially interesting
chip-level statistics" (paper §2.1).  The paper's motivating use:
tracking cache-line loads lets a remote master estimate how much data a
worker has consumed.

The simulated node has no real PMU, so counters are *synthesised* from
simulator ground truth with a fixed linear model (documented
substitution — DESIGN.md §2):

* instructions retired ∝ Mflop executed;
* cache misses ∝ Mflop executed (capacity misses) + bytes received
  (DMA/copy traffic pollutes the cache).
"""

from __future__ import annotations

from repro.dproc.metrics import MetricId
from repro.dproc.modules.base import MetricSample, MonitoringModule
from repro.errors import DprocError
from repro.runtime.protocol import RuntimeNode

__all__ = ["PmcMon"]

#: Instructions per floating-point operation (superscalar-era blend).
INSTRUCTIONS_PER_FLOP = 2.5
#: Cache misses per Mflop of compute (512 KB L2, Pentium Pro class).
MISSES_PER_MFLOP = 1.2e4
#: Cache misses per byte of received network data.
MISSES_PER_RX_BYTE = 1.0 / 32.0  # one line fill per 32-byte line


class PmcMon(MonitoringModule):
    """Synthetic performance-counter sampler (windowed rates)."""

    name = "pmc"

    def __init__(self, node: RuntimeNode, window: float = 1.0) -> None:
        super().__init__(node)
        if window <= 0:
            raise DprocError("pmc window must be positive")
        self.window = float(window)
        self._last_busy = 0.0
        self._last_rx = 0.0
        self._last_time: float | None = None

    def metrics(self) -> tuple[MetricId, ...]:
        return (MetricId.CACHE_MISS, MetricId.INSTRUCTIONS)

    def configure(self, key: str, value: float) -> None:
        if key != "period":
            super().configure(key, value)
        if value <= 0:
            raise DprocError("pmc window must be positive")
        self.window = float(value)

    def collect(self, now: float) -> list[MetricSample]:
        cpu = self.node.cpu
        cpu.settle()
        busy = cpu.busy_cpu_seconds
        rx = self.node.stack.bytes_in.total
        if self._last_time is None or now <= self._last_time:
            mflop_rate = 0.0
            rx_rate = 0.0
        else:
            dt = now - self._last_time
            mflop_rate = (busy - self._last_busy) \
                * cpu.mflops_per_cpu / dt
            rx_rate = (rx - self._last_rx) / dt
        self._last_busy, self._last_rx, self._last_time = busy, rx, now
        misses = mflop_rate * MISSES_PER_MFLOP \
            + rx_rate * MISSES_PER_RX_BYTE
        instructions = mflop_rate * 1e6 * INSTRUCTIONS_PER_FLOP
        return [
            MetricSample(MetricId.CACHE_MISS, misses, now),
            MetricSample(MetricId.INSTRUCTIONS, instructions, now),
        ]
