"""NET_MON: connection round-trip times, bandwidths, losses.

"This module monitors the round-trip times of established network
connections, the used bandwidth of all connections at a node and of all
individual connections, the number of re-transmissions (for TCP), the
number of lost messages (for UDP), and the end-to-end delay for both
TCP and UDP connections." (paper §2.1)

Additionally reports *available* bandwidth — the residual capacity of
the node's access links (and shared segment, if any) — which is the
signal the SmartPointer server adapts to in Figure 10.
"""

from __future__ import annotations

from repro.dproc.metrics import MetricId
from repro.dproc.modules.base import MetricSample, MonitoringModule
from repro.errors import DprocError
from repro.runtime.protocol import RuntimeNode

__all__ = ["NetMon"]


class NetMon(MonitoringModule):
    """Network statistics sampler."""

    name = "net"

    def __init__(self, node: RuntimeNode, window: float = 1.0) -> None:
        super().__init__(node)
        if window <= 0:
            raise DprocError("net window must be positive")
        self.window = float(window)

    def metrics(self) -> tuple[MetricId, ...]:
        return (MetricId.NET_BANDWIDTH, MetricId.NET_RTT,
                MetricId.NET_RETX, MetricId.NET_LOST, MetricId.NET_USED,
                MetricId.NET_DELAY)

    def configure(self, key: str, value: float) -> None:
        if key != "period":
            super().configure(key, value)
        if value <= 0:
            raise DprocError("net window must be positive")
        self.window = float(value)

    # -- sampling ------------------------------------------------------------

    def available_bandwidth(self) -> float:
        """Residual capacity on this node's attachment links (bytes/s).

        Uses the tightest of the TX, RX and (when present) shared
        segment links — the bandwidth a new flow to/from this node
        could still get.
        """
        fabric = self.node.stack.fabric
        fabric.settle()
        port = self.node.port
        links = [port.tx, port.rx]
        if port.segment is not None:
            links.append(port.segment.link)
        best = float("inf")
        for link in links:
            used = sum(f.rate for f in fabric.flows_through(link))
            best = min(best, max(0.0, link.capacity - used))
        return best

    def collect(self, now: float) -> list[MetricSample]:
        stack = self.node.stack
        w = self.window
        rtts = [c.rtt.last() for c in stack.connections if len(c.rtt)]
        mean_rtt = sum(rtts) / len(rtts) if rtts else 0.0
        retx = sum(c.retransmissions.rate(now, w)
                   for c in stack.connections)
        lost = sum(c.losses.rate(now, w) for c in stack.connections)
        # End-to-end delay: mean over each connection's most recent
        # delivered-message delay ("the end-to-end delay for both TCP
        # and UDP connections", §2.1).
        delays = [c.delays.last() for c in stack.connections
                  if len(c.delays)]
        mean_delay = sum(delays) / len(delays) if delays else 0.0
        return [
            MetricSample(MetricId.NET_BANDWIDTH,
                         self.available_bandwidth(), now),
            MetricSample(MetricId.NET_RTT, mean_rtt, now),
            MetricSample(MetricId.NET_RETX, retx, now),
            MetricSample(MetricId.NET_LOST, lost, now),
            MetricSample(MetricId.NET_USED,
                         stack.bytes_out.rate(now, w), now),
            MetricSample(MetricId.NET_DELAY, mean_delay, now),
        ]
