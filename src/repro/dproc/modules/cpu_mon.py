"""CPU_MON: run-queue averaging over an application-specified period.

Per the paper: the standard /proc/loadavg 1/5/15-minute averages "may
not be useful in a fast system with constantly varying CPU load", so
CPU_MON "creates a kernel thread which wakes up periodically to examine
the task list in the kernel and computes the average of the run-queue
lengths over an application-specified period" (default one minute).

Each wake-up charges the cost of walking the task list, so aggressive
averaging periods show up as monitoring perturbation — a real trade-off
the ablation benchmark explores.
"""

from __future__ import annotations

from repro.dproc.metrics import MetricId
from repro.dproc.modules.base import MetricSample, MonitoringModule
from repro.errors import DprocError
from repro.runtime.protocol import RuntimeNode
from repro.runtime.series import WindowAverage
from repro.units import minutes

__all__ = ["CpuMon"]


class CpuMon(MonitoringModule):
    """Run-queue averaging kernel thread."""

    name = "cpu"

    #: Floor on the sampling interval (wake-up rate of the thread).
    MIN_SAMPLE_INTERVAL = 0.1

    def __init__(self, node: RuntimeNode, avg_period: float = minutes(1)) -> None:
        super().__init__(node)
        if avg_period <= 0:
            raise DprocError("averaging period must be positive")
        self.avg_period = float(avg_period)
        self._window = WindowAverage(self.avg_period)
        self._thread = None

    # -- module protocol ---------------------------------------------------

    def metrics(self) -> tuple[MetricId, ...]:
        return (MetricId.LOADAVG,)

    def start(self) -> None:
        super().start()
        self._thread = self.node.spawn(self._sampler(), name="cpu_mon")

    def stop(self) -> None:
        super().stop()

    def collect(self, now: float) -> list[MetricSample]:
        return [MetricSample(MetricId.LOADAVG, self._window.value, now)]

    def configure(self, key: str, value: float) -> None:
        """``period`` changes the averaging window on the fly."""
        if key != "period":
            super().configure(key, value)
        if value <= 0:
            raise DprocError("averaging period must be positive")
        self.avg_period = float(value)
        self._window.set_window(self.avg_period)

    # -- internals ------------------------------------------------------------

    @property
    def sample_interval(self) -> float:
        """Thread wake-up interval: ~10 samples per window, floored."""
        return max(self.MIN_SAMPLE_INTERVAL, self.avg_period / 10.0)

    def _sampler(self):
        env = self.node.env
        while self.started:
            self._window.record(env.now, self.node.cpu.run_queue_length)
            # Walking the task list costs kernel CPU.
            self.node.charge_kernel_seconds(
                self.node.costs.tasklist_walk)
            yield env.timeout(self.sample_interval)
