"""MEM_MON: free-memory reporting via ``nr_free_pages``.

"This provides information regarding the available memory.  To obtain
this information, the nr_free_pages kernel function is invoked."
(paper §2.1).  The metric value is reported in **bytes** so that
filters like the paper's ``input[FREEMEM].value < 50e6`` read
naturally.
"""

from __future__ import annotations

from repro.dproc.metrics import MetricId
from repro.dproc.modules.base import MetricSample, MonitoringModule
from repro.units import PAGE_SIZE

__all__ = ["MemMon"]


class MemMon(MonitoringModule):
    """Free-memory sampler."""

    name = "mem"

    def metrics(self) -> tuple[MetricId, ...]:
        return (MetricId.FREEMEM,)

    def collect(self, now: float) -> list[MetricSample]:
        free_bytes = float(self.node.memory.nr_free_pages() * PAGE_SIZE)
        return [MetricSample(MetricId.FREEMEM, free_bytes, now)]
