"""Monitoring-module protocol.

d-mon "maintains a list of all registered services and uses this
callback function to retrieve monitoring information from them at
regular intervals" (paper §2).  A module is registered with
:meth:`~repro.dproc.dmon.DMon.register_service`; its :meth:`collect`
callback is invoked once per polling iteration.

Modules are dynamically addable: new ones can be registered at run time
without restarting d-mon (the paper's loadable-kernel-module
extensibility).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.dproc.metrics import MetricId
from repro.errors import DprocError
from repro.runtime.protocol import RuntimeNode

__all__ = ["MetricSample", "KeyedSample", "MonitoringModule"]


@dataclass(frozen=True)
class MetricSample:
    """One collected metric reading."""

    metric: MetricId
    value: float
    timestamp: float


#: One keyed record ``(key, cpu, mem, io)`` — the per-PID stream shape
#: shared with the E-code runtime (`repro.ecode.runtime.KeyedSample`).
KeyedSample = tuple[int, float, float, float]


class MonitoringModule(ABC):
    """Base class for d-mon monitoring services."""

    #: Module name ('cpu', 'mem', 'disk', 'net', 'pmc', ...).
    name: str = "?"

    #: True when the module also produces a *keyed* record stream
    #: (:meth:`keyed_collect`) — e.g. a per-PID process table — that
    #: d-mon feeds to sketch filters instead of the MetricId path.
    provides_keyed: bool = False

    def __init__(self, node: RuntimeNode) -> None:
        self.node = node
        self.started = False

    def start(self) -> None:
        """Begin any background activity (kernel threads)."""
        self.started = True

    def stop(self) -> None:
        """Stop background activity."""
        self.started = False

    @abstractmethod
    def metrics(self) -> tuple[MetricId, ...]:
        """The metric ids this module produces."""

    @abstractmethod
    def collect(self, now: float) -> list[MetricSample]:
        """d-mon's registered callback: sample all metrics now."""

    def keyed_collect(self, now: float) -> list[KeyedSample]:
        """Per-key records for this poll (``provides_keyed`` modules)."""
        return []

    def configure(self, key: str, value: float) -> None:
        """Adjust a module option (unknown keys are an error)."""
        raise DprocError(
            f"module {self.name!r} has no option {key!r}")
