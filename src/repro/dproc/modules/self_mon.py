"""SELF_MON: dproc monitoring its own overhead (dogfooding).

The paper's thesis is that monitoring must know its own cost.  This
module closes the loop: it samples the node's *telemetry registry*
(the same counters d-mon and KECho update on their hot paths) and
publishes the result through the ordinary d-mon pipeline — so a
remote operator can read ``/proc/cluster/<host>/dproc_poll_cost`` and
see what monitoring costs *that host*, delivered by the monitoring
system it is measuring.

Like :class:`~repro.dproc.modules.battery_mon.BatteryMon`, SELF_MON is
*not* part of the default module set: registering it changes what gets
published (and therefore seeded traces), so it is opt-in —
``register_default_modules(dmon, names=(..., "dproc"))`` or an explicit
``dmon.register_service(SelfMon(node))``.
"""

from __future__ import annotations

from repro.dproc.metrics import MetricId
from repro.dproc.modules.base import MetricSample, MonitoringModule
from repro.runtime.protocol import RuntimeNode

__all__ = ["SelfMon"]

#: Telemetry counters summed into DMON_POLL_COST (CPU seconds the
#: monitoring pipeline spent *producing* data, excluding receive).
_POLL_COST_COUNTERS = ("dmon.collect_seconds", "dmon.filter_seconds",
                       "dmon.param_seconds", "dmon.submit_seconds")


class SelfMon(MonitoringModule):
    """Samples the node's own monitoring-overhead telemetry."""

    name = "dproc"

    def __init__(self, node: RuntimeNode) -> None:
        super().__init__(node)
        # Registrable even with node telemetry disabled: a disabled
        # registry returns 0.0 for every counter, so samples are zero.
        self.telemetry = node.telemetry

    def metrics(self) -> tuple[MetricId, ...]:
        return (MetricId.DMON_POLL_COST, MetricId.DMON_RX_COST,
                MetricId.DMON_EVENT_RATE)

    def collect(self, now: float) -> list[MetricSample]:
        reg = self.telemetry
        polls = reg.value("dmon.polls")
        produce = sum(reg.value(name) for name in _POLL_COST_COUNTERS)
        poll_cost = produce / polls if polls else 0.0
        rx_cost = (reg.value("dmon.receive_seconds") / polls
                   if polls else 0.0)
        event_rate = (reg.value("dmon.events_published") / now
                      if now > 0 else 0.0)
        return [
            MetricSample(MetricId.DMON_POLL_COST, poll_cost, now),
            MetricSample(MetricId.DMON_RX_COST, rx_cost, now),
            MetricSample(MetricId.DMON_EVENT_RATE, event_rate, now),
        ]
