"""BATTERY_MON: the paper's canonical dynamically-deployed module.

§1: filters "can dynamically deploy monitoring functionality available
in the remote kernel but not directly supported in dproc (such as the
monitoring of the current battery power in mobile devices)"; the future
work makes power a first-class resource for mobile clients.

This module is intentionally *not* part of the default module set — it
exists to exercise dproc's run-time extensibility
(:meth:`~repro.dproc.dmon.DMon.register_service` on a live d-mon).
"""

from __future__ import annotations

from repro.dproc.metrics import MetricId
from repro.dproc.modules.base import MetricSample, MonitoringModule
from repro.errors import DprocError
from repro.runtime.protocol import RuntimeNode
from repro.sim.power import Battery

__all__ = ["BatteryMon"]


class BatteryMon(MonitoringModule):
    """Battery charge sampler for mobile nodes."""

    name = "battery"

    def __init__(self, node: RuntimeNode, battery: Battery | None = None)\
            -> None:
        super().__init__(node)
        if battery is None:
            battery = node.services.get("battery")
        if battery is None:
            raise DprocError(
                f"node {node.name!r} has no battery to monitor")
        self.battery = battery

    def metrics(self) -> tuple[MetricId, ...]:
        return (MetricId.BATTERY,)

    def collect(self, now: float) -> list[MetricSample]:
        return [MetricSample(MetricId.BATTERY,
                             self.battery.level_percent(), now)]
