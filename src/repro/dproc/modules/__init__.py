"""dproc monitoring modules (CPU, MEM, DISK, NET, PMC, BATTERY, SELF)."""

from repro.dproc.modules.base import (KeyedSample, MetricSample,
                                      MonitoringModule)
from repro.dproc.modules.battery_mon import BatteryMon
from repro.dproc.modules.cpu_mon import CpuMon
from repro.dproc.modules.disk_mon import DiskMon
from repro.dproc.modules.mem_mon import MemMon
from repro.dproc.modules.net_mon import NetMon
from repro.dproc.modules.pmc_mon import PmcMon
from repro.dproc.modules.proc_mon import ProcMon
from repro.dproc.modules.self_mon import SelfMon

__all__ = ["KeyedSample", "MetricSample", "MonitoringModule",
           "BatteryMon", "CpuMon", "DiskMon", "MemMon", "NetMon",
           "PmcMon", "ProcMon", "SelfMon"]


def default_modules(node):
    """The paper's standard module set for one node."""
    return [CpuMon(node), MemMon(node), DiskMon(node), NetMon(node),
            PmcMon(node)]
