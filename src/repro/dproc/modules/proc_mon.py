"""PROC_MON: per-process resource sampling (the keyed firehose).

The paper's modules report one value per metric; per-process monitoring
is different in kind — a *table* of (pid, cpu, mem, io) rows whose size
tracks the workload, not the metric namespace.  PROC_MON publishes that
table as d-mon's **keyed stream**: sketch filters (count-min + top-K)
can compress it at the source, or, unfiltered, the whole table rides
along with the poll's event.

Two row sources are merged each poll:

* **real jobs** — a snapshot of the sim CPU's processor-sharing job
  table (``CPU.process_table()``), so top-K rankings respond to actual
  simulated load;
* **synthetic daemons** — a fixed-size population of background
  processes with a Zipf-like CPU profile, deterministically wobbled by
  integer hashing of ``(node name, pid, poll epoch)``.  No draws are
  taken from the node's RNG stream, so adding this module never
  perturbs the simulation's event sequence (goldens without it stay
  bit-identical).

Sampling walks the task list, so each collected row charges
``costs.proc_sample`` kernel CPU — visible monitoring perturbation,
exactly the overhead the top-K ablation benchmark measures.
"""

from __future__ import annotations

from repro.dproc.metrics import MetricId
from repro.dproc.modules.base import (KeyedSample, MetricSample,
                                      MonitoringModule)
from repro.ecode.sketches import mix64
from repro.errors import DprocError
from repro.runtime.protocol import RuntimeNode
from repro.units import PAGE_SIZE

__all__ = ["ProcMon"]

#: Synthetic daemon PIDs start here; real sim jobs are offset higher so
#: the two populations never collide.
_DAEMON_PID_BASE = 1000
_JOB_PID_BASE = 100000

_PHI = 0x9E3779B97F4A7C15
_EPOCH_SALT = 0xD1B54A32D192ED03


def _crc_seed(name: str) -> int:
    """Stable per-node seed from the node name (no RNG draws)."""
    seed = 0
    for byte in name.encode("utf-8"):
        seed = mix64(seed * 131 + byte)
    return seed


class ProcMon(MonitoringModule):
    """Per-PID process-table sampler for the sim backend."""

    name = "proc"
    provides_keyed = True

    #: Default synthetic daemon population per node.
    DEFAULT_N_PROCS = 16
    MAX_N_PROCS = 4096

    def __init__(self, node: RuntimeNode,
                 n_procs: int = DEFAULT_N_PROCS) -> None:
        super().__init__(node)
        self._configure_n_procs(n_procs)
        self._seed = _crc_seed(node.name)
        self._table: list[KeyedSample] = []
        self._table_at: float | None = None

    def _configure_n_procs(self, n_procs: float) -> None:
        count = int(n_procs)
        if not 0 <= count <= self.MAX_N_PROCS:
            raise DprocError(
                f"n_procs must be in [0, {self.MAX_N_PROCS}], "
                f"got {n_procs!r}")
        self.n_procs = count

    # -- module protocol ---------------------------------------------------

    def metrics(self) -> tuple[MetricId, ...]:
        return (MetricId.PROC_COUNT, MetricId.PROC_CPU_MAX,
                MetricId.PROC_RSS_MAX)

    def configure(self, key: str, value: float) -> None:
        """``nprocs`` resizes the synthetic daemon population."""
        if key != "nprocs":
            super().configure(key, value)
        self._configure_n_procs(value)

    def collect(self, now: float) -> list[MetricSample]:
        table = self._sample(now)
        count = float(len(table))
        cpu_max = max((row[1] for row in table), default=0.0)
        rss_max = max((row[2] for row in table), default=0.0)
        return [MetricSample(MetricId.PROC_COUNT, count, now),
                MetricSample(MetricId.PROC_CPU_MAX, cpu_max, now),
                MetricSample(MetricId.PROC_RSS_MAX, rss_max, now)]

    def keyed_collect(self, now: float) -> list[KeyedSample]:
        return self._sample(now)

    # -- internals ------------------------------------------------------------

    def _sample(self, now: float) -> list[KeyedSample]:
        """Build (and memoise per poll instant) the process table."""
        if self._table_at == now:
            return self._table
        table = self._synthetic(now)
        cpu = getattr(self.node, "cpu", None)
        if cpu is not None:
            share_unit = 1.0
            for jid, _name, runnable, share in cpu.process_table():
                if runnable:
                    table.append((_JOB_PID_BASE + jid,
                                  share * share_unit, 0.0, 0.0))
        self._table = table
        self._table_at = now
        return table

    def _synthetic(self, now: float) -> list[KeyedSample]:
        epoch = int(now)
        rows: list[KeyedSample] = []
        for i in range(self.n_procs):
            pid = _DAEMON_PID_BASE + i
            h = mix64(self._seed
                      ^ (pid * _PHI) & ((1 << 64) - 1)
                      ^ (epoch * _EPOCH_SALT) & ((1 << 64) - 1))
            # Zipf-like CPU profile with a ±50% deterministic wobble:
            # daemon i draws ~1/(i+1) of a baseline share.
            wobble = 0.5 + (h & 0xFFFF) / 0xFFFF
            cpu_share = 0.2 * wobble / (i + 1)
            rss = float(((h >> 16) & 0x3FF) + 64) * PAGE_SIZE
            io = float((h >> 26) & 0xFFFF)
            rows.append((pid, cpu_share, rss, io))
        return rows
