"""DISK_MON: disk operation and sector rates over a window.

"This measures the average number of disk writes and reads as well as
the average number of sectors written and read for a certain period of
time.  The default period is 1 s; as with CPU_MON, d-mon can change
this value to any desired number." (paper §2.1)
"""

from __future__ import annotations

from repro.dproc.metrics import MetricId
from repro.dproc.modules.base import MetricSample, MonitoringModule
from repro.errors import DprocError
from repro.runtime.protocol import RuntimeNode

__all__ = ["DiskMon"]


class DiskMon(MonitoringModule):
    """Windowed disk-rate sampler."""

    name = "disk"

    def __init__(self, node: RuntimeNode, window: float = 1.0) -> None:
        super().__init__(node)
        if window <= 0:
            raise DprocError("disk window must be positive")
        self.window = float(window)

    def metrics(self) -> tuple[MetricId, ...]:
        return (MetricId.DISKUSAGE, MetricId.DISK_READS,
                MetricId.DISK_WRITES)

    def configure(self, key: str, value: float) -> None:
        if key != "period":
            super().configure(key, value)
        if value <= 0:
            raise DprocError("disk window must be positive")
        self.window = float(value)

    def collect(self, now: float) -> list[MetricSample]:
        disk = self.node.disk
        w = self.window
        sectors = (disk.sectors_read.rate(now, w)
                   + disk.sectors_written.rate(now, w))
        return [
            MetricSample(MetricId.DISKUSAGE, sectors, now),
            MetricSample(MetricId.DISK_READS, disk.reads.rate(now, w),
                         now),
            MetricSample(MetricId.DISK_WRITES, disk.writes.rate(now, w),
                         now),
        ]
