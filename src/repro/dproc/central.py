"""Centralized-collector monitoring baseline (Supermon-style).

The paper's related work singles out Supermon: "Scalability can be a
problem in Supermon because of the centralized data concentrator, which
collects monitoring data from all cluster nodes" — dproc's peer-to-peer
KECho channels avoid exactly that hotspot.

To make the claim measurable, this module implements the centralized
architecture with the *same* cost model and metric set as dproc: every
node pushes its samples to one collector each period; the collector
assembles a cluster digest and broadcasts it back so that (like dproc)
every node ends up knowing every node's state.  The scalability
benchmark compares the hottest node's monitoring CPU under both
architectures as the cluster grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dproc.metrics import MetricId
from repro.dproc.modules import default_modules
from repro.dproc.modules.base import MonitoringModule
from repro.errors import DprocError
from repro.sim.cluster import Cluster
from repro.sim.node import Node
from repro.sim.trace import CounterTrace

__all__ = ["CentralCollector", "CentralConfig"]


@dataclass(frozen=True)
class CentralConfig:
    """Configuration of the centralized baseline."""

    period: float = 1.0
    event_header_bytes: float = 40.0
    bytes_per_record: float = 12.0
    metric_subset: Optional[frozenset[MetricId]] = None
    #: Re-broadcast the assembled digest to all nodes (parity with
    #: dproc, where every node sees every node).
    broadcast_digest: bool = True
    #: Per-message user/kernel boundary cost at the collector daemon.
    #: Supermon/MAGNeT-style collectors are user-space processes: every
    #: message handled costs a socket syscall, a wakeup and a copy —
    #: the crossings dproc's "strictly kernel-kernel messaging" avoids
    #: (paper §1).  ~100 µs on the 200 MHz testbed CPUs.
    daemon_crossing_cost: float = 100e-6


@dataclass
class _Agent:
    """Per-node state of the centralized system."""

    node: Node
    modules: list[MonitoringModule]
    #: Analytic monitoring CPU seconds consumed on this node.
    cpu_seconds: float = 0.0
    pushes: CounterTrace = field(default_factory=lambda:
                                 CounterTrace("pushes"))


class CentralCollector:
    """The whole centralized monitoring system on one cluster."""

    def __init__(self, cluster: Cluster, collector: str,
                 config: CentralConfig | None = None) -> None:
        if collector not in cluster.names:
            raise DprocError(f"no node named {collector!r}")
        self.cluster = cluster
        self.collector_name = collector
        self.config = config or CentralConfig()
        self.running = False
        self.agents: dict[str, _Agent] = {}
        #: Latest digest: host -> {metric: value} as known cluster-wide.
        self.digest: dict[str, dict[MetricId, float]] = {}
        #: What each node knows after the last broadcast.
        self.node_views: dict[str, dict[str, dict[MetricId, float]]] = {}
        self.digests_sent = CounterTrace("digests")
        for name in cluster.names:
            node = cluster[name]
            self.agents[name] = _Agent(
                node=node, modules=default_modules(node))
            self.node_views[name] = {}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "CentralCollector":
        if self.running:
            raise DprocError("central collector already running")
        self.running = True
        collector_node = self.cluster[self.collector_name]
        collector_node.stack.bind("central:push", self._on_push)
        for name, agent in self.agents.items():
            for module in agent.modules:
                module.start()
            if self.config.broadcast_digest \
                    and name != self.collector_name:
                agent.node.stack.bind(
                    "central:digest",
                    lambda msg, n=name: self._on_digest(n, msg))
            agent.node.spawn(self._agent_loop(agent), name="central")
        collector_node.spawn(self._broadcast_loop(),
                             name="central-digest")
        return self

    def stop(self) -> None:
        self.running = False
        for agent in self.agents.values():
            for module in agent.modules:
                module.stop()

    # -- data plane -----------------------------------------------------------

    def _sample(self, agent: _Agent) -> dict[MetricId, float]:
        now = agent.node.env.now
        samples: dict[MetricId, float] = {}
        costs = agent.node.costs
        for module in agent.modules:
            self._charge(agent, costs.module_poll)
            for s in module.collect(now):
                samples[s.metric] = s.value
        if self.config.metric_subset is not None:
            samples = {m: v for m, v in samples.items()
                       if m in self.config.metric_subset}
        return samples

    def _event_size(self, n_records: int) -> float:
        return (self.config.event_header_bytes
                + self.config.bytes_per_record * n_records)

    def _agent_loop(self, agent: _Agent):
        env = agent.node.env
        yield env.timeout(float(
            agent.node.rng.uniform(0, self.config.period)))
        conn = None
        if agent.node.name != self.collector_name:
            conn = agent.node.stack.connect(self.collector_name,
                                            tag="central:push")
        while self.running:
            samples = self._sample(agent)
            if agent.node.name == self.collector_name:
                self.digest[agent.node.name] = samples
            elif samples and conn is not None:
                size = self._event_size(len(samples))
                costs = agent.node.costs
                self._charge(agent, costs.encode_cost(size)
                             + costs.send_cost(size, 1))
                conn.send({"host": agent.node.name,
                           "metrics": samples}, size=size)
                agent.pushes.add(env.now, 1.0)
            yield env.timeout(self.config.period)

    def _on_push(self, msg) -> None:
        collector = self.agents[self.collector_name]
        self._charge(collector,
                     collector.node.costs.receive_cost(msg.size)
                     + self.config.daemon_crossing_cost)
        self.digest[msg.payload["host"]] = dict(msg.payload["metrics"])

    def _broadcast_loop(self):
        collector = self.agents[self.collector_name]
        env = collector.node.env
        conns = {}
        yield env.timeout(self.config.period)
        while self.running:
            if self.config.broadcast_digest and self.digest:
                n_records = sum(len(m) for m in self.digest.values())
                size = self._event_size(n_records)
                costs = collector.node.costs
                targets = [n for n in self.cluster.names
                           if n != self.collector_name]
                self._charge(collector,
                             costs.encode_cost(size)
                             + costs.send_cost(size, len(targets))
                             + self.config.daemon_crossing_cost
                             * len(targets))
                snapshot = {h: dict(m) for h, m in self.digest.items()}
                for name in targets:
                    conn = conns.get(name)
                    if conn is None:
                        conn = collector.node.stack.connect(
                            name, tag="central:digest")
                        conns[name] = conn
                    conn.send(snapshot, size=size)
                self.node_views[self.collector_name] = snapshot
                self.digests_sent.add(env.now, 1.0)
            yield env.timeout(self.config.period)

    def _on_digest(self, host: str, msg) -> None:
        agent = self.agents[host]
        self._charge(agent, agent.node.costs.receive_cost(msg.size))
        self.node_views[host] = msg.payload

    def _charge(self, agent: _Agent, seconds: float) -> None:
        agent.cpu_seconds += seconds
        agent.node.charge_kernel_seconds(seconds)

    # -- results ---------------------------------------------------------------

    def monitoring_cpu_seconds(self) -> dict[str, float]:
        """Analytic monitoring CPU consumed per node so far."""
        return {name: agent.cpu_seconds
                for name, agent in self.agents.items()}

    def hottest_node(self) -> tuple[str, float]:
        """The node carrying the most monitoring CPU (the hotspot)."""
        costs = self.monitoring_cpu_seconds()
        name = max(costs, key=lambda n: costs[n])
        return name, costs[name]

    def view(self, at_host: str, of_host: str,
             metric: MetricId) -> Optional[float]:
        """What ``at_host`` currently believes about ``of_host``."""
        return self.node_views.get(at_host, {}) \
            .get(of_host, {}).get(metric)
