"""The dproc metric namespace.

Every monitored quantity has a stable :class:`MetricId`.  The integer
values double as the ``input[]`` indices that E-code filters use (the
paper's ``input[LOADAVG]``), so they are part of the public filter ABI
and must never be renumbered.
"""

from __future__ import annotations

from enum import IntEnum

from repro.errors import UnknownMetricError

__all__ = ["MetricId", "MODULE_METRICS", "METRIC_CONSTANTS",
           "METRIC_FILES", "metric_by_name", "module_of"]


class MetricId(IntEnum):
    """Stable metric indices (the E-code filter ABI)."""

    LOADAVG = 0        #: CPU_MON — windowed run-queue average
    FREEMEM = 1        #: MEM_MON — free memory in bytes
    DISKUSAGE = 2      #: DISK_MON — sectors read+written per second
    CACHE_MISS = 3     #: PMC — cache misses per second
    NET_BANDWIDTH = 4  #: NET_MON — available bandwidth (bytes/s)
    NET_RTT = 5        #: NET_MON — mean connection RTT (seconds)
    DISK_READS = 6     #: DISK_MON — read ops per second
    DISK_WRITES = 7    #: DISK_MON — write ops per second
    NET_RETX = 8       #: NET_MON — TCP retransmissions per second
    NET_LOST = 9       #: NET_MON — UDP messages lost per second
    INSTRUCTIONS = 10  #: PMC — instructions retired per second
    NET_USED = 11      #: NET_MON — used outbound bandwidth (bytes/s)
    BATTERY = 12       #: BATTERY_MON — remaining charge (percent)
    NET_DELAY = 13     #: NET_MON — mean end-to-end delay (seconds)
    # Self-telemetry (SELF_MON): dproc monitoring its own overhead.
    # Appended, never renumbered — the values above are the filter ABI.
    DMON_POLL_COST = 14  #: SELF_MON — mean CPU s per polling iteration
    DMON_RX_COST = 15    #: SELF_MON — mean receive-path CPU s per poll
    DMON_EVENT_RATE = 16  #: SELF_MON — monitoring events published /s
    # Per-process monitor (PROC_MON) aggregates; the per-PID table
    # itself travels as a keyed stream, not as MetricIds.
    PROC_COUNT = 17    #: PROC_MON — processes in the sampled table
    PROC_CPU_MAX = 18  #: PROC_MON — heaviest per-PID CPU share
    PROC_RSS_MAX = 19  #: PROC_MON — largest per-PID resident set (bytes)


#: Which monitoring module owns which metrics.
MODULE_METRICS: dict[str, tuple[MetricId, ...]] = {
    "cpu": (MetricId.LOADAVG,),
    "mem": (MetricId.FREEMEM,),
    "disk": (MetricId.DISKUSAGE, MetricId.DISK_READS,
             MetricId.DISK_WRITES),
    "net": (MetricId.NET_BANDWIDTH, MetricId.NET_RTT, MetricId.NET_RETX,
            MetricId.NET_LOST, MetricId.NET_USED, MetricId.NET_DELAY),
    "pmc": (MetricId.CACHE_MISS, MetricId.INSTRUCTIONS),
    "battery": (MetricId.BATTERY,),
    "dproc": (MetricId.DMON_POLL_COST, MetricId.DMON_RX_COST,
              MetricId.DMON_EVENT_RATE),
    "proc": (MetricId.PROC_COUNT, MetricId.PROC_CPU_MAX,
             MetricId.PROC_RSS_MAX),
}

#: Constants handed to the E-code compiler so filters can write
#: ``input[LOADAVG]`` etc.
METRIC_CONSTANTS: dict[str, int] = {m.name: int(m) for m in MetricId}

#: Pseudo-file name under /proc/cluster/<node>/ for each metric.
METRIC_FILES: dict[MetricId, str] = {
    MetricId.LOADAVG: "loadavg",
    MetricId.FREEMEM: "freemem",
    MetricId.DISKUSAGE: "diskusage",
    MetricId.CACHE_MISS: "cache_miss",
    MetricId.NET_BANDWIDTH: "net_bandwidth",
    MetricId.NET_RTT: "net_rtt",
    MetricId.DISK_READS: "disk_reads",
    MetricId.DISK_WRITES: "disk_writes",
    MetricId.NET_RETX: "net_retx",
    MetricId.NET_LOST: "net_lost",
    MetricId.INSTRUCTIONS: "instructions",
    MetricId.NET_USED: "net_used",
    MetricId.BATTERY: "battery",
    MetricId.NET_DELAY: "net_delay",
    MetricId.DMON_POLL_COST: "dproc_poll_cost",
    MetricId.DMON_RX_COST: "dproc_rx_cost",
    MetricId.DMON_EVENT_RATE: "dproc_event_rate",
    MetricId.PROC_COUNT: "proc_count",
    MetricId.PROC_CPU_MAX: "proc_cpu_max",
    MetricId.PROC_RSS_MAX: "proc_rss_max",
}

_BY_NAME = {m.name.lower(): m for m in MetricId}
_BY_FILE = {f: m for m, f in METRIC_FILES.items()}


def metric_by_name(name: str) -> MetricId:
    """Resolve a metric from its enum name or pseudo-file name."""
    key = name.strip().lower()
    metric = _BY_NAME.get(key) or _BY_FILE.get(key)
    if metric is None:
        raise UnknownMetricError(f"unknown metric {name!r}")
    return metric


def module_of(metric: MetricId) -> str:
    """Name of the monitoring module that produces ``metric``."""
    for module, metrics in MODULE_METRICS.items():
        if metric in metrics:
            return module
    raise UnknownMetricError(  # pragma: no cover - table is complete
        f"metric {metric!r} belongs to no module")
