"""Alarm watchers: edge-triggered conditions on remote metrics.

The paper's motivation includes "observable events … such as system
failures, or the exceeding of resource utilization thresholds".
Thresholds *at the publisher* (params.py) control what is sent; this
module is the consumer-side complement: applications register
predicates over the remote metrics a node already receives, and get a
callback on each rising edge, with hysteresis so a metric hovering
around the bound does not flap.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dproc.dmon import DMon
from repro.dproc.metrics import MetricId
from repro.errors import DprocError

__all__ = ["Alarm", "AlarmManager"]

AlarmCallback = Callable[["Alarm", str, float, float], None]

_alarm_ids = itertools.count(1)


@dataclass
class Alarm:
    """One registered watch.

    Fires the callback when ``predicate(value)`` turns true for a
    watched host's metric (rising edge).  It re-arms only after the
    value has *cleared*: dropped below the predicate with
    ``clear_fraction`` of slack, e.g. a "loadavg > 4" alarm with
    ``clear_fraction=0.1`` re-arms once loadavg ≤ 3.6.
    """

    metric: MetricId
    predicate: Callable[[float], bool]
    callback: AlarmCallback
    host: Optional[str] = None       #: None = any host
    clear_fraction: float = 0.1
    name: str = ""
    alarm_id: int = field(default_factory=lambda: next(_alarm_ids))
    #: hosts currently in the fired state (not yet cleared).
    _fired: set[str] = field(default_factory=set)
    #: total number of firings (observability).
    firings: int = 0
    active: bool = True

    def cancel(self) -> None:
        self.active = False

    def _clears(self, value: float) -> bool:
        """True when the condition has cleared with slack."""
        if self.predicate(value):
            return False
        # Probe with the slack applied in both directions: the alarm
        # clears only if even the inflated/deflated value stays false.
        slack = 1.0 + self.clear_fraction
        return not (self.predicate(value * slack)
                    or self.predicate(value / slack
                                      if slack else value))


class AlarmManager:
    """Watches one d-mon's incoming remote metrics."""

    def __init__(self, dmon: DMon) -> None:
        self.dmon = dmon
        self.alarms: list[Alarm] = []
        #: (alarm_id, host, value, time) history of all firings.
        self.log: list[tuple[int, str, float, float]] = []
        dmon.update_hooks.append(self._on_update)

    def watch(self, metric: MetricId,
              predicate: Callable[[float], bool],
              callback: AlarmCallback,
              host: Optional[str] = None,
              clear_fraction: float = 0.1,
              name: str = "") -> Alarm:
        """Register a watch; returns the alarm handle."""
        if clear_fraction < 0:
            raise DprocError("clear fraction cannot be negative")
        alarm = Alarm(metric=metric, predicate=predicate,
                      callback=callback, host=host,
                      clear_fraction=clear_fraction,
                      name=name or f"alarm-{metric.name.lower()}")
        self.alarms.append(alarm)
        return alarm

    def watch_above(self, metric: MetricId, bound: float,
                    callback: AlarmCallback,
                    host: Optional[str] = None, **kw) -> Alarm:
        """Convenience: fire when the metric exceeds ``bound``."""
        return self.watch(metric, lambda v: v > bound, callback,
                          host=host, **kw)

    def watch_below(self, metric: MetricId, bound: float,
                    callback: AlarmCallback,
                    host: Optional[str] = None, **kw) -> Alarm:
        """Convenience: fire when the metric drops under ``bound``."""
        return self.watch(metric, lambda v: v < bound, callback,
                          host=host, **kw)

    # -- internals ------------------------------------------------------------

    def _on_update(self, host: str, metric: MetricId, value: float,
                   timestamp: float) -> None:
        for alarm in list(self.alarms):
            if not alarm.active:
                self.alarms.remove(alarm)
                continue
            if alarm.metric is not metric:
                continue
            if alarm.host is not None and alarm.host != host:
                continue
            if host in alarm._fired:
                if alarm._clears(value):
                    alarm._fired.discard(host)
                continue
            if alarm.predicate(value):
                alarm._fired.add(host)
                alarm.firings += 1
                now = self.dmon.node.env.now
                self.log.append((alarm.alarm_id, host, value, now))
                alarm.callback(alarm, host, value, now)
