"""The dproc parameter engine: update periods and thresholds.

The paper distinguishes two parameter kinds (§3):

* **update periods** — how often a metric is published;
* **thresholds** — conditions on the metric value, in three forms:
  percentage change versus the last *sent* value ("if x varies by 10 %
  from the last measurement" — this is the evaluation's *differential
  filter* at 15 %), fixed bounds ("if x < y*1.1"), and ranges
  ("if x is in the range [y, z]").

Periods and thresholds combine conjunctively: "update the CPU
information once every 2 seconds IF the CPU utilization is above 80 %".
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ControlSyntaxError

__all__ = [
    "ThresholdRule", "AboveThreshold", "BelowThreshold",
    "ChangeThreshold", "RangeThreshold", "MetricPolicy",
    "parse_threshold_spec",
]


class ThresholdRule(ABC):
    """A publish-condition on a metric value."""

    @abstractmethod
    def should_send(self, value: float, last_sent: Optional[float]) -> bool:
        """True when the new ``value`` warrants publication.

        ``last_sent`` is the most recently published value, or None if
        nothing has been published yet (always publish then).
        """

    @abstractmethod
    def spec(self) -> str:
        """Round-trippable textual form (for control-file reads)."""


@dataclass(frozen=True)
class AboveThreshold(ThresholdRule):
    """Publish while the value exceeds a bound."""

    bound: float

    def should_send(self, value: float, last_sent: Optional[float]) -> bool:
        return value > self.bound

    def spec(self) -> str:
        return f"above {self.bound:g}"


@dataclass(frozen=True)
class BelowThreshold(ThresholdRule):
    """Publish while the value is under a bound."""

    bound: float

    def should_send(self, value: float, last_sent: Optional[float]) -> bool:
        return value < self.bound

    def spec(self) -> str:
        return f"below {self.bound:g}"


@dataclass(frozen=True)
class ChangeThreshold(ThresholdRule):
    """Publish when the value moved by ≥ ``percent`` % since last sent.

    This is the paper's *differential filter*: "monitoring information
    is sent only if the utilization of a resource varies by at least
    15 % from the last measured result".
    """

    percent: float

    def should_send(self, value: float, last_sent: Optional[float]) -> bool:
        if last_sent is None:
            return True
        reference = abs(last_sent)
        if reference < 1e-12:
            return abs(value) > 1e-12
        # Tiny tolerance so an exactly-15% move passes a 15% rule
        # despite floating-point representation error.
        return abs(value - last_sent) / reference \
            >= self.percent / 100.0 - 1e-12

    def spec(self) -> str:
        return f"change {self.percent:g}"


@dataclass(frozen=True)
class RangeThreshold(ThresholdRule):
    """Publish while the value lies inside ``[lo, hi]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ControlSyntaxError(
                f"empty threshold range [{self.lo:g}, {self.hi:g}]")

    def should_send(self, value: float, last_sent: Optional[float]) -> bool:
        return self.lo <= value <= self.hi

    def spec(self) -> str:
        return f"range {self.lo:g} {self.hi:g}"


@dataclass
class MetricPolicy:
    """Per-metric publication policy: a period AND any thresholds.

    ``period = None`` means "every polling iteration".  All configured
    conditions must hold for a sample to be published.
    """

    period: Optional[float] = None
    thresholds: list[ThresholdRule] = field(default_factory=list)

    def set_period(self, seconds: float) -> None:
        if seconds <= 0 or not math.isfinite(seconds):
            raise ControlSyntaxError(
                f"update period must be positive, got {seconds!r}")
        self.period = float(seconds)

    def clear_period(self) -> None:
        self.period = None

    def add_threshold(self, rule: ThresholdRule) -> None:
        self.thresholds.append(rule)

    def clear_thresholds(self) -> None:
        self.thresholds.clear()

    @property
    def is_default(self) -> bool:
        return self.period is None and not self.thresholds

    def should_send(self, value: float, now: float,
                    last_sent: Optional[float],
                    last_sent_at: Optional[float]) -> bool:
        """Decide whether to publish ``value`` sampled at ``now``."""
        if self.period is not None and last_sent_at is not None:
            # Tolerate scheduler jitter of one part in a million.
            if now - last_sent_at < self.period * (1 - 1e-6):
                return False
        return all(rule.should_send(value, last_sent)
                   for rule in self.thresholds)

    def describe(self) -> str:
        """Human-readable policy (control-file read content)."""
        parts = []
        if self.period is not None:
            parts.append(f"period {self.period:g}")
        parts.extend(t.spec() for t in self.thresholds)
        return "; ".join(parts) if parts else "default"


def parse_threshold_spec(words: list[str]) -> ThresholdRule:
    """Parse a threshold spec: ``above V | below V | change P | range L H``."""
    if not words:
        raise ControlSyntaxError("missing threshold specification")
    kind, args = words[0].lower(), words[1:]

    def number(text: str) -> float:
        try:
            return float(text)
        except ValueError:
            raise ControlSyntaxError(
                f"bad number {text!r} in threshold") from None

    if kind == "above":
        if len(args) != 1:
            raise ControlSyntaxError("usage: above <value>")
        return AboveThreshold(number(args[0]))
    if kind == "below":
        if len(args) != 1:
            raise ControlSyntaxError("usage: below <value>")
        return BelowThreshold(number(args[0]))
    if kind == "change":
        if len(args) != 1:
            raise ControlSyntaxError("usage: change <percent>")
        pct = number(args[0].rstrip("%"))
        if pct <= 0:
            raise ControlSyntaxError("change percentage must be positive")
        return ChangeThreshold(pct)
    if kind == "range":
        if len(args) != 2:
            raise ControlSyntaxError("usage: range <lo> <hi>")
        return RangeThreshold(number(args[0]), number(args[1]))
    raise ControlSyntaxError(f"unknown threshold kind {kind!r}")
