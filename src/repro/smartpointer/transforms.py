"""Stream transforms and their cross-resource cost model.

A transform is the knob the SmartPointer server turns per client:

* **downsample** (``d`` = fraction of data kept) shrinks the wire size
  but *raises* client CPU work — "if data is down-sampled to better fit
  in a congested network the client needs to do more processing before
  being able to render the data" (paper §4.2, the Figure 11 insight);
* **preprocess** (``p`` = fraction rendered at the server) lowers
  client CPU work but *inflates* the wire size — "this pre-processing
  increases the size of the data stream, which also increases the
  network requirements".

These opposing couplings are exactly why single-resource adaptation can
backfire, which is the paper's multi-resource monitoring argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.smartpointer.data import MDFrame, StreamProfile

__all__ = ["Transform", "FULL_QUALITY", "INTERPOLATION_PENALTY",
           "PREPROCESS_RELIEF", "PREPROCESS_INFLATION",
           "DROP_VELOCITIES_CONTENT"]

#: Extra client CPU per fully-downsampled stream (reconstruction cost).
INTERPOLATION_PENALTY = 0.5
#: Fraction of client rendering work removed by full preprocessing.
PREPROCESS_RELIEF = 0.85
#: Wire-size inflation of a fully preprocessed (pre-rendered) stream.
PREPROCESS_INFLATION = 1.0


#: Content fraction remaining after dropping the velocity attributes —
#: "down-sampled data (for example, removing velocity data)" (§4.2).
#: Positions and velocities are equal-sized, plus ~10% shared framing.
DROP_VELOCITIES_CONTENT = 0.55


@dataclass(frozen=True)
class Transform:
    """One point in the (content, downsample, preprocess) space."""

    downsample: float = 1.0   #: d ∈ (0, 1]: fraction of atoms kept
    preprocess: float = 0.0   #: p ∈ [0, 1]: server-side rendering share
    #: c ∈ (0, 1]: fraction of per-atom attributes kept (1.0 = full
    #: feed, DROP_VELOCITIES_CONTENT = positions only).  Cuts wire size
    #: *and* client work proportionally, at a direct fidelity loss.
    content: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.downsample <= 1:
            raise SimulationError(
                f"downsample must be in (0, 1], got {self.downsample}")
        if not 0 <= self.preprocess <= 1:
            raise SimulationError(
                f"preprocess must be in [0, 1], got {self.preprocess}")
        if not 0 < self.content <= 1:
            raise SimulationError(
                f"content must be in (0, 1], got {self.content}")

    # -- resource model ---------------------------------------------------------

    def wire_size(self, profile: StreamProfile) -> float:
        """Bytes on the wire for one transformed frame."""
        inflation = 1.0 + PREPROCESS_INFLATION * self.preprocess
        return profile.base_size * self.downsample * self.content \
            * inflation

    def client_cost(self, profile: StreamProfile) -> float:
        """Client Mflop to render one transformed frame."""
        interp = 1.0 + INTERPOLATION_PENALTY * (1.0 - self.downsample)
        relief = 1.0 - PREPROCESS_RELIEF * self.preprocess
        return profile.base_client_cost * self.content * interp * relief

    def server_cost(self, profile: StreamProfile) -> float:
        """Server Mflop spent preprocessing one frame."""
        return profile.server_preprocess_cost * self.preprocess

    def describe(self) -> str:
        """Compact label (adaptation audit trail, trace annotations)."""
        return (f"downsample={self.downsample:g} "
                f"preprocess={self.preprocess:g} "
                f"content={self.content:g}")

    def quality(self) -> float:
        """Relative stream fidelity in [0, 1] (1 = full feed).

        Dropping attributes or atoms loses information outright;
        preprocessing bakes in a viewpoint, a milder loss.
        """
        return self.content * self.downsample \
            * (1.0 - 0.25 * self.preprocess)

    # -- data path ------------------------------------------------------------

    def apply(self, frame: MDFrame) -> MDFrame:
        """Materialise the transform on a frame's sampled atoms."""
        k = max(1, int(round(len(frame.positions) * self.downsample)))
        positions = frame.positions[:k]
        velocities = frame.velocities[:k]
        if self.content <= DROP_VELOCITIES_CONTENT:
            velocities = velocities[:0]  # velocities removed
        if self.preprocess > 0:
            # Pre-rendering projects positions to the view plane; the
            # sample keeps only x/y (z flattened toward the camera).
            positions = positions.copy()
            positions[:, 2] *= (1.0 - self.preprocess)
        return MDFrame(seq=frame.seq,
                       n_atoms=max(1, int(round(
                           frame.n_atoms * self.downsample))),
                       positions=positions,
                       velocities=np.asarray(velocities),
                       time=frame.time)


#: The identity transform: the original, uncustomised stream.
FULL_QUALITY = Transform()
