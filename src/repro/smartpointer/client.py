"""The SmartPointer client: receive, render, (optionally) log.

Clients range "from high-end displays like ImmersaDesk to smaller
displays like iPAQ, storage clients and fast desktop machines" — here a
client is parameterised by its node hardware, whether it logs frames to
disk, and its render pipeline.

Latency accounting matches the paper's Figure 9: "the amount of time
required for a data packet to be submitted by the server and processed
by the client" — i.e. submission → end of client processing, including
time spent queued behind earlier events.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.node import Node
from repro.sim.stores import Store
from repro.sim.trace import CounterTrace, TimeSeries
from repro.smartpointer.server import StreamEvent

__all__ = ["SmartPointerClient"]


class SmartPointerClient:
    """One stream consumer on one node."""

    def __init__(self, node: Node, logs_to_disk: bool = False) -> None:
        self.node = node
        self.logs_to_disk = logs_to_disk
        self.running = False
        self._queue: Store[StreamEvent] = Store(node.env)
        # statistics ----------------------------------------------------------
        self.arrivals = CounterTrace(f"{node.name}:arrivals")
        self.processed = CounterTrace(f"{node.name}:processed")
        self.latencies = TimeSeries(f"{node.name}:latency")
        self.inter_arrival = TimeSeries(f"{node.name}:inter-arrival")
        self._last_arrival: float | None = None
        node.stack.bind(f"smartptr:{node.name}", self._on_event)

    def start(self) -> "SmartPointerClient":
        if self.running:
            raise SimulationError("client already running")
        self.running = True
        self.node.spawn(self._render_loop(), name="smartptr-client")
        return self

    def stop(self) -> None:
        self.running = False

    # -- data path ------------------------------------------------------------

    def _on_event(self, msg) -> None:
        now = self.node.env.now
        self.arrivals.add(now, 1.0)
        if self._last_arrival is not None:
            self.inter_arrival.record(now, now - self._last_arrival)
        self._last_arrival = now
        self._queue.put(msg.payload)

    def _render_loop(self):
        env = self.node.env
        while self.running:
            event: StreamEvent = yield self._queue.get()
            if event.client_cost > 0:
                yield self.node.cpu.execute(event.client_cost,
                                            name="render")
            if self.logs_to_disk:
                yield self.node.disk.write(event.size)
            now = env.now
            self.processed.add(now, 1.0)
            self.latencies.record(now, now - event.sent_at)

    # -- results ---------------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Events received but not yet rendered."""
        return len(self._queue)

    def event_rate(self, window: float) -> float:
        """Processed events/s over the trailing window."""
        return self.processed.rate(self.node.env.now, window)

    def mean_latency(self, since: float = 0.0) -> float:
        """Mean submission-to-processed latency (seconds)."""
        return self.latencies.mean(since)

    def tail_latency(self, q: float = 95.0, since: float = 0.0) -> float:
        return self.latencies.percentile(q, since)
