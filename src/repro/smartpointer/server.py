"""The SmartPointer stream server.

Delivers molecular-dynamics frames to subscribed clients at a constant
event rate, applying a per-client transform chosen by that client's
adaptation policy.  With a :class:`~repro.dproc.toolkit.Dproc` attached,
dynamic policies read the client's CPU/network/disk state from the
server's local ``/proc/cluster`` view — the paper's headline loop:

    client resources → dproc → server → customized stream → client
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.dproc.metrics import MetricId
from repro.dproc.toolkit import Dproc
from repro.errors import SimulationError
from repro.sim.node import Node
from repro.sim.trace import CounterTrace, TimeSeries
from repro.smartpointer.adaptation import (AdaptationPolicy,
                                           ClientCapabilities)
from repro.smartpointer.data import MDFrameGenerator, StreamProfile
from repro.smartpointer.transforms import Transform

__all__ = ["StreamEvent", "ServerStream", "SmartPointerServer"]


@dataclass
class StreamEvent:
    """Wire representation of one customized frame."""

    seq: int
    sent_at: float
    size: float               #: bytes on the wire
    client_cost: float        #: Mflop the client must spend to render
    transform: Transform
    frame_time: float


class ServerStream:
    """One client's customized event stream."""

    def __init__(self, server: "SmartPointerServer", client_name: str,
                 profile: StreamProfile, rate: float,
                 policy: AdaptationPolicy,
                 caps: ClientCapabilities) -> None:
        if rate <= 0:
            raise SimulationError("event rate must be positive")
        self.server = server
        self.client_name = client_name
        self.profile = profile
        self.rate = float(rate)
        self.policy = policy
        self.caps = caps
        self.running = False
        self.generator = MDFrameGenerator(
            profile, seed=int(server.node.rng.integers(2**31)))
        self._conn = server.node.stack.connect(
            client_name, tag=f"smartptr:{client_name}")
        # statistics ---------------------------------------------------------
        self.events_sent = CounterTrace(f"stream:{client_name}:sent")
        self.bytes_sent = CounterTrace(f"stream:{client_name}:bytes")
        self.quality = TimeSeries(f"stream:{client_name}:quality")
        #: Transform last applied (None before the first frame) —
        #: adaptation decisions are audited when it changes.
        self._last_transform: Optional[Transform] = None

    def start(self) -> "ServerStream":
        if self.running:
            raise SimulationError("stream already running")
        self.running = True
        self.server.node.spawn(self._send_loop(),
                               name=f"stream:{self.client_name}")
        return self

    def stop(self) -> None:
        self.running = False

    def _send_loop(self):
        env = self.server.node.env
        interval = 1.0 / self.rate
        while self.running:
            now = env.now
            observations = dict(
                self.server.observations(self.client_name))
            # The policy needs to know how much of the (residual)
            # bandwidth this stream itself is consuming.
            observations["stream_rate"] = self._conn.used_bandwidth(
                window=max(4.0, 4.0 * interval))
            transform = self.policy.choose(
                observations, self.profile, self.rate, self.caps)
            if transform != self._last_transform:
                self._record_adaptation(now, transform, observations)
                self._last_transform = transform
            frame = self.generator.next_frame(now)
            size = transform.wire_size(self.profile)
            event = StreamEvent(
                seq=frame.seq, sent_at=now, size=size,
                client_cost=transform.client_cost(self.profile),
                transform=transform, frame_time=frame.time)
            # Server-side preprocessing consumes server CPU, but the
            # send pipeline stays non-blocking: the server emits at a
            # constant rate regardless of downstream congestion.
            server_cost = transform.server_cost(self.profile)
            if server_cost > 0:
                self.server.node.cpu.execute(server_cost,
                                             name="preprocess")
            self._conn.send(event, size=size)
            self.events_sent.add(now, 1.0)
            self.bytes_sent.add(now, size)
            self.quality.record(now, transform.quality())
            yield env.timeout(interval)

    def _record_adaptation(self, now: float, transform: Transform,
                           observations: dict[str, float]) -> None:
        """Audit one adaptation decision with its monitoring evidence.

        Each dproc-fed observation becomes a trigger naming the metric
        and, when the cache entry came from a traced event, the trace
        id that delivered it (``DMon.provenance``) — the raw material
        for :func:`repro.tracing.adaptation_audit`.
        """
        tracer = self.server.node.tracer
        if not tracer.enabled:
            return
        dproc = self.server.dproc
        triggers = []
        if dproc is not None:
            for obs_name, metric in (
                    ("loadavg", MetricId.LOADAVG),
                    ("net_bandwidth", MetricId.NET_BANDWIDTH),
                    ("diskusage", MetricId.DISKUSAGE)):
                ref = dproc.dmon.provenance(self.client_name, metric)
                triggers.append({
                    "metric": metric.name.lower(),
                    "observation": obs_name,
                    "value": observations.get(obs_name, math.nan),
                    "trace_id":
                        ref.trace_id if ref is not None else None,
                    "received_at":
                        ref.received_at if ref is not None else None,
                })
        previous = self._last_transform
        tracer.record_adaptation(
            time=now, node=self.server.node.name,
            client=self.client_name, policy=self.policy.name,
            previous=(previous.describe()
                      if previous is not None else None),
            chosen=transform.describe(), observations=observations,
            triggers=triggers)


class SmartPointerServer:
    """The stream server application on one node."""

    def __init__(self, node: Node, dproc: Optional[Dproc] = None) -> None:
        self.node = node
        self.dproc = dproc
        self.streams: dict[str, ServerStream] = {}

    def add_client(self, client_name: str, profile: StreamProfile,
                   rate: float, policy: AdaptationPolicy,
                   caps: ClientCapabilities | None = None,
                   start: bool = True) -> ServerStream:
        """Subscribe a client with its own derivation of the data."""
        if client_name in self.streams:
            raise SimulationError(
                f"client {client_name!r} already subscribed")
        stream = ServerStream(self, client_name, profile, rate, policy,
                              caps or ClientCapabilities())
        self.streams[client_name] = stream
        if start:
            stream.start()
        return stream

    def remove_client(self, client_name: str) -> None:
        stream = self.streams.pop(client_name, None)
        if stream is None:
            raise SimulationError(f"no stream for {client_name!r}")
        stream.stop()

    def observations(self, client_name: str) -> dict[str, float]:
        """Latest dproc view of a client's resources (NaN = unknown)."""
        if self.dproc is None:
            return {}
        return {
            "loadavg": self.dproc.metric(client_name, MetricId.LOADAVG),
            "net_bandwidth": self.dproc.metric(
                client_name, MetricId.NET_BANDWIDTH),
            "diskusage": self.dproc.metric(client_name,
                                           MetricId.DISKUSAGE),
        }

    def has_fresh_data(self, client_name: str) -> bool:
        """True once at least one monitored metric has been received."""
        obs = self.observations(client_name)
        return any(not math.isnan(v) for v in obs.values())
