"""SmartPointer: the paper's scientific-visualization stream application.

A client-server molecular-dynamics streaming system with per-client
stream customization (downsampling / server-side preprocessing) driven
by dproc monitoring data.
"""

from repro.smartpointer.adaptation import (AdaptationPolicy,
                                           ClientCapabilities,
                                           DynamicAdaptation,
                                           NoAdaptation,
                                           StaticAdaptation)
from repro.smartpointer.client import SmartPointerClient
from repro.smartpointer.data import (BYTES_PER_ATOM, MDFrame,
                                     MDFrameGenerator, StreamProfile)
from repro.smartpointer.server import (ServerStream, SmartPointerServer,
                                       StreamEvent)
from repro.smartpointer.transforms import (FULL_QUALITY,
                                           INTERPOLATION_PENALTY,
                                           PREPROCESS_INFLATION,
                                           PREPROCESS_RELIEF, Transform)

__all__ = [
    "AdaptationPolicy", "ClientCapabilities", "DynamicAdaptation",
    "NoAdaptation", "StaticAdaptation",
    "SmartPointerClient",
    "BYTES_PER_ATOM", "MDFrame", "MDFrameGenerator", "StreamProfile",
    "ServerStream", "SmartPointerServer", "StreamEvent",
    "FULL_QUALITY", "INTERPOLATION_PENALTY", "PREPROCESS_INFLATION",
    "PREPROCESS_RELIEF", "Transform",
]
