"""Stream adaptation policies: none, static, and dproc-driven dynamic.

The dynamic policy is the paper's headline use of dproc: the server
reads each client's resource state from its local ``/proc/cluster``
view and picks the stream transform that keeps every *monitored*
resource within its per-event budget.  Resources the policy does not
monitor are assumed unconstrained — that is precisely how the cpu-only
and network-only monitors of Figure 11 make conflicting adaptations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import SimulationError
from repro.smartpointer.data import StreamProfile
from repro.smartpointer.transforms import FULL_QUALITY, Transform

__all__ = ["ClientCapabilities", "AdaptationPolicy", "NoAdaptation",
           "StaticAdaptation", "DynamicAdaptation", "Observations"]

#: Observation dict keys (values NaN when unknown).
Observations = Mapping[str, float]

#: Search grid for the dynamic policy.
_DOWNSAMPLE_GRID = (1.0, 0.85, 0.7, 0.55, 0.4, 0.25, 0.12)
_PREPROCESS_GRID = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
_CONTENT_GRID = (1.0, 0.55)  # full feed vs. velocities dropped


@dataclass(frozen=True)
class ClientCapabilities:
    """What the server knows about a client's hardware."""

    mflops: float = 17.4       #: per-CPU compute
    n_cpus: int = 1
    disk_rate: float = 20 * 1024 * 1024   #: bytes/s
    logs_to_disk: bool = False

    def __post_init__(self) -> None:
        if self.mflops <= 0 or self.n_cpus < 1 or self.disk_rate <= 0:
            raise SimulationError("invalid client capabilities")


class AdaptationPolicy(ABC):
    """Chooses the transform for the next event of one client stream."""

    @abstractmethod
    def choose(self, observations: Observations,
               profile: StreamProfile, rate: float,
               caps: ClientCapabilities) -> Transform:
        """Pick a transform given the latest monitoring observations."""

    @property
    def name(self) -> str:
        return type(self).__name__


class NoAdaptation(AdaptationPolicy):
    """The paper's 'no filter' baseline: always the full stream."""

    def choose(self, observations, profile, rate, caps) -> Transform:
        return FULL_QUALITY


class StaticAdaptation(AdaptationPolicy):
    """The 'static filter' baseline: a fixed, a-priori customization.

    "The SmartPointer server does the client-specified customization,
    but does not use the resource availability information from the
    clients.  The customization criteria remains the same throughout
    the experiment."
    """

    def __init__(self, transform: Transform) -> None:
        self.transform = transform

    def choose(self, observations, profile, rate, caps) -> Transform:
        return self.transform


class DynamicAdaptation(AdaptationPolicy):
    """dproc-driven adaptation over a configurable resource set.

    ``resources`` ⊆ {'cpu', 'net', 'disk'} selects which monitors the
    policy consults (Figure 11 compares cpu-only, net-only, and the
    hybrid).  ``margin`` is the fraction of the per-event budget each
    pipeline stage may use.  ``last_choice`` exposes the most recent
    decision for experiments.
    """

    def __init__(self, resources: Iterable[str] = ("cpu", "net", "disk"),
                 margin: float = 0.75) -> None:
        resources = frozenset(resources)
        unknown = resources - {"cpu", "net", "disk"}
        if unknown:
            raise SimulationError(
                f"unknown adaptation resources: {sorted(unknown)}")
        if not resources:
            raise SimulationError("need at least one resource")
        if not 0 < margin <= 1:
            raise SimulationError("margin must be in (0, 1]")
        self.resources = resources
        self.margin = float(margin)
        self.last_choice = FULL_QUALITY

    @property
    def name(self) -> str:
        return f"dynamic({'+'.join(sorted(self.resources))})"

    # -- the decision procedure ----------------------------------------------------

    def choose(self, observations: Observations,
               profile: StreamProfile, rate: float,
               caps: ClientCapabilities) -> Transform:
        budget = self.margin / rate
        best: Transform | None = None
        best_quality = -1.0
        fallback: Transform = FULL_QUALITY
        fallback_bottleneck = math.inf
        for c in _CONTENT_GRID:
            for d in _DOWNSAMPLE_GRID:
                for p in _PREPROCESS_GRID:
                    t = Transform(downsample=d, preprocess=p, content=c)
                    stages = self._stage_times(t, observations,
                                               profile, caps)
                    bottleneck = max(stages.values()) if stages else 0.0
                    if bottleneck <= budget:
                        if t.quality() > best_quality:
                            best, best_quality = t, t.quality()
                    elif bottleneck < fallback_bottleneck:
                        fallback, fallback_bottleneck = t, bottleneck
        self.last_choice = best if best is not None else fallback
        return self.last_choice

    def _stage_times(self, t: Transform, obs: Observations,
                     profile: StreamProfile,
                     caps: ClientCapabilities) -> dict[str, float]:
        """Predicted per-event time of each *monitored* pipeline stage."""
        size = t.wire_size(profile)
        stages: dict[str, float] = {}
        if "net" in self.resources:
            avail = obs.get("net_bandwidth", math.nan)
            if not math.isnan(avail):
                # The residual the client reports excludes what this
                # very stream is using; the stream may re-claim its own
                # share, so add the server-side estimate back in.
                avail += obs.get("stream_rate", 0.0)
                if avail > 0:
                    stages["net"] = size / avail
        if "cpu" in self.resources:
            loadavg = obs.get("loadavg", math.nan)
            if not math.isnan(loadavg):
                share = self._client_share(loadavg, caps)
                stages["cpu"] = t.client_cost(profile) / share
        if "disk" in self.resources and caps.logs_to_disk:
            # Disk time is driven by the bytes we ship regardless of
            # current disk business; the observation gates whether we
            # know the disk exists at all.
            stages["disk"] = size / caps.disk_rate
        return stages

    @staticmethod
    def _client_share(loadavg: float, caps: ClientCapabilities) -> float:
        """Estimate the Mflop/s available to the client's renderer.

        The run-queue average includes the renderer itself when it is
        busy; subtract one for it (conservatively) and processor-share
        the rest.
        """
        competitors = max(0.0, loadavg - 1.0)
        share = caps.mflops * min(
            1.0, caps.n_cpus / (1.0 + competitors))
        return max(share, caps.mflops * 0.01)
