"""Trace context: the tag that rides along with every traced event.

A :class:`TraceContext` names one position inside one causal trace —
the trace id, the span under which the next stage should record its
work, and how many stages deep the event already is.  Contexts are
immutable; each pipeline stage derives a child context from the span
it opened and hands *that* to the next stage (event field, message
attribute), exactly like W3C traceparent propagation but in-process.

Sampling is decided once, at the root (*head sampling*): a trace id is
hashed with a stable CRC (never Python's randomised ``hash``) against
the collector's seed, so the same seed samples the same traces in
every run — traces are bit-identical run-to-run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

__all__ = ["TraceContext", "TraceRef", "trace_hash"]

#: Denominator of the sampling hash: crc32 yields 32-bit values.
_HASH_SPACE = float(2 ** 32)


def trace_hash(seed: int, trace_id: str) -> float:
    """Deterministic hash of a trace id into [0, 1).

    Seeded and stable across processes and platforms — this is what
    makes head sampling reproducible (``PYTHONHASHSEED`` never enters
    the picture).
    """
    digest = zlib.crc32(f"{seed}:{trace_id}".encode("utf-8"))
    return digest / _HASH_SPACE


@dataclass(frozen=True)
class TraceContext:
    """Immutable position inside one causal trace."""

    trace_id: str     #: the trace this event belongs to
    span_id: int      #: parent span for the next recorded stage
    hop: int = 0      #: pipeline depth of that span (root = 0)


@dataclass(frozen=True)
class TraceRef:
    """Provenance pointer: which trace delivered a cached value.

    The d-mon remote-metric cache keeps one of these per
    ``(host, metric)`` while tracing is attached, so the adaptation
    audit trail can name the exact monitoring event behind a decision.
    """

    trace_id: str
    received_at: float
