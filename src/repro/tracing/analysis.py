"""Trace analyzers: critical path, latency breakdown, adaptation audit.

Two consumers of the assembled span trees:

* :func:`latency_breakdown` — decomposes each end-to-end trace along
  its *critical path* (the chain of spans ending at the latest-ending
  span) and aggregates per-stage p50/p95/p99, the per-event analogue
  of the paper's Figures 9–10 latency curves;
* :func:`adaptation_audit` — resolves each recorded SmartPointer
  adaptation back to the monitoring trace(s) that delivered its
  inputs, naming the metric, the threshold/filter evaluation that let
  the sample through, and the monitoring latency it experienced.

Everything here is pure post-processing over a
:class:`~repro.tracing.collector.TraceCollector` — no simulator state,
no RNG, safe to run mid-simulation or after.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.tracing.collector import SpanRecord, SpanTree, TraceCollector

__all__ = ["critical_path", "latency_breakdown", "adaptation_audit",
           "render_breakdown", "render_audit"]

#: Stages whose spans mark a trace as having reached a consumer.
TERMINAL_STAGES = frozenset({"delivery", "update"})

#: Canonical stage ordering for reports (unknown stages sort after).
STAGE_ORDER = ("dmon", "module", "dmon.param", "dmon.filter", "kecho",
               "transport", "delivery", "update", "wan", "control")


def critical_path(tree: SpanTree) -> list[tuple[SpanRecord, float]]:
    """The chain of spans ending at the trace's latest finished span.

    Returns ``[(span, seconds attributed to it), ...]`` from the root
    of the chain down to the terminal span.  A span's share is the gap
    until its successor starts (the time the event spent *in* that
    stage before the next stage took over); the terminal span keeps
    its own full duration.  The shares therefore sum exactly to
    ``terminal.end - chain_root.start``.
    """
    finished = [s for s in tree.spans if s.end is not None]
    if not finished:
        return []
    by_id = {s.span_id: s for s in finished}
    terminal = max(finished, key=lambda s: (s.end, s.span_id))
    chain = [terminal]
    current = terminal
    while (current.parent_id is not None
           and current.parent_id in by_id):
        current = by_id[current.parent_id]
        chain.append(current)
    chain.reverse()
    segments: list[tuple[SpanRecord, float]] = []
    for i, span in enumerate(chain):
        if i + 1 < len(chain):
            share = chain[i + 1].start - span.start
        else:
            share = span.end - span.start
        segments.append((span, max(0.0, share)))
    return segments


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return math.nan
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _stats(values: list[float]) -> dict:
    ordered = sorted(values)
    total = sum(ordered)
    return {"count": len(ordered),
            "mean": total / len(ordered) if ordered else math.nan,
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "p99": _percentile(ordered, 0.99),
            "max": ordered[-1] if ordered else math.nan}


def latency_breakdown(collector: TraceCollector) -> dict:
    """Per-stage critical-path decomposition across all end-to-end
    traces (those whose critical path reaches a delivery/update span).

    Per trace, each critical-path span's share is attributed to its
    stage; stage shares sum to that trace's end-to-end latency.  The
    report aggregates p50/p95/p99 per stage and for the total.
    """
    per_stage: dict[str, list[float]] = {}
    end_to_end: list[float] = []
    used = 0
    skipped = 0
    for tree in collector.trees():
        segments = critical_path(tree)
        if not segments or segments[-1][0].stage not in TERMINAL_STAGES:
            skipped += 1
            continue
        used += 1
        shares: dict[str, float] = {}
        for span, share in segments:
            shares[span.stage] = shares.get(span.stage, 0.0) + share
        end_to_end.append(sum(shares.values()))
        for stage, share in shares.items():
            per_stage.setdefault(stage, []).append(share)

    def stage_rank(stage: str) -> tuple[int, str]:
        try:
            return (STAGE_ORDER.index(stage), stage)
        except ValueError:
            return (len(STAGE_ORDER), stage)

    return {
        "source": "repro.tracing",
        "n_traces": used,
        "n_traces_skipped": skipped,
        "end_to_end": _stats(end_to_end),
        "stages": {stage: _stats(per_stage[stage])
                   for stage in sorted(per_stage, key=stage_rank)},
    }


def _resolve_trigger(collector: TraceCollector, trigger: dict) -> dict:
    """Augment one audit trigger with the evaluation that passed it.

    Looks up the monitoring trace that delivered the metric and pulls
    the d-mon decision span for it — a ``dmon.param`` span names the
    threshold/period rule, a ``dmon.filter`` span names the dynamic
    filter.  Falls back gracefully when the trace was evicted.
    """
    resolved = dict(trigger)
    resolved.setdefault("rule", None)
    resolved.setdefault("filter_id", None)
    resolved.setdefault("monitor_latency", None)
    trace_id = trigger.get("trace_id")
    if trace_id is None:
        return resolved
    tree = collector.tree(trace_id)
    if tree is None:
        return resolved
    metric = trigger.get("metric")
    for span in tree.spans:
        if (span.stage == "dmon.param"
                and span.attrs.get("metric") == metric):
            resolved["rule"] = span.attrs.get("rule")
            break
        if (span.stage == "dmon.filter"
                and metric in span.attrs.get("kept", ())):
            resolved["filter_id"] = span.attrs.get("filter_id")
            break
    root = tree.root
    received = trigger.get("received_at")
    if root is not None and received is not None:
        resolved["monitor_latency"] = received - root.start
    return resolved


def adaptation_audit(collector: TraceCollector) -> list[dict]:
    """The audit trail, with every trigger resolved against its trace.

    One dict per adaptation decision; ``triggers`` gains ``rule`` /
    ``filter_id`` (which evaluation passed the sample) and
    ``monitor_latency`` (poll start to arrival at the decision node).
    """
    out = []
    for entry in collector.audit:
        record = entry.snapshot()
        record["triggers"] = [_resolve_trigger(collector, t)
                              for t in record["triggers"]]
        out.append(record)
    return out


# -- text rendering ----------------------------------------------------------

def _fmt_seconds(value: float) -> str:
    if value != value:  # NaN
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    return f"{value * 1e3:.3f}ms"


def render_breakdown(report: dict) -> str:
    """Fixed-width table of a :func:`latency_breakdown` report."""
    lines = [f"critical-path latency breakdown "
             f"({report['n_traces']} end-to-end traces, "
             f"{report['n_traces_skipped']} skipped)"]
    header = (f"  {'stage':<12} {'count':>6} {'p50':>10} {'p95':>10} "
              f"{'p99':>10} {'max':>10}")
    lines.append(header)
    rows = list(report["stages"].items())
    rows.append(("end-to-end", report["end_to_end"]))
    for stage, stats in rows:
        lines.append(
            f"  {stage:<12} {stats['count']:>6} "
            f"{_fmt_seconds(stats['p50']):>10} "
            f"{_fmt_seconds(stats['p95']):>10} "
            f"{_fmt_seconds(stats['p99']):>10} "
            f"{_fmt_seconds(stats['max']):>10}")
    return "\n".join(lines)


def render_audit(entries: list[dict], limit: Optional[int] = None) -> str:
    """Readable adaptation audit trail (most recent last)."""
    if not entries:
        return "adaptation audit: no decisions recorded"
    shown = entries if limit is None else entries[-limit:]
    lines = [f"adaptation audit trail "
             f"({len(entries)} decisions, showing {len(shown)})"]
    for entry in shown:
        change = (f"{entry['previous']} -> {entry['chosen']}"
                  if entry["previous"] else f"start {entry['chosen']}")
        lines.append(f"  [t={entry['time']:.2f}] {entry['node']}: "
                     f"stream to {entry['client']} via "
                     f"{entry['policy']}: {change}")
        for trig in entry["triggers"]:
            evidence = []
            if trig.get("rule"):
                evidence.append(f"rule '{trig['rule']}'")
            if trig.get("filter_id"):
                evidence.append(f"filter '{trig['filter_id']}'")
            if trig.get("trace_id"):
                evidence.append(f"trace {trig['trace_id']}")
            if trig.get("monitor_latency") is not None:
                evidence.append(
                    "monitor latency "
                    f"{_fmt_seconds(trig['monitor_latency'])}")
            detail = "; ".join(evidence) if evidence else "no trace"
            lines.append(f"      {trig['metric']} = "
                         f"{trig['value']:.4g}  ({detail})")
    return "\n".join(lines)
