"""Trace exporters: Chrome trace-event (Perfetto) JSON and text trees.

:func:`to_chrome_trace` emits the Trace Event Format's JSON object
flavour (``{"traceEvents": [...]}``) with complete-event (``"ph": "X"``)
slices, loadable directly in ``ui.perfetto.dev`` or ``chrome://tracing``
— each simulated node becomes a process, each trace a thread within
it, so the fan-out of one monitoring event reads as one lane per trace.

:func:`render_tree` draws one span tree as indented ASCII with
per-span stage, relative timing, status and attributes — the quick
look the CLI prints.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.telemetry.ordering import freeze_attrs
from repro.tracing.collector import (SpanRecord, SpanTree,
                                     TraceCollector)

__all__ = ["to_chrome_trace", "render_tree"]

#: Simulation seconds -> trace-event microseconds.
_US = 1e6


def to_chrome_trace(collector: TraceCollector,
                    trace_ids: Optional[Iterable[str]] = None) -> dict:
    """Export retained traces as a Chrome trace-event JSON object.

    Only finished spans become slices (an open span has no duration to
    draw); every slice carries the full span identity in ``args`` so
    Perfetto's query view can join parents to children.
    """
    trees = ([collector.tree(tid) for tid in trace_ids]
             if trace_ids is not None else collector.trees())
    trees = [t for t in trees if t is not None]

    # Stable pid/tid assignment: nodes sorted by name, traces in
    # collector insertion order.
    nodes = sorted({span.node for tree in trees for span in tree.spans})
    pid_of = {node: i + 1 for i, node in enumerate(nodes)}
    tid_of = {tree.trace_id: i + 1 for i, tree in enumerate(trees)}

    events: list[dict] = []
    for node in nodes:
        events.append({"name": "process_name", "ph": "M",
                       "pid": pid_of[node], "tid": 0,
                       "args": {"name": node}})
    for tree in trees:
        named: set[tuple[int, int]] = set()
        for span in tree.spans:
            if span.end is None:
                continue
            pid = pid_of[span.node]
            tid = tid_of[tree.trace_id]
            if (pid, tid) not in named:
                named.add((pid, tid))
                events.append({"name": "thread_name", "ph": "M",
                               "pid": pid, "tid": tid,
                               "args": {"name": tree.trace_id}})
            args = dict(freeze_attrs(span.attrs))
            args.update({"trace_id": span.trace_id,
                         "span_id": span.span_id,
                         "parent_id": span.parent_id,
                         "status": span.status})
            events.append({
                "name": span.name,
                "cat": span.stage,
                "ph": "X",
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.tracing",
            "n_traces": len(trees),
            "seed": collector.seed,
            "sample_rate": collector.sample_rate,
        },
    }


def _fmt_attrs(span: SpanRecord) -> str:
    items = freeze_attrs(span.attrs)
    if not items:
        return ""
    rendered = []
    for key, value in items:
        if isinstance(value, float):
            rendered.append(f"{key}={value:.4g}")
        else:
            rendered.append(f"{key}={value}")
    return " " + " ".join(rendered)


def _fmt_offset(seconds: float) -> str:
    if seconds >= 1.0:
        return f"+{seconds:.3f}s"
    return f"+{seconds * 1e3:.3f}ms"


def render_tree(tree: SpanTree) -> str:
    """One span tree as indented ASCII (children in shared order)."""
    root = tree.root
    origin = root.start if root is not None else (
        tree.spans[0].start if tree.spans else 0.0)
    header = (f"trace {tree.trace_id} — {len(tree.spans)} spans"
              + (f", {tree.dropped} dropped" if tree.dropped else ""))
    lines = [header]

    def emit(span: SpanRecord, depth: int) -> None:
        if span.end is None:
            timing = f"{_fmt_offset(span.start - origin)} .. open"
        else:
            timing = (f"{_fmt_offset(span.start - origin)} "
                      f"dur={_fmt_offset(span.end - span.start)[1:]}")
        status = "" if span.status == "ok" else f" !{span.status}"
        lines.append(f"{'  ' * depth}- {span.name} [{span.stage}] "
                     f"@{span.node} {timing}{status}{_fmt_attrs(span)}")
        for child in tree.children.get(span.span_id, ()):
            emit(child, depth + 1)

    for top in tree.children.get(None, ()):
        emit(top, 1)
    return "\n".join(lines)
