"""The per-cluster trace collector: spans, trees, the audit log.

One :class:`TraceCollector` is attached to a cluster
(:func:`attach_tracer`); every node then records spans into it as
monitoring events move through the pipeline.  The collector is built
under the same constraints as the telemetry registry — and one more:

* **Passive.**  Recording never schedules simulator events, draws from
  any sim RNG stream, or charges kernel CPU.  A traced run and an
  untraced run of the same seed are behaviourally bit-identical
  (test-enforced).
* **Deterministic.**  Trace ids come from per-node counters, span ids
  from the collector's own counter (which only advances while tracing
  is attached), and head sampling hashes trace ids with a seeded CRC.
* **Bounded.**  At most ``max_traces`` traces are retained (oldest
  evicted first) and at most ``max_spans_per_trace`` spans per trace
  (later spans counted, not stored); the adaptation audit log is a
  bounded deque.

Disabled mode is the shared :data:`NULL_TRACER` singleton: every
``node.tracer`` defaults to it, so instrumentation sites pay one
attribute load and a no-op call when tracing is off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.errors import TracingError
from repro.telemetry.ordering import (check_interval, freeze_attrs,
                                      span_sort_key)
from repro.tracing.context import TraceContext, trace_hash

__all__ = ["SpanRecord", "SpanHandle", "SpanTree", "AuditEntry",
           "TraceCollector", "NULL_TRACER", "attach_tracer"]

#: Span status values.
STATUS_OPEN = "open"
STATUS_OK = "ok"
STATUS_DROPPED = "dropped"


class SpanRecord:
    """One recorded pipeline stage inside one trace (mutable while
    open; ``end is None`` until finished)."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "stage",
                 "node", "start", "end", "status", "depth", "attrs")

    def __init__(self, trace_id: str, span_id: int,
                 parent_id: Optional[int], name: str, stage: str,
                 node: str, start: float, depth: int,
                 attrs: dict[str, Any]) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.stage = stage
        self.node = node
        self.start = float(start)
        self.end: Optional[float] = None
        self.status = STATUS_OPEN
        self.depth = depth
        self.attrs = attrs

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def sort_key(self) -> tuple[float, float, int]:
        # Span ids are issued in arrival order, so they double as the
        # sequence component of the shared ordering contract.
        return span_sort_key(self.start, self.end, self.span_id)

    def snapshot(self) -> dict:
        """Plain JSON-able view (attrs in the shared sorted order)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "stage": self.stage, "node": self.node,
                "start": self.start, "end": self.end,
                "status": self.status, "depth": self.depth,
                "attrs": dict(freeze_attrs(self.attrs))}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<span {self.trace_id}#{self.span_id} {self.name} "
                f"[{self.stage}] {self.status}>")


class SpanHandle:
    """Caller-facing handle for one recorded span."""

    __slots__ = ("record",)

    def __init__(self, record: SpanRecord) -> None:
        self.record = record

    @property
    def context(self) -> TraceContext:
        """Context for child stages of this span."""
        rec = self.record
        return TraceContext(trace_id=rec.trace_id, span_id=rec.span_id,
                            hop=rec.depth)

    def annotate(self, **attrs: Any) -> "SpanHandle":
        """Merge attributes into the span (open or finished)."""
        self.record.attrs.update(attrs)
        return self

    def finish(self, end: float, status: str = STATUS_OK,
               **attrs: Any) -> "SpanHandle":
        """Close the span at simulation time ``end``."""
        rec = self.record
        if rec.end is not None:
            raise TracingError(
                f"span {rec.name!r} in trace {rec.trace_id!r} finished "
                f"twice")
        check_interval(rec.name, rec.start, end)
        rec.end = float(end)
        rec.status = status
        if attrs:
            rec.attrs.update(attrs)
        return self


@dataclass
class SpanTree:
    """One trace's spans, assembled into a parent/child tree."""

    trace_id: str
    #: All retained spans, in the shared (start, end, seq) order.
    spans: list[SpanRecord]
    #: span id -> ordered child spans.
    children: dict[Optional[int], list[SpanRecord]]
    #: Spans dropped by the per-trace bound (not retained).
    dropped: int

    @property
    def root(self) -> Optional[SpanRecord]:
        roots = self.children.get(None, ())
        return roots[0] if roots else None

    @property
    def complete(self) -> bool:
        """True when every retained span has finished."""
        return all(s.end is not None for s in self.spans)

    def span(self, span_id: int) -> Optional[SpanRecord]:
        for rec in self.spans:
            if rec.span_id == span_id:
                return rec
        return None

    def snapshot(self) -> dict:
        return {"trace_id": self.trace_id, "dropped": self.dropped,
                "spans": [s.snapshot() for s in self.spans]}


@dataclass(frozen=True)
class AuditEntry:
    """One SmartPointer adaptation decision, with its evidence."""

    time: float
    node: str            #: server host that made the decision
    client: str          #: client stream being adapted
    policy: str          #: adaptation policy name
    previous: Optional[str]   #: previous transform (None = first pick)
    chosen: str          #: the transform chosen at ``time``
    #: Observation name -> value the policy saw (NaN = unknown).
    observations: tuple[tuple[str, float], ...]
    #: One entry per monitored metric that fed the decision:
    #: {"metric", "observation", "value", "trace_id", "received_at"} —
    #: trace_id/received_at are None when no traced event delivered it.
    triggers: tuple[dict, ...]

    def snapshot(self) -> dict:
        return {"time": self.time, "node": self.node,
                "client": self.client, "policy": self.policy,
                "previous": self.previous, "chosen": self.chosen,
                "observations": dict(self.observations),
                "triggers": [dict(t) for t in self.triggers]}


class _TraceBuf:
    __slots__ = ("spans", "dropped")

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.dropped = 0


class TraceCollector:
    """Bounded, deterministic, head-sampling span store for a cluster."""

    #: Truthiness/enabled marker instrumentation sites test before
    #: doing any per-event work.
    enabled = True

    def __init__(self, seed: int = 0, sample_rate: float = 1.0,
                 max_traces: int = 4096,
                 max_spans_per_trace: int = 512,
                 max_audit: int = 4096) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise TracingError(
                f"sample_rate must be in [0, 1], got {sample_rate!r}")
        if max_traces < 1 or max_spans_per_trace < 1:
            raise TracingError("trace bounds must be positive")
        self.seed = int(seed)
        self.sample_rate = float(sample_rate)
        self.max_traces = int(max_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._traces: dict[str, _TraceBuf] = {}
        self._next_span = 1
        #: Adaptation decisions, oldest evicted beyond ``max_audit``.
        self.audit: deque[AuditEntry] = deque(maxlen=max_audit)
        # accounting -------------------------------------------------------
        self.traces_started = 0
        self.traces_sampled_out = 0
        self.traces_evicted = 0
        self.spans_recorded = 0
        self.spans_dropped = 0

    # -- sampling -----------------------------------------------------------

    def sampled(self, trace_id: str) -> bool:
        """Head-sampling decision for one trace id (deterministic)."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return trace_hash(self.seed, trace_id) < self.sample_rate

    # -- recording ----------------------------------------------------------

    def begin_trace(self, trace_id: str, name: str, stage: str,
                    node: str, start: float,
                    **attrs: Any) -> Optional[SpanHandle]:
        """Open a trace's root span; None when sampled out."""
        if not self.sampled(trace_id):
            self.traces_sampled_out += 1
            return None
        if trace_id in self._traces:
            raise TracingError(f"trace {trace_id!r} already exists")
        while len(self._traces) >= self.max_traces:
            oldest = next(iter(self._traces))
            del self._traces[oldest]
            self.traces_evicted += 1
        self._traces[trace_id] = _TraceBuf()
        self.traces_started += 1
        return self._record(trace_id, None, name, stage, node, start,
                            depth=0, attrs=attrs)

    def start_span(self, ctx: Optional[TraceContext], name: str,
                   stage: str, node: str, start: float,
                   **attrs: Any) -> Optional[SpanHandle]:
        """Open a child span under ``ctx`` (None-safe: unsampled or
        evicted traces propagate None down the pipeline)."""
        if ctx is None:
            return None
        return self._record(ctx.trace_id, ctx.span_id, name, stage,
                            node, start, depth=ctx.hop + 1, attrs=attrs)

    def record_span(self, ctx: Optional[TraceContext], name: str,
                    stage: str, node: str, start: float, end: float,
                    status: str = STATUS_OK,
                    **attrs: Any) -> Optional[SpanHandle]:
        """Record an already-completed span in one call."""
        handle = self.start_span(ctx, name, stage, node, start, **attrs)
        if handle is not None:
            handle.finish(end, status=status)
        return handle

    def record_adaptation(self, time: float, node: str, client: str,
                          policy: str, previous: Optional[str],
                          chosen: str,
                          observations: dict[str, float],
                          triggers: Iterable[dict]) -> AuditEntry:
        """Append one adaptation decision to the audit trail."""
        entry = AuditEntry(
            time=float(time), node=node, client=client, policy=policy,
            previous=previous, chosen=chosen,
            observations=freeze_attrs(observations),
            triggers=tuple(dict(t) for t in triggers))
        self.audit.append(entry)
        return entry

    def _record(self, trace_id: str, parent_id: Optional[int],
                name: str, stage: str, node: str, start: float,
                depth: int, attrs: dict) -> Optional[SpanHandle]:
        buf = self._traces.get(trace_id)
        if buf is None:
            # The trace was evicted (or never sampled via begin_trace):
            # downstream stages degrade to untraced, never crash.
            self.spans_dropped += 1
            return None
        if len(buf.spans) >= self.max_spans_per_trace:
            buf.dropped += 1
            self.spans_dropped += 1
            return None
        record = SpanRecord(trace_id=trace_id,
                            span_id=self._next_span,
                            parent_id=parent_id, name=name,
                            stage=stage, node=node, start=start,
                            depth=depth, attrs=dict(attrs))
        self._next_span += 1
        buf.spans.append(record)
        self.spans_recorded += 1
        return SpanHandle(record)

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._traces)

    def __contains__(self, trace_id: str) -> bool:
        return trace_id in self._traces

    def trace_ids(self) -> list[str]:
        """Retained trace ids in insertion (root-start) order."""
        return list(self._traces)

    def tree(self, trace_id: str) -> Optional[SpanTree]:
        """Assemble one trace's span tree (None when not retained).

        Spans and every child list follow the shared
        (start, end, sequence) ordering, so out-of-order hop
        completion cannot reorder the rendered tree.
        """
        buf = self._traces.get(trace_id)
        if buf is None:
            return None
        spans = sorted(buf.spans, key=SpanRecord.sort_key)
        retained = {s.span_id for s in spans}
        children: dict[Optional[int], list[SpanRecord]] = {}
        for span in spans:
            parent = span.parent_id
            if parent is not None and parent not in retained:
                # Parent was dropped by the per-trace bound: surface
                # the orphan at the top level rather than losing it.
                parent = None
            children.setdefault(parent, []).append(span)
        return SpanTree(trace_id=trace_id, spans=spans,
                        children=children, dropped=buf.dropped)

    def trees(self) -> list[SpanTree]:
        """Every retained trace, assembled, in insertion order."""
        return [self.tree(tid) for tid in self._traces]

    def snapshot(self) -> dict:
        """Full JSON-able dump (what the determinism tests compare)."""
        return {
            "seed": self.seed,
            "sample_rate": self.sample_rate,
            "traces_started": self.traces_started,
            "traces_sampled_out": self.traces_sampled_out,
            "traces_evicted": self.traces_evicted,
            "spans_recorded": self.spans_recorded,
            "spans_dropped": self.spans_dropped,
            "traces": {tid: self.tree(tid).snapshot()
                       for tid in self._traces},
            "audit": [entry.snapshot() for entry in self.audit],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceCollector seed={self.seed} "
                f"rate={self.sample_rate:g} {len(self._traces)} traces "
                f"{self.spans_recorded} spans>")


class _NullTracer:
    """Tracing disabled: every record call is a no-op returning None."""

    __slots__ = ()
    enabled = False

    def sampled(self, trace_id: str) -> bool:
        return False

    def begin_trace(self, *args: Any, **kwargs: Any) -> None:
        return None

    def start_span(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_span(self, *args: Any, **kwargs: Any) -> None:
        return None

    def record_adaptation(self, *args: Any, **kwargs: Any) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<tracing disabled>"


NULL_TRACER = _NullTracer()


def attach_tracer(nodes: Iterable, collector: TraceCollector) -> None:
    """Attach ``collector`` to every node (a Cluster iterates nodes).

    Sets both ``node.tracer`` and the transport's ``stack.tracer`` —
    the NetStack is built before any collector exists, so its binding
    is updated here rather than at construction.  Node names must be
    unique across everything attached to one collector (trace ids are
    derived from them).
    """
    for node in nodes:
        node.tracer = collector
        node.stack.tracer = collector
