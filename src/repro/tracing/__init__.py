"""Deterministic causal tracing for the dproc monitoring pipeline.

Aggregate telemetry (:mod:`repro.telemetry`) answers "how much, on
average"; this package answers "where did *this one event* spend its
time, and what did it cause".  A :class:`TraceCollector` attached to a
cluster (:func:`attach_tracer`) records a span tree per monitoring or
control event — module sample, d-mon parameter/filter evaluation,
KECho submit, per-subscriber transport hops (with fault annotations),
delivery, remote-cache/procfs update — and an audit trail linking each
SmartPointer adaptation back to the monitoring events that triggered
it.

Tracing is *passive*: no scheduled events, no draws from any sim RNG
stream, no kernel CPU charged.  Seeded runs are bit-identical with
tracing attached or not, and two traced runs of the same seed retain
identical span trees (head sampling hashes trace ids with a seeded
CRC, never Python's randomised ``hash``).
"""

from repro.tracing.analysis import (adaptation_audit, critical_path,
                                    latency_breakdown,
                                    render_audit, render_breakdown)
from repro.tracing.collector import (NULL_TRACER, AuditEntry,
                                     SpanHandle, SpanRecord, SpanTree,
                                     TraceCollector, attach_tracer)
from repro.tracing.context import TraceContext, TraceRef, trace_hash
from repro.tracing.export import render_tree, to_chrome_trace

__all__ = [
    "TraceContext", "TraceRef", "trace_hash",
    "TraceCollector", "SpanRecord", "SpanHandle", "SpanTree",
    "AuditEntry", "NULL_TRACER", "attach_tracer",
    "critical_path", "latency_breakdown", "adaptation_audit",
    "render_breakdown", "render_audit",
    "to_chrome_trace", "render_tree",
]
