"""Replay reconciliation: the stream vs. procfs ground truth.

``reconcile`` replays a recorded broker and audits the whole delivery
accounting of a run:

* every submit's expected audience (its remote targets plus the local
  delivery, when the publisher subscribes to itself) is paired with
  the recorded deliveries and transport drops per destination;
* a deficit *explained by a recorded drop* is attributed to its fault
  (``crash:<host>``, ``partition``, ``injected loss``, ...);
* a deficit with no drop behind it is **missing** — the unexplained
  discrepancy class a healthy run must keep at zero;
* surpluses are **duplicated**, deliveries without a submit are
  **unexpected**, and submits younger than ``open_window`` at the end
  of the observation window are **in flight** (informational — the
  run ended before their copies could land);
* per ``(channel, dest)`` the delivery order is checked against
  submission order per source (**out_of_order**, informational: the
  fabric does not promise cross-size FIFO) and against a staleness
  bound (**stale**);
* finally, when the run's dprocs are available, the monitor channel is
  replayed into a last-value cache per ``(dest, source, metric)`` and
  compared — both directions — against each d-mon's *actual* remote
  cache, the data procfs serves.  The stream must explain procfs
  exactly.

The report's :attr:`ReconcileReport.ok` is the audit verdict: no
missing, duplicated, or unexpected entries and no procfs mismatches.
Attributed drops, in-flight tails, out-of-order and stale entries do
not fail it — they are either explained or informational.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.stream.broker import StreamBroker
from repro.stream.entry import DELIVER, DROP, SUBMIT

__all__ = ["Discrepancy", "ReconcileReport", "reconcile"]


@dataclass(frozen=True)
class Discrepancy:
    """One reconciliation finding."""

    kind: str
    channel: str
    source: str
    dest: str
    submitted_at: float
    detail: str = ""


@dataclass
class ReconcileReport:
    """Outcome of one replay audit."""

    channels: list[str] = field(default_factory=list)
    submits: int = 0
    #: Expected deliveries (fan-out target count + local deliveries).
    expected: int = 0
    delivered: int = 0
    local_delivered: int = 0
    #: Deficits attributed to a recorded transport drop, by fault kind.
    dropped_by_fault: dict[str, int] = field(default_factory=dict)
    dropped: list[Discrepancy] = field(default_factory=list)
    #: Unexplained deficits — the class that must be empty.
    missing: list[Discrepancy] = field(default_factory=list)
    duplicated: list[Discrepancy] = field(default_factory=list)
    unexpected: list[Discrepancy] = field(default_factory=list)
    #: Informational: the run ended with these still in flight.
    in_flight: list[Discrepancy] = field(default_factory=list)
    out_of_order: list[Discrepancy] = field(default_factory=list)
    stale: list[Discrepancy] = field(default_factory=list)
    procfs_checked: int = 0
    procfs_mismatches: list[Discrepancy] = field(default_factory=list)
    #: dest host -> metric-file name -> counters per finding kind.
    per_host: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every discrepancy is explained or informational."""
        return not (self.missing or self.duplicated or self.unexpected
                    or self.procfs_mismatches)

    def counts(self) -> dict[str, int]:
        return {
            "submits": self.submits, "expected": self.expected,
            "delivered": self.delivered,
            "local_delivered": self.local_delivered,
            "dropped": len(self.dropped),
            "missing": len(self.missing),
            "duplicated": len(self.duplicated),
            "unexpected": len(self.unexpected),
            "in_flight": len(self.in_flight),
            "out_of_order": len(self.out_of_order),
            "stale": len(self.stale),
            "procfs_checked": self.procfs_checked,
            "procfs_mismatches": len(self.procfs_mismatches),
        }

    def to_json(self) -> dict:
        def rows(items):
            return [{"kind": d.kind, "channel": d.channel,
                     "source": d.source, "dest": d.dest,
                     "submitted_at": d.submitted_at,
                     "detail": d.detail} for d in items]
        return {
            "ok": self.ok, "channels": self.channels,
            "counts": self.counts(),
            "dropped_by_fault": dict(self.dropped_by_fault),
            "missing": rows(self.missing),
            "duplicated": rows(self.duplicated),
            "unexpected": rows(self.unexpected),
            "procfs_mismatches": rows(self.procfs_mismatches),
            "per_host": self.per_host,
        }

    def render(self) -> str:
        """Human-readable validation report."""
        c = self.counts()
        lines = [
            "stream reconciliation "
            + ("OK" if self.ok else "FAILED"),
            f"  channels:       {', '.join(self.channels) or '(none)'}",
            f"  submits:        {c['submits']} "
            f"(expected deliveries {c['expected']})",
            f"  delivered:      {c['delivered']} "
            f"({c['local_delivered']} local)",
            f"  dropped:        {c['dropped']} attributed to faults",
        ]
        for fault, n in sorted(self.dropped_by_fault.items()):
            lines.append(f"                    {fault}: {n}")
        lines += [
            f"  missing:        {c['missing']} (unexplained)",
            f"  duplicated:     {c['duplicated']}",
            f"  unexpected:     {c['unexpected']}",
            f"  in flight:      {c['in_flight']} (run ended)",
            f"  out of order:   {c['out_of_order']} (informational)",
            f"  stale:          {c['stale']}",
            f"  procfs checked: {c['procfs_checked']} cache entries, "
            f"{c['procfs_mismatches']} mismatches",
        ]
        shown = 0
        for bucket, label in ((self.missing, "missing"),
                              (self.duplicated, "duplicated"),
                              (self.unexpected, "unexpected"),
                              (self.procfs_mismatches, "procfs")):
            for d in bucket:
                if shown >= 20:
                    lines.append("  ... (more omitted)")
                    break
                lines.append(
                    f"  ! {label}: {d.channel} {d.source}->"
                    f"{d.dest or '*'} @{d.submitted_at:.3f} {d.detail}")
                shown += 1
            else:
                continue
            break
        if self.per_host:
            lines.append("  per-host findings:")
            for host in sorted(self.per_host):
                parts = []
                for metric in sorted(self.per_host[host]):
                    kinds = self.per_host[host][metric]
                    parts.append(metric + "{" + ",".join(
                        f"{k}:{v}" for k, v in sorted(kinds.items()))
                        + "}")
                lines.append(f"    {host}: " + " ".join(parts))
        return "\n".join(lines)


def _metric_names(records: tuple) -> list[str]:
    from repro.dproc.metrics import METRIC_FILES, MetricId
    names = []
    for mid, _value, _ts in records:
        try:
            names.append(METRIC_FILES[MetricId(mid)])
        except (ValueError, KeyError):
            names.append(f"metric{mid}")
    return names or ["(payload)"]


def reconcile(broker: StreamBroker, dprocs: Optional[dict] = None, *,
              until: Optional[float] = None,
              open_window: float = 1.0,
              stale_after: Optional[float] = None,
              monitor_channel: str = "dproc.monitor"
              ) -> ReconcileReport:
    """Audit ``broker`` against itself and (optionally) procfs truth.

    ``until`` is the end of the observation window (defaults to the
    newest entry time); submits within ``open_window`` of it whose
    copies have not landed are reported in-flight, not missing.
    ``dprocs`` (host → Dproc) enables the procfs ground-truth pass.
    """
    report = ReconcileReport(channels=broker.channels())
    if until is None:
        until = max((e.time for ch in broker.channels()
                     for e in broker.entries(ch)), default=0.0)

    def tally(host: str, records: tuple, kind: str, n: int = 1) -> None:
        per_metric = report.per_host.setdefault(host, {})
        for name in _metric_names(records):
            bucket = per_metric.setdefault(name, {})
            bucket[kind] = bucket.get(kind, 0) + n

    for channel in report.channels:
        entries = broker.entries(channel)
        # Pair submits with deliveries/drops on the natural key.
        submits: dict[tuple, list] = defaultdict(list)
        delivered: dict[tuple, int] = defaultdict(int)
        drops: dict[tuple, list] = defaultdict(list)
        last_sub_seen: dict[tuple, float] = {}
        for e in entries:
            if e.kind == SUBMIT:
                report.submits += 1
                submits[e.key].append(e)
            elif e.kind == DELIVER:
                report.delivered += 1
                if e.dest == e.source:
                    report.local_delivered += 1
                delivered[(e.key, e.dest)] += 1
                # Ordering audit per (dest, source): deliveries must
                # not regress in submission time.
                prev = last_sub_seen.get((e.dest, e.source))
                if prev is not None and e.submitted_at < prev:
                    report.out_of_order.append(Discrepancy(
                        kind="out_of_order", channel=channel,
                        source=e.source, dest=e.dest,
                        submitted_at=e.submitted_at,
                        detail=f"after one submitted at {prev:.3f}"))
                else:
                    last_sub_seen[(e.dest, e.source)] = e.submitted_at
                if stale_after is not None \
                        and e.latency > stale_after:
                    report.stale.append(Discrepancy(
                        kind="stale", channel=channel,
                        source=e.source, dest=e.dest,
                        submitted_at=e.submitted_at,
                        detail=f"latency {e.latency:.3f}s"))
                    # Deliveries are light entries; their records live
                    # on the paired submit (always appended first).
                    subs = submits.get(e.key)
                    tally(e.dest, subs[0].records if subs else (),
                          "stale")
            elif e.kind == DROP:
                drops[(e.key, e.dest)].append(e)

        for key, subs in submits.items():
            _, source, submitted_at = key
            expected: dict[str, int] = defaultdict(int)
            records = subs[0].records
            for sub in subs:
                for target in sub.targets:
                    expected[target] += 1
                if sub.local:
                    expected[source] += 1
            for dest, want in expected.items():
                report.expected += want
                got = delivered.pop((key, dest), 0)
                killed = drops.get((key, dest), [])
                if got > want:
                    report.duplicated.append(Discrepancy(
                        kind="duplicated", channel=channel,
                        source=source, dest=dest,
                        submitted_at=submitted_at,
                        detail=f"{got} deliveries for {want} submits"))
                    tally(dest, records, "duplicated", got - want)
                    continue
                deficit = want - got
                for drop in killed[:deficit]:
                    fault = drop.fault or "dropped"
                    report.dropped.append(Discrepancy(
                        kind="dropped", channel=channel, source=source,
                        dest=dest, submitted_at=submitted_at,
                        detail=fault))
                    report.dropped_by_fault[fault] = \
                        report.dropped_by_fault.get(fault, 0) + 1
                    tally(dest, records, "dropped")
                deficit -= min(deficit, len(killed))
                if deficit <= 0:
                    continue
                if submitted_at > until - open_window:
                    report.in_flight.append(Discrepancy(
                        kind="in_flight", channel=channel,
                        source=source, dest=dest,
                        submitted_at=submitted_at))
                    continue
                report.missing.append(Discrepancy(
                    kind="missing", channel=channel, source=source,
                    dest=dest, submitted_at=submitted_at,
                    detail=f"{deficit} of {want} copies unaccounted"))
                tally(dest, records, "missing", deficit)

        # Deliveries left unmatched have no submit behind them.
        for (key, dest), extra in delivered.items():
            _, source, submitted_at = key
            report.unexpected.append(Discrepancy(
                kind="unexpected", channel=channel, source=source,
                dest=dest, submitted_at=submitted_at,
                detail=f"{extra} deliveries with no recorded submit"))

    if dprocs:
        _check_procfs(broker, dprocs, report, monitor_channel)
    return report


def _check_procfs(broker: StreamBroker, dprocs: dict,
                  report: ReconcileReport, monitor_channel: str
                  ) -> None:
    """Replay the monitor stream into last-value caches and compare
    them — both directions — with each d-mon's remote cache."""
    from repro.dproc.metrics import MetricId
    # Delivery entries are light: the records behind each one are
    # joined from the paired submit on the natural key.
    sub_records: dict[tuple, tuple] = {}
    replayed: dict[str, dict[tuple, tuple]] = defaultdict(dict)
    for e in broker.entries(monitor_channel):
        if e.kind == SUBMIT:
            sub_records.setdefault(e.key, e.records)
            continue
        if e.kind != DELIVER or e.dest == e.source:
            continue
        cache = replayed[e.dest]
        for mid, value, ts in sub_records.get(e.key, ()):
            cache[(e.source, mid)] = (value, ts)

    for host, dproc in dprocs.items():
        dmon = dproc.dmon
        stream_cache = replayed.get(host, {})
        # Forward: every replayed last value must be what procfs serves.
        for (source, mid), (value, ts) in stream_cache.items():
            report.procfs_checked += 1
            try:
                metric = MetricId(mid)
            except ValueError:  # pragma: no cover - ABI is closed
                continue
            actual = dmon.remote_value(source, metric)
            if actual is None:
                report.procfs_mismatches.append(Discrepancy(
                    kind="procfs", channel=monitor_channel,
                    source=source, dest=host, submitted_at=ts,
                    detail=f"{metric.name}: stream delivered "
                           f"{value!r} but procfs has no entry"))
            elif actual.value != value or actual.timestamp != ts:
                report.procfs_mismatches.append(Discrepancy(
                    kind="procfs", channel=monitor_channel,
                    source=source, dest=host, submitted_at=ts,
                    detail=f"{metric.name}: stream says "
                           f"({value!r}, {ts!r}), procfs says "
                           f"({actual.value!r}, "
                           f"{actual.timestamp!r})"))
        # Reverse: nothing in procfs may be unexplained by the stream.
        for source, store in dmon.remote.items():
            for metric in store:
                if (source, int(metric)) not in stream_cache:
                    report.procfs_checked += 1
                    report.procfs_mismatches.append(Discrepancy(
                        kind="procfs", channel=monitor_channel,
                        source=source, dest=host, submitted_at=0.0,
                        detail=f"{metric.name}: procfs entry with no "
                               f"delivery in the stream"))
