"""Stream entries: the durable record of one KECho data-plane action.

Every event that crosses a channel leaves up to three kinds of entries
in the broker's per-channel log:

* ``submit``  — the publisher pushed the event (one per submit call,
  carrying the intended remote targets and whether a local delivery
  is expected);
* ``deliver`` — one subscriber's endpoint dispatched the event (one
  per receiving host, local or remote);
* ``drop``    — the transport killed one host's copy (fault plane,
  injected loss, congestion), annotated with the fault kind.

Entries are correlated by the *natural key* ``(channel, source,
submitted_at)`` rather than the in-process event id: delivered copies
and conduit-decoded events get fresh ``eid`` values, but the natural
key survives the live binary codec byte-for-byte (f64 round-trips are
exact), so the same pairing works on sim, sharded and live runs.

Monitor payloads are normalised to ``(metric-ABI-id, value, timestamp)``
records — the same triples the live wire format packs — so a replayed
stream carries exactly the ground truth procfs was fed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["StreamEntry", "SUBMIT", "DELIVER", "DROP",
           "normalize_payload"]

SUBMIT = "submit"
DELIVER = "deliver"
DROP = "drop"


def normalize_payload(payload: Any) -> tuple[tuple, str]:
    """Reduce a channel payload to ``(records, summary)``.

    d-mon monitor payloads (``{"host": ..., "metrics": {id: (v, ts)}}``)
    become a tuple of ``(int metric-ABI-id, value, timestamp)`` records
    in publication order; anything else keeps an empty record tuple and
    a short type summary (control messages name their command).
    """
    if isinstance(payload, dict) and "host" in payload \
            and "metrics" in payload:
        records = tuple((int(m), float(v), float(ts))
                        for m, (v, ts) in payload["metrics"].items())
        return records, ""
    name = type(payload).__name__
    from repro.kecho.control import ControlMessage
    if isinstance(payload, ControlMessage):
        return (), f"control:{name}"
    return (), name


@dataclass(slots=True)
class StreamEntry:
    """One entry in a channel's append-only log.

    Treat as immutable once appended.  (Not ``frozen=True``: entry
    construction sits on the delivery hot path, and a frozen dataclass
    pays an ``object.__setattr__`` per field — measurably slower at
    bench fan-outs.)
    """

    #: Monotone per-channel id, assigned by the stream on append.
    seq: int
    #: ``submit`` | ``deliver`` | ``drop``.
    kind: str
    channel: str
    #: Publishing host.
    source: str
    #: Receiving host (empty for submits).
    dest: str
    #: When the entry was recorded (submit/delivery/drop time).
    time: float
    #: The event's submission time — half of the natural key.
    submitted_at: float
    #: Declared wire size (bytes).
    size: float
    #: Normalised monitor records ``(metric_id, value, ts)``.
    records: tuple = ()
    #: Payload summary for non-monitor events ("" for monitor).
    summary: str = ""
    #: Submit only: remote hosts the event was pushed to.
    targets: tuple = ()
    #: Submit only: a local delivery on the source host is expected.
    local: bool = False
    #: Drop only: the fault kind ("crash:<host>", "partition",
    #: "injected loss", "congestion", ...).
    fault: str = ""
    #: Drop only: False when the sender's completion already succeeded
    #: (a conduit arrival-side kill), so the publisher's
    #: ``failed_deliveries`` counter never saw it.
    sender_failed: bool = True

    @property
    def key(self) -> tuple[str, str, float]:
        """Natural correlation key ``(channel, source, submitted_at)``."""
        return (self.channel, self.source, self.submitted_at)

    @property
    def latency(self) -> float:
        """Submission-to-record latency (meaningful for deliveries)."""
        return self.time - self.submitted_at

    def to_record(self) -> dict:
        """JSON-serialisable form (the JSONL segment row)."""
        rec = {
            "seq": self.seq, "kind": self.kind, "channel": self.channel,
            "source": self.source, "dest": self.dest, "time": self.time,
            "submitted_at": self.submitted_at, "size": self.size,
        }
        if self.records:
            rec["records"] = [list(r) for r in self.records]
        if self.summary:
            rec["summary"] = self.summary
        if self.targets:
            rec["targets"] = list(self.targets)
        if self.local:
            rec["local"] = True
        if self.fault:
            rec["fault"] = self.fault
        if not self.sender_failed:
            rec["sender_failed"] = False
        return rec

    @classmethod
    def from_record(cls, rec: dict) -> "StreamEntry":
        return cls(
            seq=int(rec["seq"]), kind=rec["kind"],
            channel=rec["channel"], source=rec["source"],
            dest=rec.get("dest", ""), time=float(rec["time"]),
            submitted_at=float(rec["submitted_at"]),
            size=float(rec["size"]),
            records=tuple((int(m), float(v), float(ts))
                          for m, v, ts in rec.get("records", ())),
            summary=rec.get("summary", ""),
            targets=tuple(rec.get("targets", ())),
            local=bool(rec.get("local", False)),
            fault=rec.get("fault", ""),
            sender_failed=bool(rec.get("sender_failed", True)))
