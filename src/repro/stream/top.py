"""``dtop``, stream-fed: an hsm-action-top-style live cluster table.

:class:`StreamTop` consumes the monitor channel through a broker
consumer group — read, render, ack — instead of polling one node's
procfs snapshot.  Its state is exactly what the stream delivered, so
the table works on a live run, on a replayed dump, and during a run.

The row set is the union of *every* host that has ever appeared in the
stream, whatever subset of metrics it reported — the old snapshot
printer keyed rows on the load/freemem snapshots only and silently
dropped hosts that had reported just disk or network data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dproc.metrics import MetricId
from repro.stream.broker import StreamBroker
from repro.stream.entry import SUBMIT

__all__ = ["StreamTop", "HostRow"]

#: The four table columns (one per snapshot set of the old dtop).
TABLE_METRICS = (MetricId.LOADAVG, MetricId.FREEMEM,
                 MetricId.DISKUSAGE, MetricId.NET_BANDWIDTH)


@dataclass
class HostRow:
    """Latest streamed state of one host."""

    host: str
    #: metric ABI id -> (value, source timestamp).
    last: dict[int, tuple[float, float]] = field(default_factory=dict)
    events: int = 0
    last_seen: float = 0.0

    def value(self, metric: MetricId) -> Optional[float]:
        rec = self.last.get(int(metric))
        return rec[0] if rec is not None else None


class StreamTop:
    """Consumer-group-fed cluster table over the monitor stream."""

    def __init__(self, broker: StreamBroker,
                 channel: str = "dproc.monitor",
                 group: str = "dtop", consumer: str = "top") -> None:
        self.broker = broker
        self.channel = channel
        self.consumer = consumer
        self.group = broker.group(channel, group)
        self.hosts: dict[str, HostRow] = {}
        self.events_consumed = 0
        self.last_event_time = 0.0

    def feed(self, now: float = 0.0,
             count: Optional[int] = None) -> int:
        """Consume new stream entries; returns how many were applied.

        Entries are read through the consumer group and acked once
        applied, so a janitor can reclaim them and a second feed never
        double-counts.  Only submit entries mutate the table — one per
        published event, independent of fan-out.
        """
        entries = self.group.read(self.consumer, count=count, now=now)
        applied = 0
        for entry in entries:
            if entry.kind == SUBMIT and entry.records:
                row = self.hosts.get(entry.source)
                if row is None:
                    row = self.hosts[entry.source] = HostRow(
                        host=entry.source)
                for mid, value, ts in entry.records:
                    row.last[mid] = (value, ts)
                row.events += 1
                if entry.time > row.last_seen:
                    row.last_seen = entry.time
                applied += 1
            self.events_consumed += 1
            if entry.time > self.last_event_time:
                self.last_event_time = entry.time
        self.group.ack(*(e.seq for e in entries))
        return applied

    # -- queries -----------------------------------------------------------

    def rows(self) -> list[HostRow]:
        """Every host ever seen, sorted by name — all metric sets."""
        return [self.hosts[h] for h in sorted(self.hosts)]

    def mean(self, metric: MetricId) -> float:
        values = [row.value(metric) for row in self.hosts.values()]
        values = [v for v in values if v is not None]
        return sum(values) / len(values) if values else float("nan")

    def total(self, metric: MetricId) -> float:
        return sum(row.value(metric) or 0.0
                   for row in self.hosts.values())

    def least_loaded(self) -> Optional[str]:
        best = None
        for row in self.rows():
            load = row.value(MetricId.LOADAVG)
            if load is not None and (best is None or load < best[0]):
                best = (load, row.host)
        return best[1] if best else None

    def most_free_memory(self) -> Optional[str]:
        best = None
        for row in self.rows():
            free = row.value(MetricId.FREEMEM)
            if free is not None and (best is None or free > best[0]):
                best = (free, row.host)
        return best[1] if best else None

    # -- rendering ---------------------------------------------------------

    def render(self, now: Optional[float] = None) -> str:
        """The dtop table plus a consumer-group footer."""
        lines = [f"{'node':>8} {'load':>6} {'free MiB':>8} "
                 f"{'disk sec/s':>10} {'avail Mbps':>10} {'age':>5}"]
        for row in self.rows():
            load = row.value(MetricId.LOADAVG)
            free = row.value(MetricId.FREEMEM)
            disk = row.value(MetricId.DISKUSAGE)
            net = row.value(MetricId.NET_BANDWIDTH)
            age = (f"{now - row.last_seen:4.0f}s"
                   if now is not None else "    -")
            lines.append(
                f"{row.host:>8} "
                f"{load if load is not None else float('nan'):6.2f} "
                f"{(free or 0) / 2**20:8.0f} "
                f"{disk if disk is not None else float('nan'):10.1f} "
                f"{(net or 0) * 8 / 1e6:10.1f} {age:>5}")
        lines.append(f"{'MEAN':>8} {self.mean(MetricId.LOADAVG):6.2f} "
                     f"{self.total(MetricId.FREEMEM) / 2**20:8.0f}")
        lines.append(f"  [{self.events_consumed} events consumed, "
                     f"{len(self.group.pending_for())} pending, "
                     f"last @{self.last_event_time:.1f}s]")
        return "\n".join(lines)
