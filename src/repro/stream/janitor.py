"""The janitor: policy-driven trimming of the durable stream.

Mirrors the shipper/janitor split of Redis-backed action streams: the
broker only ever appends; reclaiming memory/disk is a separate,
explicitly-invoked policy pass.  Two conditions gate every trim:

* **age** — an entry is age-eligible once ``now - entry.time`` exceeds
  ``max_age`` (no ``max_age`` means age never blocks a trim);
* **acked state** — when a stream has consumer groups, nothing past
  any group's ``acked_floor`` is touched.  *An unacked entry is never
  dropped* (test-enforced), no matter how old.

A stream with no consumer groups trims by age alone; with neither a
``max_age`` nor any groups the janitor has no policy to apply and
removes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.stream.broker import StreamBroker

__all__ = ["Janitor", "TrimReport"]


@dataclass
class TrimReport:
    """What one janitor pass removed."""

    #: Channel -> entries removed.
    removed: dict[str, int] = field(default_factory=dict)
    #: Channel -> seq the stream was trimmed through (inclusive).
    floor: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.removed.values())


class Janitor:
    """Trims a broker's streams by age and acked state."""

    def __init__(self, broker: StreamBroker,
                 max_age: Optional[float] = None) -> None:
        if max_age is not None and max_age < 0:
            raise ValueError("max_age must be non-negative")
        self.broker = broker
        self.max_age = max_age

    def run(self, now: float) -> TrimReport:
        """One janitor pass at broker time ``now``."""
        report = TrimReport()
        for channel in self.broker.channels():
            stream = self.broker.streams[channel]
            if not len(stream):
                continue
            bound = stream.last_seq
            if self.max_age is not None:
                cutoff = now - self.max_age
                aged = stream.first_seq - 1
                for entry in stream.entries():
                    if entry.time > cutoff:
                        break
                    aged = entry.seq
                bound = min(bound, aged)
            if stream.groups:
                bound = min(bound,
                            min(g.acked_floor
                                for g in stream.groups.values()))
            elif self.max_age is None:
                # No age policy and nobody consuming: no basis to trim.
                continue
            removed = stream.trim_to(bound)
            if removed:
                report.removed[channel] = removed
                report.floor[channel] = bound
        return report
