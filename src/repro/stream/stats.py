"""Stats-by-replay: recompute telemetry summaries purely from the log.

``replay_stats`` walks a recorded broker and rebuilds the PR 3-style
per-channel accounting — submits, deliveries, fan-out bytes, record
counts, delivery-latency summaries — from nothing but stream entries.

``verify_stats`` then asserts that the replayed numbers match the live
telemetry registries *exactly*: every per-node KECho counter
(``kecho.<channel>.submits/receives/failed_deliveries/tx_bytes``), the
d-mon publication counters, and the delivery-latency histogram's
count/total.  The tee and the instruments observe the same dispatches
in the same order, so equality is exact (floats included — sums
accumulate in identical order); any divergence means an accounting bug
on one side.  Returns the list of mismatches (empty = verified).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Optional

from repro.stream.broker import StreamBroker
from repro.stream.entry import DELIVER, DROP, SUBMIT

__all__ = ["replay_stats", "verify_stats"]


def replay_stats(broker: StreamBroker) -> dict:
    """Per-channel and per-host summaries recomputed from the log."""
    out: dict = {"channels": {}, "per_source": {}, "total_entries": 0}
    for channel in broker.channels():
        submits = deliveries = local = drops = 0
        tx_bytes = 0.0
        records = 0
        lat_count = 0
        lat_total = 0.0
        lat_max = 0.0
        per_source: dict[str, int] = defaultdict(int)
        for e in broker.entries(channel):
            out["total_entries"] += 1
            if e.kind == SUBMIT:
                submits += 1
                per_source[e.source] += 1
                tx_bytes += e.size * len(e.targets)
                records += len(e.records)
            elif e.kind == DELIVER:
                deliveries += 1
                if e.dest == e.source:
                    local += 1
                lat_count += 1
                lat_total += e.latency
                if e.latency > lat_max:
                    lat_max = e.latency
            elif e.kind == DROP:
                drops += 1
        out["channels"][channel] = {
            "submits": submits,
            "deliveries": deliveries,
            "local_deliveries": local,
            "drops": drops,
            "tx_bytes": tx_bytes,
            "records": records,
            "latency": {
                "count": lat_count,
                "total": lat_total,
                "mean": lat_total / lat_count if lat_count else 0.0,
                "max": lat_max,
            },
        }
        for source, n in per_source.items():
            out["per_source"].setdefault(source, {})[channel] = n
    return out


def verify_stats(broker: StreamBroker, nodes: Iterable,
                 channels: Optional[Iterable[str]] = None) -> list[str]:
    """Cross-check replayed stats against the live telemetry registry.

    ``nodes`` is any iterable of runtime nodes (``scenario.nodes``).
    Returns human-readable mismatch strings; an empty list means the
    stream log and the telemetry instruments agree exactly.
    """
    targets = list(channels) if channels is not None \
        else broker.channels()
    mismatches: list[str] = []

    # Replay per (node, channel): submits, receives, failed (drops the
    # publisher's completion saw), tx bytes, latency count/total.
    sub = defaultdict(int)
    rcv = defaultdict(int)
    fail = defaultdict(int)
    txb = defaultdict(float)
    lat_n = defaultdict(int)
    lat_t = defaultdict(float)
    mon_events = defaultdict(int)
    mon_records = defaultdict(int)
    for channel in targets:
        for e in broker.entries(channel):
            if e.kind == SUBMIT:
                sub[(e.source, channel)] += 1
                txb[(e.source, channel)] += e.size * len(e.targets)
                if channel == "dproc.monitor":
                    mon_events[e.source] += 1
                    mon_records[e.source] += len(e.records)
            elif e.kind == DELIVER:
                rcv[(e.dest, channel)] += 1
                lat_n[(e.dest, channel)] += 1
                lat_t[(e.dest, channel)] += e.latency
            elif e.kind == DROP and e.sender_failed:
                fail[(e.source, channel)] += 1

    def check(label: str, want, got) -> None:
        if isinstance(want, float) or isinstance(got, float):
            if not math.isclose(want, got, rel_tol=1e-9,
                                abs_tol=1e-12):
                mismatches.append(
                    f"{label}: stream={want!r} telemetry={got!r}")
        elif want != got:
            mismatches.append(
                f"{label}: stream={want!r} telemetry={got!r}")

    for node in nodes:
        telemetry = node.telemetry
        name = node.name
        for channel in targets:
            base = f"kecho.{channel}"
            key = (name, channel)
            check(f"{name} {base}.submits", sub[key],
                  int(telemetry.value(f"{base}.submits")))
            check(f"{name} {base}.receives", rcv[key],
                  int(telemetry.value(f"{base}.receives")))
            check(f"{name} {base}.failed_deliveries", fail[key],
                  int(telemetry.value(f"{base}.failed_deliveries")))
            check(f"{name} {base}.tx_bytes", txb[key],
                  telemetry.value(f"{base}.tx_bytes"))
            hist = telemetry.histogram(f"{base}.delivery_seconds")
            count = getattr(hist, "count", None)
            if count is not None:
                check(f"{name} {base}.delivery_seconds.count",
                      lat_n[key], int(count))
                check(f"{name} {base}.delivery_seconds.total",
                      lat_t[key], float(getattr(hist, "total", 0.0)))
        check(f"{name} dmon.events_published", mon_events[name],
              int(telemetry.value("dmon.events_published")))
        check(f"{name} dmon.records_published", mon_records[name],
              int(telemetry.value("dmon.records_published")))
    return mismatches
