"""The durable event stream: broker, janitor, reconciler, stats, top.

A Redis-Streams-style append-only log behind the Runtime protocol:
KECho submits, deliveries and transport drops are teed into
per-channel streams with monotone ids, consumer groups track ack/
pending state, a janitor trims by age and acked state, and the replay
toolkit audits a recorded run — a reconciler against procfs ground
truth, stats-by-replay against the telemetry registry, and a
stream-fed cluster top.  In-memory and deterministic on the sim
backend; file-backed (JSONL segments) on the live backend.
"""

from repro.stream.broker import (ChannelStream, ConsumerGroup,
                                 PendingEntry, StreamBroker,
                                 StreamError, attach_stream,
                                 merge_brokers)
from repro.stream.entry import (DELIVER, DROP, SUBMIT, StreamEntry,
                                normalize_payload)
from repro.stream.janitor import Janitor, TrimReport
from repro.stream.reconcile import (Discrepancy, ReconcileReport,
                                    reconcile)
from repro.stream.stats import replay_stats, verify_stats
from repro.stream.store import (JsonlSink, channel_of_segment,
                                dump_broker, load_broker,
                                segment_name)
from repro.stream.top import HostRow, StreamTop

__all__ = [
    "SUBMIT", "DELIVER", "DROP", "StreamEntry", "normalize_payload",
    "ChannelStream", "ConsumerGroup", "PendingEntry", "StreamBroker",
    "StreamError", "attach_stream", "merge_brokers",
    "Janitor", "TrimReport",
    "Discrepancy", "ReconcileReport", "reconcile",
    "replay_stats", "verify_stats",
    "JsonlSink", "dump_broker", "load_broker", "segment_name",
    "channel_of_segment",
    "HostRow", "StreamTop",
]
