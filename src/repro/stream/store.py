"""File-backed persistence: JSONL segments for the stream broker.

On the live backend the broker is constructed with a
:class:`JsonlSink`, which appends every entry eagerly as one JSON row
into a per-channel segment file (``segment-<channel>.jsonl``) — the
durable log survives the process.  ``dump_broker`` / ``load_broker``
write and re-read the same layout for in-memory (sim) brokers, so a
recorded run can be reconciled or replayed offline::

    broker.dump("run1/")                 # after a run
    broker = StreamBroker.load("run1/")  # much later
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Optional

from repro.stream.entry import StreamEntry

__all__ = ["JsonlSink", "dump_broker", "load_broker",
           "segment_name", "channel_of_segment"]


def segment_name(channel: str) -> str:
    """Segment file name for ``channel`` (slashes made path-safe)."""
    return f"segment-{channel.replace('/', '_')}.jsonl"


def channel_of_segment(path: Path) -> str:
    """Inverse of :func:`segment_name` for well-formed names."""
    stem = path.name
    if stem.startswith("segment-") and stem.endswith(".jsonl"):
        return stem[len("segment-"):-len(".jsonl")]
    return stem


class JsonlSink:
    """Eagerly appends broker entries into per-channel JSONL segments."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._files: dict[str, IO[str]] = {}
        self.rows_written = 0
        self.closed = False

    def write(self, channel: str, record: dict) -> None:
        if self.closed:
            return
        handle = self._files.get(channel)
        if handle is None:
            path = self.directory / segment_name(channel)
            handle = self._files[channel] = path.open(
                "a", encoding="utf-8")
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.rows_written += 1

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for handle in self._files.values():
            try:
                handle.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._files.clear()


def dump_broker(broker, directory) -> list[Path]:
    """Write every retained entry as per-channel JSONL segments."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for channel in broker.channels():
        path = out / segment_name(channel)
        with path.open("w", encoding="utf-8") as fh:
            for entry in broker.streams[channel].entries():
                fh.write(json.dumps(entry.to_record(),
                                    separators=(",", ":")) + "\n")
        written.append(path)
    return written


def load_broker(directory, max_len: Optional[int] = None):
    """Rebuild an in-memory broker from a segment directory.

    Accepts both :func:`dump_broker` output and a live
    :class:`JsonlSink` directory (they share the layout).  Entries are
    re-appended in file order, so seqs are regenerated monotonically —
    a trimmed source stream loads with a fresh 1-based numbering.
    """
    from repro.stream.broker import StreamBroker
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"no stream directory {root}")
    broker = StreamBroker(max_len=max_len)
    for path in sorted(root.glob("segment-*.jsonl")):
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                entry = StreamEntry.from_record(rec)
                broker.stream(entry.channel).append(
                    kind=entry.kind, source=entry.source,
                    dest=entry.dest, time=entry.time,
                    submitted_at=entry.submitted_at, size=entry.size,
                    records=entry.records, summary=entry.summary,
                    targets=entry.targets, local=entry.local,
                    fault=entry.fault,
                    sender_failed=entry.sender_failed)
    return broker
