"""The append-only stream broker: a Redis-Streams-style durable log.

One :class:`StreamBroker` tees the whole KECho data plane — submits,
deliveries and transport drops — into per-channel
:class:`ChannelStream` logs with monotone entry ids.  Consumers read
through :class:`ConsumerGroup` cursors with Redis-style ack/pending
tracking (XREADGROUP / XACK / XPENDING / XCLAIM analogues), and the
:class:`~repro.stream.janitor.Janitor` trims by age and acked state.

The tee is *passive*: recording an entry draws no RNG, charges no CPU
and schedules no simulation events, so enabling the broker leaves the
event schedule — and therefore every golden trace — bit-identical.

``attach_stream`` wires a broker onto any :class:`~repro.kecho.channel
.KechoBus` (the sim bus, the live bus and the sharded per-world buses
all inherit from it) and onto each node's transport drop hook;
``merge_brokers`` folds the per-shard brokers of an inline sharded run
into one global, deterministically ordered view.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from repro.errors import ReproError
from repro.stream.entry import (DELIVER, DROP, SUBMIT, StreamEntry,
                                normalize_payload)

__all__ = ["StreamError", "ChannelStream", "ConsumerGroup",
           "PendingEntry", "StreamBroker", "attach_stream",
           "merge_brokers"]

class StreamError(ReproError):
    """Misuse of the stream broker (bad seq, unknown group, ...)."""


@dataclass
class PendingEntry:
    """One read-but-unacked entry in a consumer group (XPENDING row)."""

    consumer: str
    #: Broker time of the last read/claim that handed it out.
    last_delivered: float
    #: How many times it has been handed out (reads + claims).
    delivery_count: int


class ConsumerGroup:
    """A named cursor over one channel stream with ack/pending state.

    ``read`` hands out entries past the group's cursor and parks them
    in the pending map until ``ack``; ``claim`` reassigns stuck pending
    entries to another consumer (the crash-recovery path).  The
    ``acked_floor`` — the highest seq such that every entry at or
    below it has been read *and* acked — is what the janitor respects.
    """

    def __init__(self, stream: "ChannelStream", name: str,
                 start: int = 0) -> None:
        self.stream = stream
        self.name = name
        #: Highest seq handed out so far.
        self.cursor = int(start)
        self.pending: dict[int, PendingEntry] = {}

    def read(self, consumer: str, count: Optional[int] = None,
             now: float = 0.0) -> list[StreamEntry]:
        """Next unread entries (XREADGROUP ``>``); parked as pending."""
        out = self.stream.read_after(self.cursor, count)
        for entry in out:
            self.pending[entry.seq] = PendingEntry(
                consumer=consumer, last_delivered=now, delivery_count=1)
        if out:
            self.cursor = out[-1].seq
        return out

    def ack(self, *seqs: int) -> int:
        """Acknowledge entries by seq; returns how many were pending."""
        acked = 0
        for seq in seqs:
            if self.pending.pop(int(seq), None) is not None:
                acked += 1
        return acked

    def pending_for(self, consumer: Optional[str] = None
                    ) -> dict[int, PendingEntry]:
        """Pending entries (XPENDING), optionally for one consumer."""
        if consumer is None:
            return dict(self.pending)
        return {seq: p for seq, p in self.pending.items()
                if p.consumer == consumer}

    def claim(self, consumer: str, seqs: Iterable[int],
              now: float = 0.0) -> list[StreamEntry]:
        """Reassign pending entries to ``consumer`` (XCLAIM)."""
        claimed: list[StreamEntry] = []
        for seq in seqs:
            info = self.pending.get(int(seq))
            if info is None:
                continue
            info.consumer = consumer
            info.last_delivered = now
            info.delivery_count += 1
            entry = self.stream.get(int(seq))
            if entry is not None:
                claimed.append(entry)
        return claimed

    @property
    def acked_floor(self) -> int:
        """Highest seq with everything at/below it read and acked."""
        if self.pending:
            return min(self.pending) - 1
        return self.cursor


class ChannelStream:
    """One channel's append-only log with monotone ids.

    Entries are contiguous by ``seq``; trimming drops a prefix, never
    a middle slice, so ``get`` stays O(1).  ``max_len`` is a hard ring
    bound (Redis ``XADD MAXLEN``): oldest entries fall off regardless
    of ack state — use it for bounded-memory benches, and the janitor
    for policy-driven trims.

    Head drops are lazy: trimmed entries stay in the backing list as a
    dead prefix (``_head``) until the prefix outgrows the live part,
    then one compaction pays them all off.  A naive ``del [:1]`` per
    append is an O(max_len) memmove — at bench fan-outs that one line
    dominated the whole tee.
    """

    def __init__(self, channel: str,
                 max_len: Optional[int] = None) -> None:
        self.channel = channel
        self.max_len = max_len
        self._entries: list[StreamEntry] = []
        #: Dead-prefix length of ``_entries`` (lazily compacted).
        self._head = 0
        self._next_seq = 1
        #: Entries dropped from the head (by janitor or max_len).
        self.trimmed = 0
        self.groups: dict[str, ConsumerGroup] = {}

    def __len__(self) -> int:
        return len(self._entries) - self._head

    @property
    def first_seq(self) -> int:
        """Seq of the oldest retained entry (0 when empty)."""
        if self._head >= len(self._entries):
            return 0
        return self._entries[self._head].seq

    @property
    def last_seq(self) -> int:
        """Seq of the newest entry ever appended (0 when none)."""
        return self._next_seq - 1

    def _drop_head(self, n: int) -> None:
        """Retire ``n`` oldest entries; amortized O(1) per entry."""
        self._head += n
        self.trimmed += n
        if self._head * 2 >= len(self._entries):
            del self._entries[:self._head]
            self._head = 0

    def append_entry(self, entry: StreamEntry) -> StreamEntry:
        """Append ``entry`` in place, assigning the next monotone seq.

        The tee's hot path: the caller constructs the entry (any seq)
        and this stamps the id and applies the ``max_len`` ring.
        """
        entry.seq = self._next_seq
        self._next_seq += 1
        entries = self._entries
        entries.append(entry)
        if self.max_len is not None \
                and len(entries) - self._head > self.max_len:
            self._drop_head(len(entries) - self._head - self.max_len)
        return entry

    def append(self, **fields: Any) -> StreamEntry:
        """Append one entry built from ``fields`` (convenience form)."""
        return self.append_entry(
            StreamEntry(seq=0, channel=self.channel, **fields))

    def entries(self) -> tuple[StreamEntry, ...]:
        """Every retained entry, oldest first."""
        return tuple(self._entries[self._head:])

    def get(self, seq: int) -> Optional[StreamEntry]:
        """The entry with ``seq`` (None if trimmed away or unwritten)."""
        head = self._head
        if head >= len(self._entries):
            return None
        idx = head + (seq - self._entries[head].seq)
        if idx < head or idx >= len(self._entries):
            return None
        return self._entries[idx]

    def read_after(self, seq: int,
                   count: Optional[int] = None) -> list[StreamEntry]:
        """Entries with seq strictly greater than ``seq``, in order."""
        head = self._head
        if head >= len(self._entries):
            return []
        idx = max(head, head + seq + 1 - self._entries[head].seq)
        out = self._entries[idx:]
        if count is not None:
            out = out[:count]
        return list(out)

    def tail(self, n: int) -> list[StreamEntry]:
        """The newest ``n`` retained entries, oldest first."""
        if n <= 0:
            return []
        start = max(self._head, len(self._entries) - n)
        return list(self._entries[start:])

    def trim_to(self, seq: int) -> int:
        """Drop every entry with seq <= ``seq``; returns the count."""
        first = self.first_seq
        if not len(self) or seq < first:
            return 0
        drop = min(seq - first + 1, len(self))
        self._drop_head(drop)
        return drop

    def group(self, name: str, start: int = 0) -> ConsumerGroup:
        """Get or create the consumer group ``name``."""
        grp = self.groups.get(name)
        if grp is None:
            grp = self.groups[name] = ConsumerGroup(self, name,
                                                    start=start)
        return grp


class StreamBroker:
    """The cluster-wide durable event log: one stream per channel.

    ``record_submit`` / ``record_delivery`` / ``record_drop`` are the
    tee entry points the KECho endpoints and transports call (see
    :func:`attach_stream`); everything else is the read side.  With a
    ``sink`` every appended entry is also written eagerly as a JSONL
    row (the live backend's file-backed persistence).
    """

    def __init__(self, sink: Optional[Any] = None,
                 max_len: Optional[int] = None) -> None:
        self.sink = sink
        self.max_len = max_len
        self.streams: dict[str, ChannelStream] = {}

    # -- write side (the tee) ---------------------------------------------

    def stream(self, channel: str) -> ChannelStream:
        """Get or create the stream for ``channel``."""
        st = self.streams.get(channel)
        if st is None:
            st = self.streams[channel] = ChannelStream(
                channel, max_len=self.max_len)
        return st

    def _append(self, channel: str, **fields: Any) -> StreamEntry:
        entry = self.stream(channel).append(**fields)
        if self.sink is not None:
            self.sink.write(channel, entry.to_record())
        return entry

    def record_submit(self, event: Any, targets: Iterable[str],
                      local: bool) -> StreamEntry:
        """Tee one publisher submit (before any send settles)."""
        records, summary = normalize_payload(event.payload)
        return self._append(
            event.channel, kind=SUBMIT, source=event.source, dest="",
            time=event.submitted_at, submitted_at=event.submitted_at,
            size=event.size, records=records, summary=summary,
            targets=tuple(targets), local=local)

    def record_delivery(self, event: Any, dest: str) -> StreamEntry:
        """Tee one endpoint dispatch (local or remote) at ``dest``.

        Deliveries are the hot path (one per receiving host per
        submit), so the entry stays light: no records/summary — the
        replay side joins them from the paired submit entry on the
        natural key.
        """
        delivered_at = event.delivered_at
        if delivered_at is None:
            delivered_at = event.submitted_at
        channel = event.channel
        st = self.streams.get(channel)
        if st is None:
            st = self.stream(channel)
        entry = st.append_entry(StreamEntry(
            0, DELIVER, channel, event.source, dest, delivered_at,
            event.submitted_at, event.size))
        if self.sink is not None:
            self.sink.write(channel, entry.to_record())
        return entry

    def record_drop(self, event: Any, dest: str, reason: str,
                    now: float, sender_failed: bool = True
                    ) -> Optional[StreamEntry]:
        """Tee one transport kill of ``dest``'s copy of ``event``.

        Non-KECho payloads (raw transport users) are ignored — the
        broker logs the channel data plane only.
        """
        channel = getattr(event, "channel", None)
        submitted_at = getattr(event, "submitted_at", None)
        if channel is None or submitted_at is None:
            return None
        return self._append(
            channel, kind=DROP, source=event.source, dest=dest,
            time=now, submitted_at=submitted_at, size=event.size,
            fault=reason, sender_failed=sender_failed)

    # -- read side ---------------------------------------------------------

    def channels(self) -> list[str]:
        """Sorted channel names with at least one recorded entry."""
        return sorted(self.streams)

    def entries(self, channel: str) -> tuple[StreamEntry, ...]:
        st = self.streams.get(channel)
        return st.entries() if st is not None else ()

    def total_entries(self) -> int:
        """Retained entries across all channels."""
        return sum(len(st) for st in self.streams.values())

    def group(self, channel: str, name: str,
              start: int = 0) -> ConsumerGroup:
        """Get or create consumer group ``name`` on ``channel``."""
        return self.stream(channel).group(name, start=start)

    def serialize(self) -> str:
        """Canonical textual form: JSONL, channels sorted, seq order.

        Two runs of the same scenario with the same seed produce the
        same byte string (test-enforced) — the replay guarantee.
        """
        lines = []
        for channel in self.channels():
            for entry in self.streams[channel].entries():
                lines.append(json.dumps(entry.to_record(),
                                        sort_keys=True,
                                        separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")

    def dump(self, directory) -> list:
        """Write one JSONL segment per channel into ``directory``."""
        from repro.stream.store import dump_broker
        return dump_broker(self, directory)

    @classmethod
    def load(cls, directory) -> "StreamBroker":
        """Rebuild a broker from :meth:`dump` output."""
        from repro.stream.store import load_broker
        return load_broker(directory)

    def close(self) -> None:
        """Flush and close the sink (no-op for in-memory brokers)."""
        if self.sink is not None:
            self.sink.close()


def attach_stream(broker: StreamBroker, bus: Any,
                  nodes: Iterable[Any]) -> None:
    """Wire ``broker`` into a bus and its nodes' transports.

    Sets ``bus.stream`` (the KECho endpoints' tee point) and installs
    the broker's drop recorder as each node transport's ``drop_hook``
    (transports without one — the live TCP stack — simply never report
    drops: real sockets fail by disconnect, which the reconciler sees
    as missing deliveries).
    """
    bus.stream = broker
    for node in nodes:
        stack = node.stack
        if hasattr(stack, "drop_hook"):
            stack.drop_hook = broker.record_drop


def merge_brokers(brokers: list[StreamBroker]) -> StreamBroker:
    """Fold per-shard brokers into one global broker.

    Entries are re-sequenced in ``(time, shard index, shard seq)``
    order per channel — deterministic for a fixed (seed, workers,
    partition), and order-preserving per ``(channel, dest)`` because
    each host lives in exactly one shard.
    """
    merged = StreamBroker()
    channels = sorted({ch for b in brokers for ch in b.streams})
    for channel in channels:
        rows: list[tuple[float, int, int, StreamEntry]] = []
        for i, b in enumerate(brokers):
            st = b.streams.get(channel)
            if st is None:
                continue
            for entry in st.entries():
                rows.append((entry.time, i, entry.seq, entry))
        rows.sort(key=lambda r: (r[0], r[1], r[2]))
        out = merged.stream(channel)
        for _, _, _, entry in rows:
            out.append(kind=entry.kind, source=entry.source,
                       dest=entry.dest, time=entry.time,
                       submitted_at=entry.submitted_at,
                       size=entry.size, records=entry.records,
                       summary=entry.summary, targets=entry.targets,
                       local=entry.local, fault=entry.fault,
                       sender_failed=entry.sender_failed)
    return merged
