"""Command-line runner: ``python -m repro.harness [fig...] [--full]``.

``python -m repro.harness trace [...]`` dispatches to the causal-
tracing subcommand (:mod:`repro.harness.tracecli`);
``python -m repro.harness live [...]`` runs the stack over real
asyncio localhost sockets (:mod:`repro.harness.livecli`);
``python -m repro.harness stream [...]`` tails, replays, reconciles
and trims the durable event stream (:mod:`repro.harness.streamcli`);
``python -m repro.harness obs [...]`` renders the time-series metrics
plane — health, sparkline dashboards, OpenMetrics/JSON export, live
watch (:mod:`repro.harness.obscli`);
``python -m repro.harness experiment [...]`` runs the declarative
Experiment/Policy sweep (Figs. 12-14) on the sim, sharded, or live
backend (:mod:`repro.harness.experimentcli`).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.reporting import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        from repro.harness.tracecli import main as trace_main
        return trace_main(argv[1:])
    if argv and argv[0] == "live":
        from repro.harness.livecli import main as live_main
        return live_main(argv[1:])
    if argv and argv[0] == "stream":
        from repro.harness.streamcli import main as stream_main
        return stream_main(argv[1:])
    if argv and argv[0] == "obs":
        from repro.harness.obscli import main as obs_main
        return obs_main(argv[1:])
    if argv and argv[0] == "experiment":
        from repro.harness.experimentcli import main as exp_main
        return exp_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the dproc paper's evaluation figures.")
    parser.add_argument("figures", nargs="*",
                        help=f"figure ids (default: all of "
                             f"{', '.join(EXPERIMENTS)})")
    parser.add_argument("--full", action="store_true",
                        help="run at the paper's full scale "
                             "(slower; default is a quick pass)")
    parser.add_argument("--plot", action="store_true",
                        help="additionally draw each figure as an "
                             "ASCII line chart")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each result as JSON into DIR "
                             "(loadable with repro.analysis.load_result)")
    args = parser.parse_args(argv)
    targets = args.figures or list(EXPERIMENTS)
    for eid in targets:
        if eid not in EXPERIMENTS:
            parser.error(f"unknown figure {eid!r}")
    for eid in targets:
        start = time.perf_counter()
        result = run_experiment(eid, quick=not args.full)
        elapsed = time.perf_counter() - start
        print(result.table())
        if args.plot:
            from repro.harness.asciiplot import render_plot
            ys = [y for s in result.series for y in s.y if y > 0]
            log_y = bool(ys) and max(ys) / min(ys) > 100
            print()
            print(render_plot(result, log_y=log_y))
        if args.save:
            from pathlib import Path

            from repro.analysis import dump_result
            directory = Path(args.save)
            directory.mkdir(parents=True, exist_ok=True)
            path = dump_result(result, directory / f"{eid}.json")
            print(f"   [saved {path}]")
        print(f"   [{EXPERIMENTS[eid].paper_ref}; "
              f"ran in {elapsed:.1f}s wall]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
