"""``python -m repro.harness obs`` — the observability dashboard.

One render path for both backends: the command runs a scenario with
:meth:`repro.api.Scenario.with_observability` (simulated by default,
``--backend live`` for real asyncio nodes) and draws the plane it
produced — health verdict, degraded→recovered transitions with fault
attribution, and a per-metric table with sparklines of each series'
history.  ``--export openmetrics`` / ``--export json`` print the raw
exposition instead (the JSON form is the canonical byte-stable
export the determinism tests pin).

``--watch URL`` is the live companion: poll a running cluster's
scrape endpoint (``harness live --scrape PORT``), validate each
exposition with the strict mini-parser, and print a one-line rollup
per poll — no scenario of its own.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.harness.asciiplot import sparkline

__all__ = ["main", "render_dashboard"]

#: Metric-name substrings surfaced by the default (no ``--grep``)
#: dashboard, in display order.
DEFAULT_PANELS = ("dmon.", "kecho.", "net.", "stream.")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness obs",
        description="Time-series metrics plane: dashboard, health, "
                    "OpenMetrics/JSON export, live watch.")
    parser.add_argument("--nodes", type=int, default=12,
                        help="cluster size (default 12)")
    parser.add_argument("--seed", type=int, default=7,
                        help="simulation seed (default 7)")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="seconds to run (default 30)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="sampling interval in seconds "
                             "(default 1.0)")
    parser.add_argument("--workers", type=int, default=1,
                        help="shard the simulation across N workers "
                             "(inline; default 1)")
    parser.add_argument("--backend", choices=("sim", "live"),
                        default="sim",
                        help="simulated virtual time (default) or "
                             "real asyncio localhost nodes")
    parser.add_argument("--faults", action="store_true",
                        help="run the chaos timeline so the health "
                             "engine has faults to flag (sim only)")
    parser.add_argument("--no-stream", action="store_true",
                        help="skip the durable stream tee (loses the "
                             "stream.* panels and fault attribution)")
    parser.add_argument("--grep", default=None, metavar="SUBSTR",
                        help="only show series whose key contains "
                             "SUBSTR (default: the stock panels)")
    parser.add_argument("--width", type=int, default=32,
                        help="sparkline width (default 32)")
    parser.add_argument("--export", choices=("openmetrics", "json"),
                        default=None,
                        help="print the raw exposition instead of "
                             "the dashboard")
    parser.add_argument("--watch", metavar="URL", default=None,
                        help="poll a live scrape endpoint instead of "
                             "running a scenario")
    parser.add_argument("--every", type=float, default=2.0,
                        help="--watch poll period in seconds "
                             "(default 2)")
    parser.add_argument("--count", type=int, default=5,
                        help="--watch polls before exiting "
                             "(default 5)")
    return parser


# -- scenario drivers --------------------------------------------------------


def _run_scenario(args):
    """Run per the CLI options; returns the finished Scenario."""
    from repro.api import Scenario
    if args.faults:
        if args.backend != "sim":
            raise SystemExit("--faults needs the simulator's fault "
                             "injector; drop --backend live")
        from repro.harness.chaos import chaos_recovery
        report = chaos_recovery(
            nodes=args.nodes, seed=args.seed, duration=args.duration,
            poll_interval=args.interval, workers=args.workers,
            stream=not args.no_stream, obs=True)
        return report
    scenario = Scenario(nodes=args.nodes, seed=args.seed,
                        backend=args.backend)
    scenario.with_observability(sample_interval=args.interval)
    if not args.no_stream:
        scenario.with_stream()
    if args.workers > 1:
        scenario.with_workers(args.workers, mode="inline")
    scenario.run(args.duration)
    return scenario


def _plane_and_broker(result):
    """(plane, data-plane broker or None) from either driver result."""
    from repro.harness.chaos import ChaosReport
    if isinstance(result, ChaosReport):
        return result.obs_plane, result.stream_broker
    broker = None
    if result._want_stream:
        broker = result.stream
    return result.obs, broker


# -- rendering ---------------------------------------------------------------


def _fmt(value: Optional[float]) -> str:
    if value is None or value != value:
        return "-"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def render_dashboard(plane, broker=None, grep: Optional[str] = None,
                     width: int = 32) -> str:
    """The shared sim/live dashboard text for one plane."""
    from repro.obs import attribute_transitions
    lines: list[str] = []
    verdict = plane.verdict()
    state = "healthy" if verdict["healthy"] else "DEGRADED"
    lines.append(f"health: {state}   samples: {plane.samples_taken}"
                 f"   series: {len(plane.tsdb.keys())}"
                 f"   interval: {plane.sample_interval:g}s")
    lines.append("")
    lines.append(f"  {'rule':<22} {'status':<9} {'threshold':>9}  "
                 f"degraded")
    for row in verdict["rules"]:
        subjects = ",".join(row["degraded_subjects"]) or "-"
        lines.append(f"  {row['rule']:<22} {row['status']:<9} "
                     f"{row['threshold']:>9g}  {subjects}")
    transitions = plane.transitions
    if transitions:
        lines.append("")
        lines.append(f"transitions ({len(transitions)}):")
        for tr in transitions:
            lines.append(
                f"  {tr.time:>8.2f}s {tr.rule:<22} {tr.subject:<10} "
                f"{tr.from_status} -> {tr.to_status} "
                f"(value {_fmt(tr.value)}, slo {tr.threshold:g})")
        windows = attribute_transitions(transitions, broker)
        if windows:
            lines.append("")
            lines.append("degraded windows:")
            for w in windows:
                end = ("open" if w["end"] == float("inf")
                       else f"{w['end']:.2f}s")
                cause = (", ".join(w["faults"]) if w["attributed"]
                         else "unattributed")
                lines.append(
                    f"  {w['rule']} on {w['subject']}: "
                    f"{w['start']:.2f}s .. {end}  [{cause}]")
    lines.append("")
    lines.extend(_series_table(plane, grep, width))
    return "\n".join(lines)


def _series_table(plane, grep: Optional[str], width: int) -> list:
    """Per-metric rows: series count, last/min/max, sparkline."""
    groups: dict[str, list] = {}
    for series in plane.tsdb.all_series():
        key = series.name
        stat = dict(series.labels).get("stat")
        if stat:
            key += f"[{stat}]"
        if grep is not None:
            if grep not in key:
                continue
        elif not any(p in key for p in DEFAULT_PANELS):
            continue
        groups.setdefault(key, []).append(series)
    lines = [f"  {'metric':<42} {'n':>3} {'last':>10} "
             f"{'min..max':>17}  history"]
    for key in sorted(groups):
        members = groups[key]
        # Bucket the member series' points on time so the sparkline
        # shows the cross-node average trend.
        merged: dict[float, list] = {}
        last_values = []
        for series in members:
            for t, v in series.points():
                merged.setdefault(t, []).append(v)
            latest = series.latest
            if latest is not None:
                last_values.append(latest)
        trend = [sum(vs) / len(vs) for _, vs in sorted(merged.items())]
        if not last_values:
            continue
        lo, hi = min(last_values), max(last_values)
        lines.append(
            f"  {key:<42} {len(members):>3} "
            f"{_fmt(sum(last_values) / len(last_values)):>10} "
            f"{_fmt(lo):>7}..{_fmt(hi):<8} "
            f"{sparkline(trend, width=width)}")
    if len(lines) == 1:
        lines.append("  (no series matched)")
    return lines


# -- exports and watch -------------------------------------------------------


def _export(result, kind: str) -> int:
    plane, _ = _plane_and_broker(result)
    if kind == "json":
        print(plane.export_json())
        return 0
    from repro.harness.chaos import ChaosReport
    from repro.obs import render_openmetrics
    registries = {}
    if not isinstance(result, ChaosReport):
        # A chaos report outlives its cluster; health still renders.
        registries = {node.name: node.telemetry
                      for node in result.nodes}
    print(render_openmetrics(registries, health=plane.verdict()),
          end="")
    return 0


def _watch(args) -> int:
    """Poll a scrape endpoint; exits non-zero on parse/HTTP failure."""
    import time
    import urllib.request

    from repro.obs import ObsError, parse_openmetrics
    url = args.watch
    if not url.startswith("http"):
        url = f"http://{url}"
    if not url.endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    for i in range(args.count):
        if i:
            time.sleep(args.every)
        try:
            with urllib.request.urlopen(url, timeout=5.0) as resp:
                text = resp.read().decode("utf-8")
        except OSError as exc:
            print(f"poll {i + 1}: FETCH FAILED {exc}", file=sys.stderr)
            return 1
        try:
            families = parse_openmetrics(text)
        except ObsError as exc:
            print(f"poll {i + 1}: INVALID EXPOSITION {exc}",
                  file=sys.stderr)
            return 1
        samples = sum(len(f["samples"]) for f in families.values())
        healthy = [s.value for f in families.values()
                   for s in f["samples"] if s.name == "repro_healthy"]
        state = ("healthy" if healthy and healthy[0] == 1.0
                 else "DEGRADED" if healthy else "unknown")
        print(f"poll {i + 1}/{args.count}: {len(families)} families, "
              f"{samples} samples, health {state}")
    return 0


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.watch is not None:
        return _watch(args)
    result = _run_scenario(args)
    if args.export is not None:
        return _export(result, args.export)
    plane, broker = _plane_and_broker(result)
    from repro.harness.chaos import ChaosReport
    if isinstance(result, ChaosReport):
        print(f"chaos run: {result.n_nodes} nodes, seed "
              f"{result.seed}, victim {result.victim}")
        print()
    print(render_dashboard(plane, broker, grep=args.grep,
                           width=args.width))
    return 0


if __name__ == "__main__":
    sys.exit(main())
