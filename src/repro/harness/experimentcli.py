"""``python -m repro.harness experiment``: the declarative policy sweep.

Runs the paper's Figs. 12-14 experiment list — baseline, static
allocation, dynamic threshold adaptation, multi-resource rules — via
:func:`repro.experiment.run_experiments` on the simulator (optionally
sharded) or the live socket backend, and writes the results as
``BENCH_experiment.json`` in the shared BENCH envelope (so
``benchmarks/bench_diff.py`` can gate it against a baseline).

With ``--ab`` it additionally runs a live batching A/B at a short poll
interval: the same cluster with and without frame coalescing, at equal
delivered metrics, recording the frames-on-wire reduction.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiment import run_experiments, standard_experiments

#: Default A/B poll interval: short enough that several monitor frames
#: head to the same destination within one batch window.
AB_POLL = 0.25


def _health_overhead(record: dict) -> dict:
    """Just enough of an overhead summary for the SLO checks."""
    return {
        "cpu_fraction_of_node_time":
            record["cpu_fraction_of_node_time"],
        "events_published": record["events_published"],
    }


def _run_live(nodes: int, duration: float, seed: int, poll: float,
              batch) -> dict:
    """One A/B arm: a live cluster, identical but for batching."""
    from repro.api import Scenario
    from repro.dproc import DMonConfig

    scenario = Scenario(nodes=nodes, seed=seed, backend="live",
                        dmon=DMonConfig(poll_interval=poll))
    if batch is not None:
        scenario.with_node_pool(1, batch=batch)
    scenario.run(duration)
    wire = scenario.runtime.wire_stats()
    receives = sum(
        node.telemetry.value("kecho.dproc.monitor.receives")
        for node in scenario.nodes)
    return {
        "frames": wire.get("net.tx_frames", 0.0),
        "wire_frames": wire.get("net.tx_wire_frames", 0.0),
        "batches": wire.get("net.tx_batches", 0.0),
        "wire_bytes": wire.get("net.tx_wire_bytes", 0.0),
        "monitor_receives": receives,
    }


def batching_ab(nodes: int, duration: float, seed: int,
                poll: float = AB_POLL) -> dict:
    """Frames-on-wire with coalescing off vs on, same cluster."""
    from repro.live.transport import BatchConfig

    # The batch window must cover at least two poll periods, or there
    # is never a second frame to coalesce with.
    batch = BatchConfig(max_delay=max(2.0 * poll, 0.1))
    unbatched = _run_live(nodes, duration, seed, poll, None)
    batched = _run_live(nodes, duration, seed, poll, batch)
    reduction = 0.0
    if unbatched["wire_frames"]:
        reduction = 1.0 - (batched["wire_frames"]
                           / unbatched["wire_frames"])
    receives_ratio = 1.0
    if unbatched["monitor_receives"]:
        receives_ratio = (batched["monitor_receives"]
                          / unbatched["monitor_receives"])
    return {
        "nodes": nodes,
        "poll_interval": poll,
        "batch_max_delay": batch.max_delay,
        "duration": duration,
        "unbatched": unbatched,
        "batched": batched,
        "wire_frame_reduction": round(reduction, 4),
        "delivered_ratio": round(receives_ratio, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness experiment",
        description="Run the declarative Experiment/Policy sweep "
                    "(Figs. 12-14) and write BENCH_experiment.json.")
    parser.add_argument("--backend", choices=("sim", "live"),
                        default="sim",
                        help="where to run the sweep (default sim)")
    parser.add_argument("--nodes", type=int, default=8,
                        help="cluster size (default 8)")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds per experiment — simulated on "
                             "sim, wall-clock on live (default 10)")
    parser.add_argument("--seed", type=int, default=7,
                        help="master seed (default 7)")
    parser.add_argument("--workers", type=int, default=1,
                        help="sim: sharded workers; live: node-pool "
                             "processes (default 1)")
    parser.add_argument("--policies", nargs="*", default=None,
                        metavar="NAME",
                        help="subset of the standard sweep "
                             "(baseline static dynamic multi)")
    parser.add_argument("--stretch", type=float, default=4.0,
                        help="relief period stretch factor (default 4)")
    parser.add_argument("--event-budget", type=float, default=0.5,
                        help="events/s budget that triggers dynamic "
                             "adaptation (default 0.5)")
    parser.add_argument("--ab", action="store_true",
                        help="also run the live batching A/B (frames "
                             "on the wire, coalescing off vs on)")
    parser.add_argument("--ab-nodes", type=int, default=8,
                        help="A/B cluster size (default 8)")
    parser.add_argument("--ab-duration", type=float, default=6.0,
                        help="A/B wall seconds per arm (default 6)")
    parser.add_argument("--ab-poll", type=float, default=AB_POLL,
                        help=f"A/B poll interval (default {AB_POLL})")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_experiment.json"),
                        help="report path "
                             "(default ./BENCH_experiment.json)")
    parser.add_argument("--json", action="store_true",
                        help="print the full payload as JSON")
    args = parser.parse_args(argv)

    experiments = standard_experiments(
        stretch_period=args.stretch, event_budget=args.event_budget)
    if args.policies:
        known = {exp.name for exp in experiments}
        for name in args.policies:
            if name not in known:
                parser.error(f"unknown policy {name!r} (choose from "
                             f"{', '.join(sorted(known))})")
        experiments = [exp for exp in experiments
                       if exp.name in set(args.policies)]

    print(f"== experiment sweep: {len(experiments)} policies, "
          f"{args.nodes} nodes, {args.duration:g}s each on "
          f"{args.backend}"
          + (f" x{args.workers}" if args.workers > 1 else "") + " ==")
    reports = run_experiments(experiments, nodes=args.nodes,
                              seed=args.seed, duration=args.duration,
                              backend=args.backend,
                              workers=args.workers)
    print(f"  {'experiment':<10} {'policy':<16} {'decide':>6} "
          f"{'adapt':>5} {'fresh':>5} {'events':>8} {'recv':>8} "
          f"{'mon cpu (s)':>11}")
    for rep in reports:
        print(f"  {rep.experiment:<10} {rep.policy:<16} "
              f"{rep.decisions:>6} {rep.adaptations:>5} "
              f"{rep.hosts_reporting:>5} "
              f"{rep.events_published:>8.0f} "
              f"{rep.monitor_receives:>8.0f} "
              f"{rep.monitor_cpu_seconds:>11.4f}")

    from repro.harness.benchreport import BenchReport
    report = BenchReport(
        "experiment",
        config={"backend": args.backend, "n_nodes": args.nodes,
                "duration": args.duration, "seed": args.seed,
                "workers": args.workers,
                "stretch_period": args.stretch,
                "event_budget": args.event_budget})
    for rep in reports:
        record = rep.to_record()
        report.add(record, overhead=_health_overhead(record))

    failed = False
    if args.ab:
        print(f"\n== batching A/B: {args.ab_nodes} live nodes, poll "
              f"{args.ab_poll:g}s, {args.ab_duration:g}s per arm ==")
        ab = batching_ab(args.ab_nodes, args.ab_duration, args.seed,
                         poll=args.ab_poll)
        report.tail(batching_ab=ab)
        print(f"  unbatched: {ab['unbatched']['wire_frames']:.0f} "
              f"wire writes for {ab['unbatched']['frames']:.0f} "
              f"frames")
        print(f"  batched:   {ab['batched']['wire_frames']:.0f} "
              f"wire writes for {ab['batched']['frames']:.0f} frames "
              f"({ab['batched']['batches']:.0f} BATCH super-frames)")
        print(f"  frames-on-wire reduction: "
              f"{ab['wire_frame_reduction']:.1%} at "
              f"{ab['delivered_ratio']:.1%} delivered metrics")
        if ab["wire_frame_reduction"] <= 0:
            print("FAIL: batching did not reduce frames on the wire",
                  file=sys.stderr)
            failed = True

    report.write(args.output)
    print(f"\nwrote {args.output}")
    if args.json:
        print(json.dumps(report.payload(), indent=2))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
