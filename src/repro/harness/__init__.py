"""Benchmark harness: one experiment per evaluation figure."""

from repro.harness.experiment import ExperimentResult, SeriesResult
from repro.harness.microbench import (fig4_cpu_perturbation,
                                      fig5_network_perturbation,
                                      fig6_submission_overhead,
                                      fig7_submission_overhead_large,
                                      fig8_receive_overhead)
from repro.harness.appbench import (SmartPointerRig,
                                    fig9a_latency_timeline,
                                    fig9b_event_rate,
                                    fig10_latency_vs_network,
                                    fig11_hybrid_monitors)
from repro.harness.chaos import ChaosReport, chaos_recovery
from repro.harness.profile import HotspotReport, profile_call
from repro.harness.reporting import (EXPERIMENTS, ExperimentSpec,
                                     run_all, run_experiment)

__all__ = [
    "ExperimentResult", "SeriesResult",
    "fig4_cpu_perturbation", "fig5_network_perturbation",
    "fig6_submission_overhead", "fig7_submission_overhead_large",
    "fig8_receive_overhead",
    "SmartPointerRig", "fig9a_latency_timeline", "fig9b_event_rate",
    "fig10_latency_vs_network", "fig11_hybrid_monitors",
    "EXPERIMENTS", "ExperimentSpec", "run_all", "run_experiment",
    "ChaosReport", "chaos_recovery",
    "HotspotReport", "profile_call",
]
