"""Microbenchmark experiments: Figures 4-8 of the paper.

All five experiments share the paper's setup: an 8-node cluster with
dproc "monitoring CPU load, disk usage, memory usage, and network
traffic, resulting in monitoring events of about 50-100 bytes", run in
three configurations:

* ``period=1s`` — every metric published each polling iteration;
* ``period=2s`` — update period of two seconds;
* ``differential`` — the 15 % change threshold ("monitoring
  information is sent only if the utilization of a resource varies by
  at least 15 % from the last measured result").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.api import Scenario
from repro.dproc import DMonConfig, MetricId
from repro.dproc.params import ChangeThreshold
from repro.harness.experiment import ExperimentResult
from repro.units import KB, to_usec
from repro.workloads import AmbientActivity, IperfMeasure, Linpack

#: Background activity level on every node.  The paper's testbed nodes
#: ran a full Linux userland, so resource metrics fluctuate a little;
#: without this the differential filter would (unrealistically) never
#: fire.  Kept small enough not to disturb linpack/iperf measurably.
AMBIENT_INTENSITY = 0.25

__all__ = [
    "MICROBENCH_METRICS", "CONFIG_LABELS",
    "fig4_cpu_perturbation", "fig5_network_perturbation",
    "fig6_submission_overhead", "fig7_submission_overhead_large",
    "fig8_receive_overhead",
]

#: The four monitored quantities of the microbenchmarks (≈88 B events).
MICROBENCH_METRICS = frozenset({
    MetricId.LOADAVG, MetricId.FREEMEM, MetricId.DISKUSAGE,
    MetricId.NET_BANDWIDTH,
})

#: The three monitoring configurations compared throughout §4.1.
CONFIG_LABELS = ("update period=1s", "update period=2s",
                 "differential filter")


def _apply_mode(dprocs: dict, mode: str) -> None:
    """Switch deployed d-mons into one of the three §4.1 configs."""
    for dproc in dprocs.values():
        for policy in dproc.dmon.policies.values():
            if mode == "period2":
                policy.set_period(2.0)
            elif mode == "differential":
                policy.add_threshold(ChangeThreshold(15.0))
            elif mode != "period1":
                raise ValueError(f"unknown configuration {mode!r}")


def _scenario(monitored: int, mode: str, seed: int,
              min_nodes: int = 1, padding: float = 0.0,
              ambient: float = AMBIENT_INTENSITY) -> Scenario:
    """A §4.1 testbed: dproc on the first ``monitored`` nodes."""
    scenario = Scenario(
        nodes=max(monitored, min_nodes), seed=seed,
        dmon=DMonConfig(poll_interval=1.0,
                        metric_subset=MICROBENCH_METRICS,
                        payload_padding=padding),
        modules=("cpu", "mem", "disk", "net"),
        monitor_hosts=monitored)
    if ambient > 0:
        def start_ambient(sc: Scenario) -> None:
            for node in sc.nodes:
                AmbientActivity(node, intensity=ambient).start()
        scenario.with_cluster_setup(start_ambient)
    scenario.with_setup(lambda sc: _apply_mode(sc.dprocs, mode))
    return scenario

_MODES = {"update period=1s": "period1",
          "update period=2s": "period2",
          "differential filter": "differential"}


def fig4_cpu_perturbation(nodes: Iterable[int] = range(0, 9),
                          duration: float = 60.0,
                          seed: int = 0) -> ExperimentResult:
    """Figure 4: linpack MFLOPS on node0 vs number of dproc nodes."""
    result = ExperimentResult(
        experiment_id="fig4",
        title="CPU perturbation analysis (linpack)",
        xlabel="nodes", ylabel="available CPU (Mflops)",
        expectation="Mflops decrease only slightly with cluster size; "
                    "the differential filter perturbs least "
                    "(paper: 17.4 -> ~16.6 at 8 nodes for 1s period)")
    nodes = list(nodes)
    for label in CONFIG_LABELS:
        ys = []
        for n in nodes:
            sc = _scenario(n, _MODES[label], seed).build()
            linpack = Linpack(sc.nodes[sc.nodes.names[0]]).start()
            sc.run_until(duration)
            ys.append(linpack.mflops(since=duration * 0.1))
        result.add_series(label, nodes, ys)
    return result


def fig5_network_perturbation(nodes: Iterable[int] = range(0, 9),
                              duration: float = 60.0,
                              seed: int = 0) -> ExperimentResult:
    """Figure 5: Iperf available bandwidth vs number of dproc nodes."""
    result = ExperimentResult(
        experiment_id="fig5",
        title="Network perturbation analysis (Iperf UDP)",
        xlabel="nodes", ylabel="available bandwidth (Mbps)",
        expectation="bandwidth drops by <0.5% for a 1s update period "
                    "and stays ~constant for 2s and the differential "
                    "filter (paper: ~96 -> ~95.5 Mbps)")
    nodes = list(nodes)
    for label in CONFIG_LABELS:
        ys = []
        for n in nodes:
            sc = _scenario(n, _MODES[label], seed,
                           min_nodes=2).build()
            iperf = IperfMeasure(sc.nodes[sc.nodes.names[0]],
                                 sc.nodes[sc.nodes.names[1]]).start()
            sc.run_until(duration)
            ys.append(iperf.bandwidth_mbps(since=duration * 0.1))
        result.add_series(label, nodes, ys)
    return result


def _submission_overhead(nodes: Sequence[int], duration: float,
                         seed: int, padding: float,
                         experiment_id: str,
                         title: str,
                         expectation: str) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=experiment_id, title=title,
        xlabel="nodes", ylabel="submission overhead (usec/iteration)",
        expectation=expectation)
    for label in CONFIG_LABELS:
        ys = []
        for n in nodes:
            sc = _scenario(n, _MODES[label], seed,
                           padding=padding).run(duration)
            dmon = sc.dprocs[sc.nodes.names[0]].dmon
            ys.append(to_usec(dmon.mean_submit_overhead(
                since=duration * 0.1)))
        result.add_series(label, nodes, ys)
    return result


def fig6_submission_overhead(nodes: Iterable[int] = range(1, 9),
                             duration: float = 100.0,
                             seed: int = 0) -> ExperimentResult:
    """Figure 6: event submission overhead per polling iteration.

    "The overhead is calculated by timing 100 polling iterations and
    taking the average" — ``duration=100`` at a 1 s poll interval does
    exactly that.
    """
    return _submission_overhead(
        list(nodes), duration, seed, padding=0.0,
        experiment_id="fig6",
        title="Event submission overhead (50-100 B events)",
        expectation="grows with cluster size; <100 usec with the "
                    "differential filter even at 8 nodes; ~1.8 ms at "
                    "8 nodes for the 1 s period")


def fig7_submission_overhead_large(nodes: Iterable[int] = range(1, 9),
                                   duration: float = 100.0,
                                   seed: int = 0) -> ExperimentResult:
    """Figure 7: the same with ~5 KB monitoring events."""
    return _submission_overhead(
        list(nodes), duration, seed, padding=KB(5) - 88.0,
        experiment_id="fig7",
        title="Event submission overhead (5 KB events)",
        expectation="same shape as Fig 6 with larger magnitudes "
                    "(~5 ms at 8 nodes for the 1 s period)")


def fig8_receive_overhead(nodes: Iterable[int] = range(1, 9),
                          duration: float = 100.0,
                          seed: int = 0) -> ExperimentResult:
    """Figure 8: overhead of handling incoming events per iteration."""
    result = ExperimentResult(
        experiment_id="fig8",
        title="Overhead in receiving incoming events",
        xlabel="nodes", ylabel="receive overhead (usec/iteration)",
        expectation="<1 ms at 8 nodes for the 2 s period and the "
                    "differential filter; <2.2 ms for the 1 s period")
    nodes = list(nodes)
    for label in CONFIG_LABELS:
        ys = []
        for n in nodes:
            sc = _scenario(n, _MODES[label], seed).run(duration)
            dmon = sc.dprocs[sc.nodes.names[0]].dmon
            ys.append(to_usec(dmon.mean_receive_overhead(
                since=duration * 0.1)))
        result.add_series(label, nodes, ys)
    return result
