"""Experiment result containers and table rendering.

Every figure-reproduction function returns an :class:`ExperimentResult`
holding one or more labelled series plus the paper's qualitative
expectation, and can render itself as the fixed-width table the
benchmark harness prints (the "same rows/series the paper reports").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["SeriesResult", "ExperimentResult"]


@dataclass(frozen=True)
class SeriesResult:
    """One labelled curve of an experiment."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x/y length mismatch "
                f"({len(self.x)} vs {len(self.y)})")

    def y_at(self, x: float) -> float:
        """Value at an exact x position."""
        try:
            return self.y[self.x.index(x)]
        except ValueError:
            raise ValueError(
                f"series {self.label!r} has no point at x={x}") from None


@dataclass
class ExperimentResult:
    """All series of one reproduced figure."""

    experiment_id: str          #: e.g. "fig4"
    title: str
    xlabel: str
    ylabel: str
    series: list[SeriesResult] = field(default_factory=list)
    #: The paper's qualitative claim this run should reproduce.
    expectation: str = ""
    notes: str = ""

    def add_series(self, label: str, x: Sequence[float],
                   y: Sequence[float]) -> SeriesResult:
        result = SeriesResult(label, tuple(float(v) for v in x),
                              tuple(float(v) for v in y))
        self.series.append(result)
        return result

    def get(self, label: str) -> SeriesResult:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in "
                       f"{self.experiment_id}")

    @property
    def xs(self) -> tuple[float, ...]:
        """The union of all x positions, sorted."""
        xs: set[float] = set()
        for s in self.series:
            xs.update(s.x)
        return tuple(sorted(xs))

    def table(self, precision: int = 4) -> str:
        """Fixed-width table: one row per x, one column per series."""
        labels = [s.label for s in self.series]
        header = [self.xlabel] + labels
        rows: list[list[str]] = []
        for x in self.xs:
            row = [f"{x:g}"]
            for s in self.series:
                try:
                    row.append(f"{s.y_at(x):.{precision}g}")
                except ValueError:
                    row.append("-")
            rows.append(row)
        widths = [max(len(header[i]),
                      *(len(r[i]) for r in rows)) if rows
                  else len(header[i])
                  for i in range(len(header))]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"   y: {self.ylabel}",
        ]
        if self.expectation:
            lines.append(f"   paper: {self.expectation}")
        if self.notes:
            lines.append(f"   note: {self.notes}")
        fmt = "  ".join(f"{{:>{w}}}" for w in widths)
        lines.append(fmt.format(*header))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append(fmt.format(*row))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.table()
