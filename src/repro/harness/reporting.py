"""Run-all reporting: regenerate every figure and print/collect tables.

``python -m repro.harness`` runs every experiment at a configurable
scale and prints the paper-style tables; the same entry points feed
EXPERIMENTS.md and the pytest-benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.harness import appbench, microbench
from repro.harness.experiment import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "ExperimentSpec"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: how to run one figure at two scales."""

    experiment_id: str
    paper_ref: str
    full: Callable[[], ExperimentResult]
    quick: Callable[[], ExperimentResult]


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "fig4": ExperimentSpec(
        "fig4", "Figure 4 — CPU perturbation analysis",
        full=lambda: microbench.fig4_cpu_perturbation(
            nodes=range(0, 9), duration=60.0),
        quick=lambda: microbench.fig4_cpu_perturbation(
            nodes=(0, 2, 4, 8), duration=30.0)),
    "fig5": ExperimentSpec(
        "fig5", "Figure 5 — network perturbation analysis",
        full=lambda: microbench.fig5_network_perturbation(
            nodes=range(0, 9), duration=60.0),
        quick=lambda: microbench.fig5_network_perturbation(
            nodes=(0, 2, 4, 8), duration=20.0)),
    "fig6": ExperimentSpec(
        "fig6", "Figure 6 — event submission overhead",
        full=lambda: microbench.fig6_submission_overhead(
            nodes=range(1, 9), duration=100.0),
        quick=lambda: microbench.fig6_submission_overhead(
            nodes=(1, 2, 4, 8), duration=50.0)),
    "fig7": ExperimentSpec(
        "fig7", "Figure 7 — submission overhead, 5 KB events",
        full=lambda: microbench.fig7_submission_overhead_large(
            nodes=range(1, 9), duration=100.0),
        quick=lambda: microbench.fig7_submission_overhead_large(
            nodes=(1, 2, 4, 8), duration=50.0)),
    "fig8": ExperimentSpec(
        "fig8", "Figure 8 — event receiving overhead",
        full=lambda: microbench.fig8_receive_overhead(
            nodes=range(1, 9), duration=100.0),
        quick=lambda: microbench.fig8_receive_overhead(
            nodes=(1, 2, 4, 8), duration=50.0)),
    "fig9a": ExperimentSpec(
        "fig9a", "Figure 9(a) — latency under increasing CPU load",
        full=lambda: appbench.fig9a_latency_timeline(
            duration=2000.0, thread_interval=200.0),
        quick=lambda: appbench.fig9a_latency_timeline(
            duration=500.0, thread_interval=100.0,
            sample_every=25.0)),
    "fig9b": ExperimentSpec(
        "fig9b", "Figure 9(b) — event rate vs linpack threads",
        full=lambda: appbench.fig9b_event_rate(threads=range(0, 10)),
        quick=lambda: appbench.fig9b_event_rate(
            threads=(0, 2, 4, 6, 8), settle=30.0, measure=40.0)),
    "fig10": ExperimentSpec(
        "fig10", "Figure 10 — latency vs network perturbation",
        full=lambda: appbench.fig10_latency_vs_network(
            perturbations=range(0, 100, 10)),
        quick=lambda: appbench.fig10_latency_vs_network(
            perturbations=(0, 30, 50, 60, 70, 80, 90),
            settle=20.0, measure=40.0)),
    "fig11": ExperimentSpec(
        "fig11", "Figure 11 — single- vs multi-resource monitors",
        full=lambda: appbench.fig11_hybrid_monitors(steps=range(1, 9)),
        quick=lambda: appbench.fig11_hybrid_monitors(
            steps=(1, 2, 4, 6, 8), settle=20.0, measure=40.0)),
}


def run_experiment(experiment_id: str,
                   quick: bool = False) -> ExperimentResult:
    """Run one registered figure experiment."""
    try:
        spec = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(
            f"unknown experiment {experiment_id!r} (have: {known})") \
            from None
    return (spec.quick if quick else spec.full)()


def run_all(quick: bool = True) -> dict[str, ExperimentResult]:
    """Run every figure experiment; returns results by id."""
    return {eid: run_experiment(eid, quick=quick)
            for eid in EXPERIMENTS}
