"""Chaos scenario: dproc under loss, partition, and node failure.

The paper claims dproc's peer-to-peer channel design has no central
collection point to lose.  This scenario exercises that claim: a
cluster runs the full dproc deployment while the fault injector drives
it through probabilistic message loss, a partition that splits the
cluster in half, and the crash + reboot of one node — then measures
how long monitoring takes to recover.

Timeline (defaults; all times in simulated seconds)::

    0          deploy + start dproc everywhere
    5 .. 25    30 % message loss on every link
    10 .. 20   cluster partitioned into two halves
    12 .. 22   the victim node is crashed, then rebooted
    .. 60      run-out; recovery is measured

Reported:

* ``recovery_time`` — first instant after the partition heals when
  every surviving pair reports each other *fresh* again;
* ``rejoin_time`` — first instant after the reboot when every survivor
  reports the rebooted victim *fresh* again;
* ``victim_reported_dead`` — whether the survivors flagged the downed
  victim (stale or dead, never silently fresh) while it was gone.

Everything is deterministic: same seed → bit-identical
:attr:`ChaosReport.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.api import Scenario
from repro.dproc import PEER_FRESH, DMonConfig

__all__ = ["ChaosReport", "chaos_recovery"]


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    n_nodes: int
    seed: int
    duration: float
    victim: str
    #: Sim seconds from the partition healing to all surviving pairs
    #: fresh again (None = never recovered within ``duration``).
    recovery_time: Optional[float]
    #: Sim seconds from the victim's reboot to every survivor seeing
    #: it fresh again (None = never rejoined within ``duration``).
    rejoin_time: Optional[float]
    #: Survivors flagged the downed victim as stale/dead (never
    #: silently fresh) while it was gone.
    victim_reported_dead: bool
    #: The victim was never reported fresh while it was down and past
    #: the staleness threshold.
    victim_never_silently_fresh: bool
    #: Merged, time-ordered event trace: injected faults plus observed
    #: monitoring-state transitions.
    events: tuple[tuple[float, str], ...]
    final_liveness: dict[str, str]
    #: Cluster-wide self-telemetry summary (monitoring CPU/network
    #: overhead, from :func:`repro.telemetry.overhead_summary`).
    #: Deliberately *not* part of :attr:`trace` — it reports costs, the
    #: trace pins behaviour.
    overhead: Optional[dict] = None
    #: The durable event stream recorded during the run
    #: (``stream=True`` only; a :class:`repro.stream.StreamBroker`).
    #: Not part of :attr:`trace` — recording is passive and the trace
    #: must be identical with the stream on or off (test-enforced).
    stream_broker: Optional[object] = None
    #: Replay-vs-ground-truth validation of the stream
    #: (``stream=True`` only; a
    #: :class:`repro.stream.ReconcileReport`).  Also not in
    #: :attr:`trace`.
    reconciliation: Optional[object] = None
    #: The observability plane sampled through the run (``obs=True``
    #: only; a :class:`repro.obs.ObservabilityPlane`).  Sampling is
    #: passive, so the trace is identical with it on or off.
    obs_plane: Optional[object] = None

    @property
    def trace(self) -> tuple:
        """Hashable fingerprint for determinism comparisons."""
        return (self.events, self.recovery_time, self.rejoin_time,
                self.victim_reported_dead,
                self.victim_never_silently_fresh,
                tuple(sorted(self.final_liveness.items())))


def chaos_recovery(nodes: Optional[int] = None,
                   seed: int = 7,
                   loss_probability: float = 0.3,
                   loss_start: float = 5.0,
                   loss_end: float = 25.0,
                   partition_start: float = 10.0,
                   partition_end: float = 20.0,
                   crash_at: float = 12.0,
                   reboot_at: float = 22.0,
                   duration: float = 60.0,
                   poll_interval: float = 1.0,
                   probe_interval: float = 0.5,
                   tracer=None, *,
                   workers: int = 1,
                   stream: bool = False,
                   obs: bool = False,
                   obs_rules=None,
                   n_nodes: Optional[int] = None) -> ChaosReport:
    """Run the chaos scenario on a fresh cluster and report recovery.

    ``tracer`` (a :class:`repro.tracing.TraceCollector`) records causal
    traces through the run — faulted deliveries show up as dropped
    spans annotated with the fault kind.  Tracing is passive: the
    report is bit-identical with or without it (test-enforced).

    ``workers > 1`` shards the simulation (inline mode — all shards in
    this process so the fault timeline and observer keep their global
    view).  A sharded chaos run is deterministic for a fixed (seed,
    workers) but is a different event schedule from ``workers=1``: the
    observer probes cross-shard d-mon state at window granularity.

    ``stream=True`` additionally tees every channel submit, delivery
    and fault-plane drop into a durable event stream
    (:class:`repro.stream.StreamBroker`) and replays it against the
    d-mon remote caches after the run: the resulting
    :attr:`ChaosReport.reconciliation` proves crash recovery by
    replay — every missing delivery must be attributed to an injected
    fault.  Recording is passive, so the report's :attr:`~ChaosReport
    .trace` is bit-identical with the stream on or off.

    ``obs=True`` attaches the time-series metrics plane
    (``Scenario.with_observability``): the run's telemetry is sampled
    each poll interval and the health/SLO engine (``obs_rules``,
    default :func:`repro.obs.default_rules`) turns the injected fault
    window into degraded→recovered transitions on
    :attr:`ChaosReport.obs_plane`.  Also passive.
    """
    if n_nodes is not None:
        # The PR 5 alias is gone; fail loudly with the migration.
        raise TypeError("chaos_recovery() no longer accepts "
                        "'n_nodes'; pass nodes=... instead")
    n_nodes = 100 if nodes is None else nodes

    config = DMonConfig(poll_interval=poll_interval)
    stale_after = config.stale_after_intervals * poll_interval

    # Probe state, written by the observer process below.
    observations: list[tuple[float, str]] = []
    state = {"recovered_at": None, "rejoined_at": None,
             "victim_flagged": False, "silently_fresh": False,
             "all_fresh": None, "victim_view": None}

    def schedule_faults(sc: Scenario) -> None:
        names = sc.nodes.names
        victim = names[-1]
        injector = sc.faults
        # The monitored software dies and rejoins with the simulated
        # hardware: a crash stops that node's dproc, a reboot
        # restarts it.
        injector.on_crash(lambda host: sc.dprocs[host].stop())
        injector.on_reboot(lambda host: sc.dprocs[host].start())

        injector.schedule_loss(loss_start, loss_probability,
                               until=loss_end)
        half = len(names) // 2
        injector.schedule_partition(partition_start,
                                    [names[:half], names[half:]],
                                    heal_at=partition_end)
        injector.schedule_crash(crash_at, victim, reboot_at=reboot_at)

    def start_observer(sc: Scenario) -> None:
        env = sc.env
        dprocs = sc.dprocs
        names = sc.nodes.names
        victim = names[-1]
        survivors = names[:-1]

        def survivors_all_fresh() -> bool:
            for s in survivors:
                dmon = dprocs[s].dmon
                for other in survivors:
                    if other != s \
                            and dmon.peer_state(other) != PEER_FRESH:
                        return False
            return True

        def victim_states() -> set:
            return {dprocs[s].dmon.peer_state(victim)
                    for s in survivors}

        def observer():
            while True:
                now = env.now
                fresh = survivors_all_fresh()
                if fresh != state["all_fresh"]:
                    state["all_fresh"] = fresh
                    observations.append(
                        (now,
                         f"survivors "
                         f"{'all fresh' if fresh else 'degraded'}"))
                seen = victim_states()
                view = ",".join(sorted(seen))
                if view != state["victim_view"]:
                    state["victim_view"] = view
                    observations.append(
                        (now, f"victim seen as {view}"))
                if crash_at <= now < reboot_at:
                    if seen - {PEER_FRESH}:
                        state["victim_flagged"] = True
                    # Past the staleness bound a downed peer must
                    # never be reported fresh by anyone.
                    if now > crash_at + stale_after \
                            and PEER_FRESH in seen:
                        state["silently_fresh"] = True
                if (state["recovered_at"] is None
                        and now >= partition_end and fresh):
                    state["recovered_at"] = now
                if (state["rejoined_at"] is None and now >= reboot_at
                        and seen == {PEER_FRESH}):
                    state["rejoined_at"] = now
                yield env.timeout(probe_interval)

        env.process(observer(), name="chaos-observer")

    scenario = Scenario(nodes=n_nodes, seed=seed, dmon=config) \
        .with_faults(schedule_faults) \
        .with_setup(start_observer)
    if workers > 1:
        scenario.with_workers(workers, mode="inline")
    if tracer is not None:
        scenario.with_tracing(tracer)
    if stream:
        scenario.with_stream()
    if obs:
        scenario.with_observability(sample_interval=poll_interval,
                                    rules=obs_rules)
    scenario.run(duration)

    reconciliation = None
    broker = None
    if stream:
        from repro.stream import reconcile
        broker = scenario.stream
        reconciliation = reconcile(broker, scenario.dprocs,
                                   until=duration,
                                   stale_after=stale_after)

    names = scenario.nodes.names
    victim = names[-1]
    survivors = names[:-1]
    dprocs = scenario.dprocs
    viewer = dprocs[survivors[0]].dmon
    final = {host: viewer.peer_state(host) for host in names}
    events = tuple(sorted(scenario.faults.log + observations))
    recovered = state["recovered_at"]
    rejoined = state["rejoined_at"]
    return ChaosReport(
        n_nodes=n_nodes,
        seed=seed,
        duration=duration,
        victim=victim,
        recovery_time=(recovered - partition_end
                       if recovered is not None else None),
        rejoin_time=(rejoined - reboot_at
                     if rejoined is not None else None),
        victim_reported_dead=state["victim_flagged"],
        victim_never_silently_fresh=not state["silently_fresh"],
        events=events,
        final_liveness=final,
        overhead=scenario.overhead(duration),
        stream_broker=broker,
        reconciliation=reconciliation,
        obs_plane=scenario.obs if obs else None,
    )
