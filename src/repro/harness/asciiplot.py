"""Terminal line charts for experiment results.

The original figures are line plots; this renderer draws an
:class:`~repro.harness.experiment.ExperimentResult` as a fixed-size
character canvas so `python -m repro.harness --plot` can show the
*shape* of each reproduced figure directly in the terminal, no plotting
stack required.

Rendering rules:

* one glyph per series (``*``, ``o``, ``+``, ``x``, …), assigned in
  series order and shown in the legend;
* points are plotted at their scaled (x, y) positions and consecutive
  points of a series are connected with linear interpolation;
* an optional log-scale y-axis for figures whose series span orders of
  magnitude (the latency blow-up plots).
"""

from __future__ import annotations

import math

from repro.harness.experiment import ExperimentResult, SeriesResult

__all__ = ["render_plot", "sparkline", "SERIES_GLYPHS",
           "SPARK_GLYPHS"]

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "*o+x#@%&"

#: Height ramp for :func:`sparkline`, lowest to highest.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _scale(value: float, lo: float, hi: float, size: int,
           log: bool = False) -> int:
    """Map ``value`` in [lo, hi] onto a 0..size-1 cell index."""
    if log:
        value, lo, hi = (math.log10(max(v, 1e-12))
                         for v in (value, lo, hi))
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return max(0, min(size - 1, int(round(frac * (size - 1)))))


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:g}"


def sparkline(values, width: int | None = None) -> str:
    """One-line block-glyph sketch of ``values`` (obs dashboards).

    Values are min-max scaled onto :data:`SPARK_GLYPHS`; a constant
    series renders at mid-height rather than dividing by a zero span,
    NaNs render as spaces, and ``width`` (when given) downsamples long
    series by striding so the line always fits.
    """
    vals = list(values)
    if not vals:
        return ""
    if width is not None and width > 0 and len(vals) > width:
        stride = len(vals) / width
        vals = [vals[int(i * stride)] for i in range(width)]
    finite = [v for v in vals if v == v and not math.isinf(v)]
    if not finite:
        return " " * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in vals:
        if v != v or math.isinf(v):
            out.append(" ")
        elif span <= 0:
            out.append(SPARK_GLYPHS[len(SPARK_GLYPHS) // 2])
        else:
            idx = int((v - lo) / span * (len(SPARK_GLYPHS) - 1))
            out.append(SPARK_GLYPHS[idx])
    return "".join(out)


def render_plot(result: ExperimentResult, width: int = 64,
                height: int = 18, log_y: bool = False) -> str:
    """Render the experiment's series as an ASCII line chart."""
    if not result.series:
        raise ValueError("nothing to plot: experiment has no series")
    xs = [x for s in result.series for x in s.x]
    ys = [y for s in result.series for y in s.y]
    if not xs:
        raise ValueError("nothing to plot: series are empty")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if log_y:
        y_lo = max(y_lo, 1e-12)
        y_hi = max(y_hi, y_lo * 10)
    elif y_lo > 0:
        y_lo = 0.0  # anchor linear plots at zero like the paper's axes
    if y_hi <= y_lo:
        # Degenerate y-span (constant-zero or constant-negative
        # series): widen symmetrically so the data sits mid-canvas
        # between two distinct tick labels instead of collapsing onto
        # the bottom row with top == bottom tick.
        pad = abs(y_hi) if y_hi else 1.0
        y_lo, y_hi = y_lo - pad, y_hi + pad
    if x_hi <= x_lo:
        # Single-sample series: give the x-axis a span so the point
        # lands mid-chart and the tick labels differ.
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5

    canvas = [[" "] * width for _ in range(height)]

    def plot_point(x: float, y: float, glyph: str) -> None:
        col = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(y, y_lo, y_hi, height, log=log_y)
        canvas[row][col] = glyph

    for series, glyph in zip(result.series, SERIES_GLYPHS):
        pts = sorted(zip(series.x, series.y))
        # connect consecutive points with interpolated samples
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            c0 = _scale(x0, x_lo, x_hi, width)
            c1 = _scale(x1, x_lo, x_hi, width)
            for col in range(c0, c1 + 1):
                if c1 == c0:
                    y = y0
                else:
                    frac = (col - c0) / (c1 - c0)
                    if log_y and y0 > 0 and y1 > 0:
                        y = 10 ** (math.log10(y0)
                                   + frac * (math.log10(y1)
                                             - math.log10(y0)))
                    else:
                        y = y0 + frac * (y1 - y0)
                row = height - 1 - _scale(y, y_lo, y_hi, height,
                                          log=log_y)
                if canvas[row][col] == " ":
                    canvas[row][col] = glyph
        for x, y in pts:  # actual data points win over line segments
            plot_point(x, y, glyph)

    # assemble with axes
    y_top, y_bottom = _format_tick(y_hi), _format_tick(y_lo)
    margin = max(len(y_top), len(y_bottom)) + 1
    lines = [f"{result.experiment_id}: {result.title}"
             + ("   [log y]" if log_y else "")]
    for i, row in enumerate(canvas):
        if i == 0:
            label = y_top.rjust(margin)
        elif i == height - 1:
            label = y_bottom.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    x_lo_s, x_hi_s = _format_tick(x_lo), _format_tick(x_hi)
    pad = width - len(x_lo_s) - len(x_hi_s)
    lines.append(" " * (margin + 1) + x_lo_s + " " * max(1, pad)
                 + x_hi_s)
    lines.append(" " * (margin + 1)
                 + f"{result.xlabel}   (y: {result.ylabel})")
    legend = "   ".join(f"{glyph} {s.label}" for s, glyph
                        in zip(result.series, SERIES_GLYPHS))
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)
