"""``python -m repro.harness live``: run the stack over real sockets.

Brings up N localhost nodes (asyncio tasks with real TCP server
sockets), deploys dproc with the host-backed monitoring modules (they
read the real ``/proc``), ships an E-code filter from the first node
to the second through the control channel, lets wall-clock time pass,
and prints the delivered metrics plus the same telemetry/overhead
report the simulator harness produces.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.api import Scenario
from repro.dproc import ControlRequest, DMonConfig, FilterCommand, MetricId

#: Shipped from node[0] to node[1]: pass the load average through at
#: half value — visibly an E-code filter in the delivered numbers.
HALVING_FILTER = """{
    output[0] = input[LOADAVG];
    output[0].value = input[LOADAVG].value * 0.5;
}"""

#: The end-to-end delivery check of the acceptance criteria.
DELIVERED_METRICS = (("cpu", MetricId.LOADAVG),
                     ("mem", MetricId.FREEMEM),
                     ("net", MetricId.NET_USED))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness live",
        description="Run dproc/KECho live over asyncio localhost "
                    "sockets.")
    parser.add_argument("--nodes", type=int, default=4,
                        help="number of localhost nodes (default 4)")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="wall-clock seconds to run (default 10)")
    parser.add_argument("--seed", type=int, default=0,
                        help="node naming/port seed (default 0)")
    parser.add_argument("--poll", type=float, default=1.0,
                        help="d-mon poll interval in seconds "
                             "(default 1.0)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    parser.add_argument("--scrape", type=int, default=None,
                        metavar="PORT",
                        help="serve OpenMetrics /metrics and JSON "
                             "/healthz on this port while running "
                             "(0 picks a free port)")
    parser.add_argument("--workers", type=int, default=1,
                        help="node-pool worker processes; this "
                             "process keeps the first host slice "
                             "(default 1 = single process)")
    parser.add_argument("--watchers", type=int, default=None,
                        metavar="K",
                        help="only the first K hosts subscribe to "
                             "the monitoring channel (default: all "
                             "hosts; essential at --nodes 100+)")
    parser.add_argument("--batch", dest="batch", action="store_true",
                        default=False,
                        help="coalesce outgoing frames into BATCH "
                             "super-frames")
    parser.add_argument("--no-batch", dest="batch",
                        action="store_false",
                        help="disable frame batching (default)")
    parser.add_argument("--batch-bytes", type=int, default=None,
                        metavar="N",
                        help="batch size watermark in bytes "
                             "(implies --batch)")
    parser.add_argument("--batch-delay", type=float, default=None,
                        metavar="SEC",
                        help="batch time watermark in seconds "
                             "(implies --batch)")
    parser.add_argument("--uvloop", action="store_true",
                        help="install uvloop when available")
    args = parser.parse_args(argv)
    if args.nodes < 2:
        parser.error("--nodes must be >= 2 (the filter ships from "
                     "node[0] to node[1])")

    scenario = Scenario(nodes=args.nodes, seed=args.seed,
                        backend="live",
                        dmon=DMonConfig(poll_interval=args.poll))
    want_batch = (args.batch or args.batch_bytes is not None
                  or args.batch_delay is not None)
    if (args.workers > 1 or want_batch or args.watchers is not None
            or args.uvloop):
        from repro.live.transport import BatchConfig
        batch = None
        if want_batch:
            defaults = BatchConfig()
            batch = BatchConfig(
                max_bytes=args.batch_bytes
                if args.batch_bytes is not None else defaults.max_bytes,
                max_delay=args.batch_delay
                if args.batch_delay is not None else defaults.max_delay)
        scenario.with_node_pool(max(1, args.workers),
                                watchers=args.watchers, batch=batch,
                                uvloop=args.uvloop)
    if args.scrape is not None:
        scenario.with_observability(
            sample_interval=min(1.0, args.poll),
            scrape_port=args.scrape)

        def announce(sc: Scenario) -> None:
            # Runs before the server is up, but the port is only known
            # after bind — print it from a short timer instead.
            import asyncio

            async def later() -> None:
                await asyncio.sleep(0.1)
                print(f"scrape endpoint: {sc.scrape.url}/metrics",
                      flush=True)
            asyncio.get_event_loop().create_task(later())

        scenario.with_setup(announce)

    def deploy_filter(sc: Scenario) -> None:
        first, second = sc.nodes.names[:2]
        sc.dprocs[first].write(
            f"/proc/cluster/{second}/control",
            ControlRequest([FilterCommand(metric="cpu", filter_id="half",
                                          source=HALVING_FILTER)]))

    scenario.with_setup(deploy_filter)
    batching = "on" if want_batch else "off"
    print(f"live: {args.nodes} nodes over localhost TCP "
          f"({max(1, args.workers)} process(es), batching {batching}), "
          f"{args.duration:.0f}s wall, poll every {args.poll:g}s ...",
          flush=True)
    scenario.run(args.duration)

    first, second = scenario.nodes.names[:2]
    observer = scenario.dprocs[first]
    delivered = {}
    for label, metric in DELIVERED_METRICS:
        rows = {}
        # All mounted hosts, not just this process's slice — with a
        # node pool this proves cross-process delivery end to end.
        for host in observer.hosts():
            if host == first:
                continue
            value = observer.metric(host, metric)
            rows[host] = None if math.isnan(value) else value
        delivered[label] = rows
    deployed = scenario.dprocs[second].dmon.filters.deployed()
    stats = [
        {"id": f.filter_id, "scope": str(f.scope),
         "invocations": f.invocations, "outputs": f.total_outputs,
         "errors": f.errors}
        for f in deployed]
    overhead = scenario.overhead()
    wire = scenario.runtime.wire_stats()
    health = None
    if args.scrape is not None:
        health = scenario.obs.verdict()
        health["scrape_hits"] = dict(scenario.scrape.hits)

    if args.json:
        doc = {"delivered": delivered, "filters": stats,
               "overhead": overhead, "wire": wire}
        if health is not None:
            doc["health"] = health
        print(json.dumps(doc, indent=2))
        return _verdict(delivered)

    print(f"\ndelivered metrics as seen from {first}:")
    for label, rows in delivered.items():
        shown = list(rows.items())
        extra = ""
        if len(shown) > 8:
            extra = f"  ... ({len(shown) - 8} more)"
            shown = shown[:8]
        cells = "  ".join(
            f"{host}={'-' if v is None else f'{v:.4g}'}"
            for host, v in shown)
        print(f"  {label:>4}: {cells}{extra}")
    print(f"\nfilter on {second}: {stats}")
    frames = wire.get("net.tx_frames", 0.0)
    wire_frames = wire.get("net.tx_wire_frames", 0.0)
    if frames:
        saved = 100.0 * (1.0 - wire_frames / frames)
        print(f"\nwire: {frames:.0f} frames in "
              f"{wire_frames:.0f} wire writes "
              f"({saved:.1f}% coalesced; "
              f"{wire.get('net.tx_batches', 0.0):.0f} batches, "
              f"{wire.get('net.backpressure_pauses', 0.0):.0f} "
              f"backpressure pauses, "
              f"{wire.get('net.backpressure_drops', 0.0):.0f} drops)")
    print(f"\noverhead report ({args.duration:.0f}s wall, "
          f"{overhead['n_nodes']} nodes):")
    print(json.dumps(overhead, indent=2))
    if health is not None:
        verdict = "healthy" if health["healthy"] else "DEGRADED"
        print(f"\nhealth: {verdict} "
              f"({health['transitions']} transitions; scrape hits "
              f"{health['scrape_hits']})")
    return _verdict(delivered)


def _verdict(delivered: dict) -> int:
    missing = [label for label, rows in delivered.items()
               if any(v is None for v in rows.values())]
    if missing:
        print(f"FAIL: no {', '.join(missing)} events delivered",
              file=sys.stderr)
        return 1
    print("\nOK: CPU/MEM/NET events delivered end-to-end "
          "(cpu stream filtered by E-code)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
