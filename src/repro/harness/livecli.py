"""``python -m repro.harness live``: run the stack over real sockets.

Brings up N localhost nodes (asyncio tasks with real TCP server
sockets), deploys dproc with the host-backed monitoring modules (they
read the real ``/proc``), ships an E-code filter from the first node
to the second through the control channel, lets wall-clock time pass,
and prints the delivered metrics plus the same telemetry/overhead
report the simulator harness produces.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.api import Scenario
from repro.dproc import ControlRequest, DMonConfig, FilterCommand, MetricId

#: Shipped from node[0] to node[1]: pass the load average through at
#: half value — visibly an E-code filter in the delivered numbers.
HALVING_FILTER = """{
    output[0] = input[LOADAVG];
    output[0].value = input[LOADAVG].value * 0.5;
}"""

#: The end-to-end delivery check of the acceptance criteria.
DELIVERED_METRICS = (("cpu", MetricId.LOADAVG),
                     ("mem", MetricId.FREEMEM),
                     ("net", MetricId.NET_USED))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness live",
        description="Run dproc/KECho live over asyncio localhost "
                    "sockets.")
    parser.add_argument("--nodes", type=int, default=4,
                        help="number of localhost nodes (default 4)")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="wall-clock seconds to run (default 10)")
    parser.add_argument("--seed", type=int, default=0,
                        help="node naming/port seed (default 0)")
    parser.add_argument("--poll", type=float, default=1.0,
                        help="d-mon poll interval in seconds "
                             "(default 1.0)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    parser.add_argument("--scrape", type=int, default=None,
                        metavar="PORT",
                        help="serve OpenMetrics /metrics and JSON "
                             "/healthz on this port while running "
                             "(0 picks a free port)")
    args = parser.parse_args(argv)
    if args.nodes < 2:
        parser.error("--nodes must be >= 2 (the filter ships from "
                     "node[0] to node[1])")

    scenario = Scenario(nodes=args.nodes, seed=args.seed,
                        backend="live",
                        dmon=DMonConfig(poll_interval=args.poll))
    if args.scrape is not None:
        scenario.with_observability(
            sample_interval=min(1.0, args.poll),
            scrape_port=args.scrape)

        def announce(sc: Scenario) -> None:
            # Runs before the server is up, but the port is only known
            # after bind — print it from a short timer instead.
            import asyncio

            async def later() -> None:
                await asyncio.sleep(0.1)
                print(f"scrape endpoint: {sc.scrape.url}/metrics",
                      flush=True)
            asyncio.get_event_loop().create_task(later())

        scenario.with_setup(announce)

    def deploy_filter(sc: Scenario) -> None:
        first, second = sc.nodes.names[:2]
        sc.dprocs[first].write(
            f"/proc/cluster/{second}/control",
            ControlRequest([FilterCommand(metric="cpu", filter_id="half",
                                          source=HALVING_FILTER)]))

    scenario.with_setup(deploy_filter)
    print(f"live: {args.nodes} nodes over localhost TCP, "
          f"{args.duration:.0f}s wall, poll every {args.poll:g}s ...",
          flush=True)
    scenario.run(args.duration)

    first, second = scenario.nodes.names[:2]
    observer = scenario.dprocs[first]
    delivered = {}
    for label, metric in DELIVERED_METRICS:
        rows = {}
        for host in scenario.nodes.names:
            if host == first:
                continue
            value = observer.metric(host, metric)
            rows[host] = None if math.isnan(value) else value
        delivered[label] = rows
    deployed = scenario.dprocs[second].dmon.filters.deployed()
    stats = [
        {"id": f.filter_id, "scope": str(f.scope),
         "invocations": f.invocations, "outputs": f.total_outputs,
         "errors": f.errors}
        for f in deployed]
    overhead = scenario.overhead(args.duration)
    health = None
    if args.scrape is not None:
        health = scenario.obs.verdict()
        health["scrape_hits"] = dict(scenario.scrape.hits)

    if args.json:
        doc = {"delivered": delivered, "filters": stats,
               "overhead": overhead}
        if health is not None:
            doc["health"] = health
        print(json.dumps(doc, indent=2))
        return _verdict(delivered)

    print(f"\ndelivered metrics as seen from {first}:")
    width = max(len(h) for h in scenario.nodes.names)
    for label, rows in delivered.items():
        cells = "  ".join(
            f"{host}={'-' if v is None else f'{v:.4g}'}"
            for host, v in rows.items())
        print(f"  {label:>4}: {cells}")
    print(f"\nfilter on {second}: {stats}")
    print(f"\noverhead report ({args.duration:.0f}s wall, "
          f"{args.nodes} nodes):")
    print(json.dumps(overhead, indent=2))
    if health is not None:
        verdict = "healthy" if health["healthy"] else "DEGRADED"
        print(f"\nhealth: {verdict} "
              f"({health['transitions']} transitions; scrape hits "
              f"{health['scrape_hits']})")
    return _verdict(delivered)


def _verdict(delivered: dict) -> int:
    missing = [label for label, rows in delivered.items()
               if any(v is None for v in rows.values())]
    if missing:
        print(f"FAIL: no {', '.join(missing)} events delivered",
              file=sys.stderr)
        return 1
    print("\nOK: CPU/MEM/NET events delivered end-to-end "
          "(cpu stream filtered by E-code)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
