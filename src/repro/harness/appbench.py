"""SmartPointer experiments: Figures 9-11 of the paper.

Three client scenarios from §4.2:

* **CPU-loaded client** (Fig 9a/9b) — linpack threads are started on
  the client one at a time; compare no filter / static filter / dynamic
  filter using dproc's CPU information.
* **Network-perturbed client** (Fig 10) — 3 MB events over a link
  shared with an Iperf UDP flood of increasing rate; the stream runs at
  ~30 Mbps so latency blows up past ~70 Mbps of perturbation unless the
  server adapts.
* **Hybrid client** (Fig 11) — combined CPU and network perturbation;
  compare dynamic filters driven by cpu-only, network-only, and hybrid
  (cpu+net+disk) monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.api import Scenario
from repro.dproc import DMonConfig
from repro.harness.experiment import ExperimentResult
from repro.sim import Environment, NodeConfig
from repro.smartpointer import (AdaptationPolicy, ClientCapabilities,
                                DynamicAdaptation, NoAdaptation,
                                SmartPointerClient, SmartPointerServer,
                                StaticAdaptation, StreamProfile,
                                Transform)
from repro.units import KB, MB
from repro.workloads import IperfPerturb, Linpack

__all__ = [
    "SmartPointerRig", "cpu_experiment_policies",
    "fig9a_latency_timeline", "fig9b_event_rate",
    "fig10_latency_vs_network", "fig11_hybrid_monitors",
]

#: Profile of the CPU experiment stream: 200 KB frames at 5 events/s,
#: 2.4 Mflop to render a full frame on the 17.4 Mflops client.
CPU_PROFILE = StreamProfile(base_size=KB(200), base_client_cost=2.4,
                            server_preprocess_cost=2.0)
CPU_RATE = 5.0

#: Profile of the network experiment: "the server sends much larger
#: events (3 MBytes) ... the client does very little processing".
NET_PROFILE = StreamProfile(base_size=MB(3), base_client_cost=0.05,
                            server_preprocess_cost=2.0)
NET_RATE = 1.25   # 3 MB * 1.25/s = 30 Mbps, the paper's stream rate

#: Profile of the hybrid experiment: both large and compute-heavy.
HYBRID_PROFILE = StreamProfile(base_size=MB(3), base_client_cost=2.4,
                               server_preprocess_cost=2.0)
HYBRID_RATE = 1.25


@dataclass
class SmartPointerRig:
    """A wired SmartPointer testbed: server, client, dproc, perturbers."""

    env: Environment
    cluster: object
    server: SmartPointerServer
    client: SmartPointerClient
    client_node: object
    iperf_nodes: tuple

    @classmethod
    def build(cls, policy: AdaptationPolicy,
              profile: StreamProfile, rate: float,
              seed: int = 0,
              shared_segment: bool = False,
              client_logs_to_disk: bool = False,
              cpu_avg_period: float = 5.0,
              tracer=None) -> "SmartPointerRig":
        """Construct the two-node (plus iperf pair) experiment rig.

        The server is a quad-CPU machine; the client single-CPU (the
        paper's clients range down to handhelds).  With
        ``shared_segment`` all four hosts sit behind one 100 Mbps
        segment, reproducing "two different nodes sharing a link
        between the former two".

        ``tracer`` (a :class:`repro.tracing.TraceCollector`) records
        the rig's monitoring pipeline and adaptation decisions; each
        rig needs its own collector (trace ids embed node names, which
        repeat across rigs).
        """
        scenario = Scenario(
            nodes=4, seed=seed,
            names=["server", "client", "iperf1", "iperf2"],
            node_configs=[NodeConfig(n_cpus=4), NodeConfig(n_cpus=1),
                          NodeConfig(n_cpus=1), NodeConfig(n_cpus=1)],
            dmon=DMonConfig(poll_interval=1.0),
            monitor_hosts=["server", "client"])
        if shared_segment:
            def share_segment(sc: Scenario) -> None:
                seg = sc.nodes.fabric.add_segment("shared")
                for port in sc.nodes.fabric.hosts.values():
                    port.segment = seg
            scenario.with_cluster_setup(share_segment)
        if tracer is not None:
            scenario.with_tracing(tracer)
        scenario.build()
        env = scenario.env
        cluster = scenario.cluster
        dprocs = scenario.dprocs
        # Responsive CPU averaging, as an adaptive application would
        # configure via the control file.
        dprocs["server"].write("/proc/cluster/client/control",
                               "period cpu 1")
        for dp in dprocs.values():
            dp.dmon.modules["cpu"].configure("period", cpu_avg_period)
        client = SmartPointerClient(
            cluster["client"], logs_to_disk=client_logs_to_disk).start()
        server = SmartPointerServer(cluster["server"],
                                    dproc=dprocs["server"])
        server.add_client(
            "client", profile, rate=rate, policy=policy,
            caps=ClientCapabilities(
                mflops=cluster["client"].config.mflops_per_cpu,
                n_cpus=1,
                disk_rate=cluster["client"].config.disk_rate,
                logs_to_disk=client_logs_to_disk))
        return cls(env=env, cluster=cluster, server=server,
                   client=client, client_node=cluster["client"],
                   iperf_nodes=(cluster["iperf1"], cluster["iperf2"]))


def cpu_experiment_policies() -> dict[str, Callable[[], AdaptationPolicy]]:
    """The three §4.2 configurations for the CPU-loaded client."""
    return {
        "no filter": NoAdaptation,
        # The client-specified a-priori customization: halve the
        # client's rendering work by pre-rendering at the server.
        "static filter": lambda: StaticAdaptation(
            Transform(preprocess=0.5)),
        "dynamic filter": lambda: DynamicAdaptation(resources=("cpu",)),
    }


def fig9a_latency_timeline(duration: float = 2000.0,
                           thread_interval: float = 200.0,
                           sample_every: float = 20.0,
                           seed: int = 0,
                           tracers=None) -> ExperimentResult:
    """Figure 9(a): latency vs time as linpack threads start.

    ``tracers`` maps policy label -> TraceCollector (one collector per
    rig: the rigs reuse the same node names).  Missing labels run
    untraced; the plotted numbers are identical either way.
    """
    result = ExperimentResult(
        experiment_id="fig9a",
        title="SmartPointer latency under increasing CPU load",
        xlabel="time (s)", ylabel="propagation + processing time (s)",
        expectation="latency climbs with each linpack thread for "
                    "no/static filters (paper: up to ~70 s); stays "
                    "~flat for the dynamic filter")
    for label, factory in cpu_experiment_policies().items():
        rig = SmartPointerRig.build(factory(), CPU_PROFILE, CPU_RATE,
                                    seed=seed,
                                    tracer=(tracers or {}).get(label))
        env = rig.env

        def loader():
            while env.now + thread_interval <= duration:
                yield env.timeout(thread_interval)
                Linpack(rig.client_node).start()

        env.process(loader())
        xs, ys = [], []
        t = sample_every
        while t <= duration:
            env.run(until=t)
            window_start = t - sample_every
            try:
                ys.append(rig.client.latencies.mean(since=window_start))
                xs.append(t)
            except ValueError:
                pass  # no events processed in this window
            t += sample_every
        result.add_series(label, xs, ys)
    return result


def fig9b_event_rate(threads: Iterable[int] = range(0, 10),
                     settle: float = 40.0,
                     measure: float = 60.0,
                     seed: int = 0) -> ExperimentResult:
    """Figure 9(b): processed events/s vs number of linpack threads."""
    result = ExperimentResult(
        experiment_id="fig9b",
        title="SmartPointer event rate under CPU load",
        xlabel="linpack threads", ylabel="events/s",
        expectation="the dynamic filter holds the full ~5 events/s; "
                    "static degrades beyond a few threads; no filter "
                    "degrades worst")
    threads = list(threads)
    for label, factory in cpu_experiment_policies().items():
        ys = []
        for k in threads:
            rig = SmartPointerRig.build(factory(), CPU_PROFILE,
                                        CPU_RATE, seed=seed)
            rig.env.run(until=settle)
            for _ in range(k):
                Linpack(rig.client_node).start()
            rig.env.run(until=settle + measure)
            ys.append(rig.client.event_rate(window=measure / 2))
        result.add_series(label, threads, ys)
    return result


def network_experiment_policies() -> dict[
        str, Callable[[], AdaptationPolicy]]:
    """The three §4.2 configurations for the network experiment."""
    return {
        "no filter": NoAdaptation,
        "static filter": lambda: StaticAdaptation(
            Transform(downsample=0.8)),
        "dynamic filter": lambda: DynamicAdaptation(resources=("net",)),
    }


def fig10_latency_vs_network(perturbations: Iterable[float] =
                             range(0, 100, 10),
                             settle: float = 30.0,
                             measure: float = 60.0,
                             seed: int = 0) -> ExperimentResult:
    """Figure 10: latency vs Iperf perturbation on a shared link."""
    result = ExperimentResult(
        experiment_id="fig10",
        title="SmartPointer latency under network perturbation",
        xlabel="network perturbation (Mbps)", ylabel="latency (s)",
        expectation="flat until ~70 Mbps (the stream needs 30 of the "
                    "100 Mbps link), then drastic increase for "
                    "no/static filters; the dynamic filter stays low")
    perturbations = list(perturbations)
    for label, factory in network_experiment_policies().items():
        ys = []
        for rate in perturbations:
            rig = SmartPointerRig.build(factory(), NET_PROFILE,
                                        NET_RATE, seed=seed,
                                        shared_segment=True)
            if rate > 0:
                IperfPerturb(rig.iperf_nodes[0], rig.iperf_nodes[1],
                             rate_mbps=rate).start()
            rig.env.run(until=settle + measure)
            ys.append(rig.client.latencies.mean(since=settle))
        result.add_series(label, perturbations, ys)
    return result


def hybrid_monitor_policies() -> dict[
        str, Callable[[], AdaptationPolicy]]:
    """The Figure 11 comparison: which resources the filter monitors."""
    return {
        "cpu monitor": lambda: DynamicAdaptation(resources=("cpu",)),
        "network monitor": lambda: DynamicAdaptation(
            resources=("net",)),
        "hybrid monitor": lambda: DynamicAdaptation(
            resources=("cpu", "net", "disk")),
    }


def fig11_hybrid_monitors(steps: Iterable[int] = range(1, 9),
                          settle: float = 30.0,
                          measure: float = 60.0,
                          seed: int = 0) -> ExperimentResult:
    """Figure 11: combined perturbation, single- vs multi-resource.

    At step k the client runs k linpack threads and the shared link
    carries 10·k Mbps of Iperf UDP — the paper's x-axis
    "1 linpack, 10 Mbps" ... "8 linpack, 80 Mbps".
    """
    result = ExperimentResult(
        experiment_id="fig11",
        title="Latency with combined CPU+network perturbation",
        xlabel="perturbation step (k linpack, 10k Mbps)",
        ylabel="latency (s)",
        expectation="the hybrid (cpu+net+disk) monitor outperforms "
                    "both single-resource monitors; single-resource "
                    "adaptation aggravates the other bottleneck")
    steps = list(steps)
    for label, factory in hybrid_monitor_policies().items():
        ys = []
        for k in steps:
            rig = SmartPointerRig.build(factory(), HYBRID_PROFILE,
                                        HYBRID_RATE, seed=seed,
                                        shared_segment=True,
                                        client_logs_to_disk=True)
            for _ in range(k):
                Linpack(rig.client_node).start()
            IperfPerturb(rig.iperf_nodes[0], rig.iperf_nodes[1],
                         rate_mbps=10.0 * k).start()
            rig.env.run(until=settle + measure)
            ys.append(rig.client.latencies.mean(since=settle))
        result.add_series(label, steps, ys)
    return result
