"""``python -m repro.harness stream`` — the durable event stream CLI.

Four subcommands over the append-only channel log
(:mod:`repro.stream`):

* ``tail`` — run a scenario (or load a dumped stream) and print the
  newest entries per channel, Redis ``XRANGE`` style;
* ``stats`` — recompute per-channel delivery/latency summaries purely
  by replaying the log, and (for in-process runs) verify them against
  the live telemetry registry;
* ``reconcile`` — replay the stream against d-mon ground truth and
  report missing / duplicated / unexpected / stale entries; exits
  non-zero when the log and the cluster disagree;
* ``trim`` — apply the janitor's age/ack retention policy and report
  what it removed.

``--faults`` runs the chaos timeline (loss + partition + crash) so
every reported drop must be attributed to the fault plane; ``--dump``
persists the stream as JSONL segments and ``--load`` replays a prior
dump without running anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness stream",
        description="Durable event stream: tail, replay-stats, "
                    "reconcile, trim.")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--nodes", type=int, default=12,
                       help="cluster size (default 12)")
        p.add_argument("--seed", type=int, default=7,
                       help="simulation seed (default 7)")
        p.add_argument("--duration", type=float, default=20.0,
                       help="simulated seconds (default 20)")
        p.add_argument("--workers", type=int, default=1,
                       help="shard the simulation across N workers "
                            "(inline; default 1)")
        p.add_argument("--faults", action="store_true",
                       help="run the chaos timeline (loss, partition, "
                            "crash+reboot) instead of a clean run")
        p.add_argument("--load", metavar="DIR", default=None,
                       help="replay a dumped stream from DIR instead "
                            "of running a scenario")
        p.add_argument("--dump", metavar="DIR", default=None,
                       help="also persist the stream as JSONL "
                            "segments into DIR")
        p.add_argument("--json", action="store_true",
                       help="machine-readable JSON output")

    p_tail = sub.add_parser("tail", help="print the newest entries")
    common(p_tail)
    p_tail.add_argument("--count", type=int, default=10,
                        help="entries per channel (default 10)")

    p_stats = sub.add_parser(
        "stats", help="recompute summaries by replaying the log")
    common(p_stats)

    p_rec = sub.add_parser(
        "reconcile",
        help="replay the stream against d-mon ground truth")
    common(p_rec)

    p_trim = sub.add_parser(
        "trim", help="apply the janitor retention policy")
    common(p_trim)
    p_trim.add_argument("--max-age", type=float, default=None,
                        help="drop entries older than this many "
                             "seconds (default: ack-state only)")
    return parser


def _acquire(args):
    """Build (broker, scenario, report) per the common options.

    ``scenario`` is None when the stream was loaded from disk or came
    out of a chaos run (no live cluster to verify against);
    ``report`` is the :class:`~repro.harness.chaos.ChaosReport` when
    ``--faults`` ran.
    """
    if args.load is not None:
        from repro.stream import StreamBroker
        return StreamBroker.load(args.load), None, None
    if args.faults:
        from repro.harness.chaos import chaos_recovery
        report = chaos_recovery(nodes=args.nodes, seed=args.seed,
                                duration=args.duration,
                                workers=args.workers, stream=True)
        return report.stream_broker, None, report
    from repro.api import Scenario
    scenario = Scenario(nodes=args.nodes, seed=args.seed) \
        .with_stream()
    if args.workers > 1:
        scenario.with_workers(args.workers, mode="inline")
    scenario.run(args.duration)
    return scenario.stream, scenario, None


def _entry_line(entry) -> str:
    arrow = {"submit": "»", "deliver": "←", "drop": "✗"}.get(
        entry.kind, "?")
    route = entry.source
    if entry.dest:
        route += f" → {entry.dest}"
    if entry.kind == "deliver":
        # Light entries: records live on the paired submit.
        detail = f"latency {entry.latency * 1e3:.1f}ms"
    else:
        detail = entry.summary or f"{len(entry.records)} records"
    if entry.kind == "submit":
        detail += (f" to {len(entry.targets)} targets"
                   + (" + local" if entry.local else ""))
    if entry.fault:
        detail += f" [{entry.fault}]"
    return (f"  {entry.seq:>6} {entry.time:>9.3f}s {arrow} "
            f"{entry.kind:<7} {route:<24} {detail}")


def _cmd_tail(args, broker) -> int:
    if args.json:
        doc = {ch: [e.to_record() for e in
                    broker.stream(ch).tail(args.count)]
               for ch in broker.channels()}
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 0
    for channel in broker.channels():
        stream = broker.stream(channel)
        print(f"{channel}  ({len(stream.entries())} entries, "
              f"seq {stream.first_seq}..{stream.last_seq}, "
              f"{stream.trimmed} trimmed)")
        for entry in stream.tail(args.count):
            print(_entry_line(entry))
        print()
    return 0


def _cmd_stats(args, broker, scenario) -> int:
    from repro.stream import replay_stats, verify_stats
    stats = replay_stats(broker)
    errors: Optional[list] = None
    if scenario is not None:
        errors = verify_stats(broker, scenario.runtime.nodes)
    if args.json:
        doc = dict(stats)
        if errors is not None:
            doc["verification_errors"] = errors
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 1 if errors else 0
    for channel, summary in stats["channels"].items():
        print(f"{channel}:")
        for key, value in summary.items():
            if isinstance(value, dict):
                inner = ", ".join(f"{k}={v:.6g}"
                                  for k, v in value.items())
                print(f"  {key:<18} {inner}")
            else:
                print(f"  {key:<18} {value:g}")
    print(f"total entries      {stats['total_entries']}")
    if errors is not None:
        if errors:
            print(f"\nreplay DISAGREES with live telemetry "
                  f"({len(errors)} errors):")
            for err in errors[:20]:
                print(f"  - {err}")
            return 1
        print("\nreplayed summaries match the live telemetry "
              "registry exactly")
    return 0


def _cmd_reconcile(args, broker, scenario, report) -> int:
    from repro.stream import reconcile
    if report is not None and report.reconciliation is not None:
        result = report.reconciliation
    else:
        dprocs = scenario.dprocs if scenario is not None else None
        result = reconcile(broker, dprocs, until=args.duration)
    if args.json:
        print(json.dumps(result.to_json(), indent=1, sort_keys=True))
    else:
        print(result.render())
    return 0 if result.ok else 1


def _cmd_trim(args, broker) -> int:
    from repro.stream import Janitor
    before = broker.total_entries()
    janitor = Janitor(broker, max_age=args.max_age)
    trim = janitor.run(now=args.duration)
    doc = {"before": before, "after": broker.total_entries(),
           "removed": dict(trim.removed), "floor": dict(trim.floor)}
    if args.json:
        print(json.dumps(doc, indent=1, sort_keys=True))
        return 0
    print(f"trimmed {trim.total} of {before} entries "
          f"(max_age={args.max_age})")
    for channel in sorted(trim.removed):
        print(f"  {channel}: removed {trim.removed[channel]}, "
              f"floor seq {trim.floor[channel]}")
    return 0


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    broker, scenario, report = _acquire(args)
    if args.dump is not None:
        broker.dump(args.dump)
        print(f"[dumped {broker.total_entries()} entries to "
              f"{args.dump}]", file=sys.stderr)
    if args.command == "tail":
        return _cmd_tail(args, broker)
    if args.command == "stats":
        return _cmd_stats(args, broker, scenario)
    if args.command == "reconcile":
        return _cmd_reconcile(args, broker, scenario, report)
    return _cmd_trim(args, broker)


if __name__ == "__main__":
    sys.exit(main())
