"""``python -m repro.harness trace`` — end-to-end causal tracing demo.

Runs a seeded cluster with the full dproc deployment plus one
SmartPointer server/client pair under increasing CPU load, records
every monitoring event's causal trace, and reports:

* the critical-path latency breakdown (per-stage p50/p95/p99);
* one rendered span tree (module → d-mon → kecho → transport →
  delivery → update);
* the adaptation audit trail, linking each SmartPointer decision to
  the monitoring trace and threshold/filter evaluation that fed it.

``--export chrome`` additionally writes the Chrome trace-event JSON
(loadable in Perfetto / chrome://tracing).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.dproc import DMonConfig, deploy_dproc
from repro.harness.appbench import CPU_PROFILE, CPU_RATE
from repro.sim import Environment, build_cluster
from repro.smartpointer import (ClientCapabilities, DynamicAdaptation,
                                SmartPointerClient, SmartPointerServer)
from repro.tracing import (TraceCollector, adaptation_audit,
                           attach_tracer, latency_breakdown,
                           render_audit, render_breakdown, render_tree,
                           to_chrome_trace)
from repro.workloads import Linpack

__all__ = ["run_trace_scenario", "pick_showcase_trace", "main"]


def run_trace_scenario(nodes: int = 20, seed: int = 1,
                       duration: float = 30.0,
                       sample_rate: float = 1.0) -> TraceCollector:
    """Run the traced scenario and return its collector.

    Deterministic: the same (nodes, seed, duration, sample_rate)
    always yields a bit-identical collector snapshot.
    """
    env = Environment()
    cluster = build_cluster(env, nodes=nodes, seed=seed)
    names = list(cluster.names)
    server_name, client_name = names[0], names[1]
    dprocs = deploy_dproc(cluster, config=DMonConfig(poll_interval=1.0))
    collector = TraceCollector(seed=seed, sample_rate=sample_rate)
    attach_tracer(cluster, collector)
    # Customize the client's publication policy from the server — a
    # traced control message, and the rule the audit trail will name.
    dprocs[server_name].write(f"/proc/cluster/{client_name}/control",
                              "period cpu 1\nthreshold cpu change 5")
    client_node = cluster[client_name]
    SmartPointerClient(client_node).start()
    server = SmartPointerServer(cluster[server_name],
                                dproc=dprocs[server_name])
    server.add_client(
        client_name, CPU_PROFILE, rate=CPU_RATE,
        policy=DynamicAdaptation(resources=("cpu",)),
        caps=ClientCapabilities(
            mflops=client_node.config.mflops_per_cpu, n_cpus=1,
            disk_rate=client_node.config.disk_rate))

    def loader():
        # Two load steps force at least one mid-run adaptation.
        yield env.timeout(duration / 3)
        Linpack(client_node).start()
        yield env.timeout(duration / 3)
        Linpack(client_node).start()

    env.process(loader(), name="trace-loader")
    env.run(until=duration)
    return collector


def pick_showcase_trace(collector: TraceCollector,
                        audit: Optional[list] = None) -> Optional[str]:
    """Trace id to render: the one behind the latest resolved audit
    trigger when available, else the biggest end-to-end tree."""
    if audit is None:
        audit = adaptation_audit(collector)
    for entry in reversed(audit):
        for trigger in entry["triggers"]:
            if trigger.get("trace_id") in collector:
                return trigger["trace_id"]
    best, best_size = None, 0
    for tree in collector.trees():
        if tree.complete and len(tree.spans) > best_size:
            best, best_size = tree.trace_id, len(tree.spans)
    return best


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness trace",
        description="Causal-tracing demo: span trees, critical-path "
                    "latency breakdown, adaptation audit trail.")
    parser.add_argument("--nodes", type=int, default=20,
                        help="cluster size (default 20)")
    parser.add_argument("--seed", type=int, default=1,
                        help="simulation seed (default 1)")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="simulated seconds (default 30)")
    parser.add_argument("--sample", type=float, default=1.0,
                        help="head-sampling rate in [0, 1] (default 1)")
    parser.add_argument("--export", choices=("chrome", "text"),
                        default="text",
                        help="'chrome' also writes Perfetto-loadable "
                             "trace-event JSON")
    parser.add_argument("--out", default="TRACE_dproc.json",
                        help="output path for --export chrome")
    args = parser.parse_args(argv)
    if args.nodes < 2:
        parser.error("need at least 2 nodes (server + client)")

    collector = run_trace_scenario(
        nodes=args.nodes, seed=args.seed, duration=args.duration,
        sample_rate=args.sample)

    print(f"traced {len(collector)} traces, "
          f"{collector.spans_recorded} spans "
          f"(seed {collector.seed}, rate {collector.sample_rate:g})")
    print()
    print(render_breakdown(latency_breakdown(collector)))
    print()
    audit = adaptation_audit(collector)
    showcase = pick_showcase_trace(collector, audit)
    if showcase is not None:
        print(render_tree(collector.tree(showcase)))
        print()
    print(render_audit(audit, limit=8))
    if args.export == "chrome":
        document = to_chrome_trace(collector)
        with open(args.out, "w") as fh:
            json.dump(document, fh, indent=1)
        print(f"\n[wrote {len(document['traceEvents'])} trace events "
              f"to {args.out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
