"""cProfile wrapper with a compact top-N hotspot report.

Used by ``benchmarks/bench_sim_throughput.py --profile`` (and handy from
a REPL) to answer "where does the wall time go?" without leaving the
repo's tooling::

    from repro.harness.profile import profile_call

    result, report = profile_call(run_once, 256)
    print(report.render())

The report keeps both views that matter for a discrete-event simulator:
``cumulative`` (which subsystem owns the time) and ``tottime`` (which
individual function burns it).
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["HotspotReport", "profile_call"]


@dataclass
class HotspotReport:
    """Rendered profile of one profiled call."""

    #: Wall seconds measured by the profiler.
    wall_seconds: float
    #: Total function calls (including recursion).
    total_calls: int
    #: ``pstats`` table sorted by cumulative time.
    by_cumulative: str
    #: ``pstats`` table sorted by internal (self) time.
    by_tottime: str

    def render(self) -> str:
        return (
            f"profile: {self.wall_seconds:.3f}s wall, "
            f"{self.total_calls} calls\n"
            f"\n-- top functions by cumulative time --\n"
            f"{self.by_cumulative}\n"
            f"-- top functions by self time --\n"
            f"{self.by_tottime}"
        )


def _table(stats: pstats.Stats, sort: str, top: int) -> str:
    buffer = io.StringIO()
    stats.stream = buffer
    stats.sort_stats(sort).print_stats(top)
    # Drop pstats' preamble (ordered-by line and blank lines) down to
    # the column header so the tables stay compact.
    lines = buffer.getvalue().splitlines()
    start = 0
    for i, line in enumerate(lines):
        if line.lstrip().startswith("ncalls"):
            start = i
            break
    return "\n".join(line for line in lines[start:] if line.strip())


def profile_call(fn: Callable[..., Any], *args: Any, top: int = 20,
                 **kwargs: Any) -> tuple[Any, HotspotReport]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(fn's result, HotspotReport)``.  ``top`` bounds the number
    of rows in each hotspot table.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stats = pstats.Stats(profiler)
    report = HotspotReport(
        wall_seconds=stats.total_tt,
        total_calls=stats.total_calls,
        by_cumulative=_table(stats, "cumulative", top),
        by_tottime=_table(stats, "tottime", top),
    )
    return result, report
