"""Shared builder for the ``BENCH_*.json`` report files.

Every benchmark script used to assemble its own payload dict by hand;
the three shapes drifted (indent, key order, where the ``health`` SLO
section came from).  :class:`BenchReport` is the one place that knows
the envelope::

    {"benchmark": <name>, "schema_version": 2, <head fields...>,
     <results_key>: [records...], <tail fields...>}

and that every record carries a ``health`` section derived from its
overhead summary (see :func:`repro.obs.health_section_from_overhead`).
``benchmarks/bench_diff.py`` consumes this envelope: it matches records
by ``variant`` or by ``n_nodes``/``workers``, so any record added here
should carry one of those identities.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

__all__ = ["SCHEMA_VERSION", "BenchReport"]

#: Report format version: 2 added ``schema_version`` itself and the
#: per-record ``health`` SLO section.
SCHEMA_VERSION = 2

_UNSET = object()


class BenchReport:
    """Accumulates benchmark records and writes the JSON envelope.

    ``head`` keyword fields land between ``schema_version`` and the
    results list (e.g. ``sim_seconds``, ``host_cpus``, ``config``);
    fields added via :meth:`tail` land after it (e.g. the ablation
    ``reduction`` summary).  Key order is insertion order, so existing
    report shapes survive the refactor byte-for-byte.
    """

    def __init__(self, benchmark: str, *, results_key: str = "results",
                 schema_version: int = SCHEMA_VERSION,
                 **head: Any) -> None:
        self.benchmark = benchmark
        self.schema_version = schema_version
        self.results_key = results_key
        self._head = dict(head)
        self._tail: dict[str, Any] = {}
        self.records: list[dict] = []

    # -- building ---------------------------------------------------------

    def add(self, record: dict, *, overhead: Any = _UNSET) -> dict:
        """Append one record, attaching its ``health`` section.

        The SLO verdict is derived from ``overhead`` when given, else
        from the record's own ``"overhead"`` key; a record that already
        carries ``"health"`` is taken as-is.
        """
        if "health" not in record:
            from repro.obs import health_section_from_overhead
            source = overhead if overhead is not _UNSET \
                else record.get("overhead")
            record["health"] = health_section_from_overhead(source)
        self.records.append(record)
        return record

    def extend(self, records: list) -> None:
        for record in records:
            self.add(record)

    def tail(self, **fields: Any) -> None:
        """Add top-level fields placed after the results list."""
        self._tail.update(fields)

    # -- output -----------------------------------------------------------

    def payload(self) -> dict:
        doc: dict[str, Any] = {"benchmark": self.benchmark,
                               "schema_version": self.schema_version}
        doc.update(self._head)
        doc[self.results_key] = self.records
        doc.update(self._tail)
        return doc

    def write(self, path: Path, *, indent: Optional[int] = 2) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.payload(), indent=indent)
                        + "\n")
        return path
