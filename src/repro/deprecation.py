"""Warn-once deprecation helpers for the public API.

The PR that introduced the :class:`repro.api.Scenario` facade also
normalized kwarg names across the public constructors (``nodes`` is
canonical; the older ``n_nodes`` spelling remains as an alias).  Old
call paths keep working, but each deprecated spelling warns exactly
once per process so long-running harnesses aren't spammed.
"""

from __future__ import annotations

import warnings
from typing import Any, Optional

__all__ = ["deprecated_once", "rename_kwarg", "reset_deprecations"]

_warned: set[str] = set()


def deprecated_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` once per process."""
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def rename_kwarg(func_name: str, old_name: str, old_value: Any,
                 new_name: str, new_value: Optional[Any]) -> Any:
    """Resolve a renamed keyword argument.

    Returns the effective value; raises ``TypeError`` when both
    spellings are supplied, and warns (once) when the old one is used.
    """
    if old_value is None:
        return new_value
    if new_value is not None:
        raise TypeError(
            f"{func_name}() got both {new_name!r} and its deprecated "
            f"alias {old_name!r}")
    deprecated_once(
        f"{func_name}:{old_name}",
        f"{func_name}({old_name}=...) is deprecated; "
        f"use {new_name}=...",
        stacklevel=4)
    return old_value


def reset_deprecations() -> None:
    """Forget which warnings fired (test helper)."""
    _warned.clear()
