"""repro — reproduction of the dproc distributed monitoring system.

"Resource-Aware Stream Management with the Customizable dproc
Distributed Monitoring Mechanisms", Agarwala, Poellabauer, Kong,
Schwan, Wolf — HPDC 2003.

Subpackages
-----------
``repro.sim``
    Discrete-event cluster simulator (CPUs, memory, disks, switched
    Ethernet, transport) standing in for the paper's physical testbed.
``repro.ecode``
    The E-code dynamic filter language: lexer, parser, type checker and
    code generator (compile-at-the-executing-host).
``repro.kecho``
    KECho kernel-level publish/subscribe event channels with a
    user-level channel registry.
``repro.dproc``
    The paper's contribution: the d-mon coordinator, monitoring modules
    (CPU/MEM/DISK/NET/PMC), parameters, dynamic filters, and the
    ``/proc/cluster`` pseudo-filesystem interface.
``repro.smartpointer``
    The SmartPointer scientific-visualization stream application with
    resource-aware stream customization.
``repro.workloads``
    linpack / Iperf / ambient-activity load generators.
``repro.harness``
    One experiment per evaluation figure (4-11) plus ablations.
``repro.runtime``
    The backend-neutral runtime protocol (clock, transport, node
    group) plus the simulator adapter; ``repro.live`` is the asyncio
    socket backend behind the same protocol.
``repro.api``
    The :class:`~repro.api.Scenario` facade — one object that builds,
    wires and runs a whole monitored cluster on either backend.

Quick start::

    from repro import Scenario

    scenario = Scenario(nodes=8, seed=0).run(10.0)
    print(scenario.dprocs["alan"].read("/proc/cluster/maui/loadavg"))
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # facade (repro.api)
    "Scenario", "ScenarioError",
    # simulator backbone (repro.sim)
    "Environment", "NodeConfig", "build_cluster",
    # toolkit surface (repro.dproc)
    "Dproc", "deploy_dproc", "DMonConfig", "MetricId",
    "ControlRequest",
]

#: Lazy re-exports (PEP 562): importing ``repro`` stays cheap; the
#: heavy subpackages load on first attribute access.
_EXPORTS = {
    "Scenario": "repro.api",
    "ScenarioError": "repro.api",
    "Environment": "repro.sim",
    "NodeConfig": "repro.sim",
    "build_cluster": "repro.sim",
    "Dproc": "repro.dproc",
    "deploy_dproc": "repro.dproc",
    "DMonConfig": "repro.dproc",
    "MetricId": "repro.dproc",
    "ControlRequest": "repro.dproc",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}")
    import importlib
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
