"""repro — reproduction of the dproc distributed monitoring system.

"Resource-Aware Stream Management with the Customizable dproc
Distributed Monitoring Mechanisms", Agarwala, Poellabauer, Kong,
Schwan, Wolf — HPDC 2003.

Subpackages
-----------
``repro.sim``
    Discrete-event cluster simulator (CPUs, memory, disks, switched
    Ethernet, transport) standing in for the paper's physical testbed.
``repro.ecode``
    The E-code dynamic filter language: lexer, parser, type checker and
    code generator (compile-at-the-executing-host).
``repro.kecho``
    KECho kernel-level publish/subscribe event channels with a
    user-level channel registry.
``repro.dproc``
    The paper's contribution: the d-mon coordinator, monitoring modules
    (CPU/MEM/DISK/NET/PMC), parameters, dynamic filters, and the
    ``/proc/cluster`` pseudo-filesystem interface.
``repro.smartpointer``
    The SmartPointer scientific-visualization stream application with
    resource-aware stream customization.
``repro.workloads``
    linpack / Iperf / ambient-activity load generators.
``repro.harness``
    One experiment per evaluation figure (4-11) plus ablations.

Quick start::

    from repro.sim import Environment, build_cluster
    from repro.dproc import deploy_dproc

    env = Environment()
    cluster = build_cluster(env, n_nodes=8)
    dprocs = deploy_dproc(cluster)
    env.run(until=10.0)
    print(dprocs["alan"].read("/proc/cluster/maui/loadavg"))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
