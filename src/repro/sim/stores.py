"""Shared-state synchronisation primitives for the simulation kernel.

Provides the queueing abstractions used by the higher-level models:

* :class:`Store` — unbounded/bounded FIFO of Python objects (message
  queues, event receive queues).
* :class:`PriorityStore` — like :class:`Store` but ordered by priority.
* :class:`Container` — continuous level (memory pools, buffers).
* :class:`Resource` — counted resource with FIFO request queue (disk
  heads, locks).

All operations return events that processes ``yield`` on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Generic, Optional, TypeVar

from repro.errors import SimulationError
from repro.sim.core import Environment, SimEvent

__all__ = [
    "Store",
    "PriorityStore",
    "PriorityItem",
    "Container",
    "Resource",
]

T = TypeVar("T")


class _StorePut(SimEvent):
    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any) -> None:
        super().__init__(env)
        self.item = item


class _StoreGet(SimEvent):
    __slots__ = ()


class Store(Generic[T]):
    """FIFO store of items with optional capacity.

    ``put(item)`` returns an event that succeeds once the item has been
    accepted (immediately unless the store is full).  ``get()`` returns
    an event that succeeds with the oldest item once one is available.
    """

    def __init__(self, env: Environment,
                 capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[T] = []
        self._putters: list[_StorePut] = []
        self._getters: list[_StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: T) -> SimEvent:
        """Offer ``item``; the returned event succeeds on acceptance."""
        event = _StorePut(self.env, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> SimEvent:
        """Request the oldest item; event value is the item."""
        event = _StoreGet(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Move accepted puts into the buffer.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self._accept(put)
                put.succeed()
                progress = True
            # Serve waiting getters from the buffer.
            while self._getters and self.items:
                get = self._getters.pop(0)
                get.succeed(self._take())
                progress = True

    # Hook points for subclasses ------------------------------------------------

    def _accept(self, put: _StorePut) -> None:
        self.items.append(put.item)

    def _take(self) -> T:
        return self.items.pop(0)


@dataclass(order=True)
class PriorityItem:
    """Wrapper giving an arbitrary payload a sort priority.

    Lower ``priority`` values are retrieved first; ties break FIFO via an
    internal sequence number.
    """

    priority: float
    seq: int = field(compare=True, default=0)
    item: Any = field(compare=False, default=None)


class PriorityStore(Store[PriorityItem]):
    """Store retrieving the lowest-priority :class:`PriorityItem` first."""

    def __init__(self, env: Environment,
                 capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._seq = 0

    def put(self, item: PriorityItem | Any,
            priority: float | None = None) -> SimEvent:
        """Offer an item.

        Accepts either a ready-made :class:`PriorityItem` or any payload
        plus an explicit ``priority``.
        """
        if not isinstance(item, PriorityItem):
            if priority is None:
                raise SimulationError(
                    "PriorityStore.put needs a PriorityItem or a priority")
            item = PriorityItem(priority=priority, item=item)
        item.seq = self._seq
        self._seq += 1
        return super().put(item)

    def _accept(self, put: _StorePut) -> None:
        heapq.heappush(self.items, put.item)

    def _take(self) -> PriorityItem:
        return heapq.heappop(self.items)


class _ContainerPut(SimEvent):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float) -> None:
        super().__init__(env)
        self.amount = amount


class _ContainerGet(SimEvent):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float) -> None:
        super().__init__(env)
        self.amount = amount


class Container:
    """A continuous quantity with blocking put/get.

    Used for byte pools and token buckets.  ``get(x)`` blocks until the
    level is at least ``x``; ``put(x)`` blocks until there is headroom.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("initial level outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._putters: list[_ContainerPut] = []
        self._getters: list[_ContainerGet] = []

    @property
    def level(self) -> float:
        """Current stored quantity."""
        return self._level

    def put(self, amount: float) -> SimEvent:
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        event = _ContainerPut(self.env, amount)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> SimEvent:
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        if amount > self.capacity:
            raise SimulationError("request exceeds container capacity")
        event = _ContainerGet(self.env, amount)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and \
                    self._level + self._putters[0].amount <= self.capacity:
                put = self._putters.pop(0)
                self._level += put.amount
                put.succeed()
                progress = True
            if self._getters and self._getters[0].amount <= self._level:
                get = self._getters.pop(0)
                self._level -= get.amount
                get.succeed(get.amount)
                progress = True


class _ResourceRequest(SimEvent):
    """Request event for :class:`Resource`; usable as a context token."""

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """Counted resource with a FIFO wait queue.

    ``request()`` yields an event; once granted the caller holds one of
    ``capacity`` slots until it calls ``release(req)`` (or
    ``req.release()``).
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: list[_ResourceRequest] = []
        self.queue: list[_ResourceRequest] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> _ResourceRequest:
        event = _ResourceRequest(self.env, self)
        self.queue.append(event)
        self._grant()
        return event

    def release(self, request: _ResourceRequest) -> None:
        """Return a granted slot (or cancel a queued request)."""
        if request in self.users:
            self.users.remove(request)
            self._grant()
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                raise SimulationError("release of a request never made")

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            req = self.queue.pop(0)
            self.users.append(req)
            req.succeed(req)
