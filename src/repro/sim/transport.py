"""Message transport over the fabric: connections, delivery, statistics.

This is the layer NET_MON observes.  A :class:`Connection` is a
unidirectional logical stream between two hosts carrying discrete
messages.  TCP-like connections are reliable (elastic flows; congestion
shows up as *retransmissions* and stretched delivery); UDP-like
connections sample *loss* from path congestion and drop messages.

Each connection keeps the statistics the paper lists for NET_MON:
round-trip times, used bandwidth (per connection and per node), TCP
retransmission counts, UDP loss counts, and end-to-end delays.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import TransportError
from repro.sim.core import Environment, SimEvent
from repro.sim.network import Fabric
from repro.sim.trace import CounterTrace, TimeSeries
from repro.telemetry import TelemetryRegistry
from repro.tracing.collector import NULL_TRACER

__all__ = ["Message", "Connection", "NetStack", "Protocol"]

_msg_ids = itertools.count(1)


class Protocol:
    """Transport protocol names."""

    TCP = "tcp"
    UDP = "udp"


@dataclass
class Message:
    """One application message in flight."""

    mid: int
    src: str
    dst: str
    tag: str
    payload: Any
    size: float
    sent_at: float
    proto: str = Protocol.TCP
    delivered_at: Optional[float] = None
    retransmissions: int = 0
    lost: bool = False
    #: Set once an injected stall has been applied to this delivery.
    stalled: bool = False
    #: Open causal-trace hop span (None when the payload is untraced).
    span: Any = None


class Connection:
    """A unidirectional logical message stream between two hosts."""

    def __init__(self, stack: "NetStack", dst: str, tag: str,
                 proto: str = Protocol.TCP) -> None:
        if proto not in (Protocol.TCP, Protocol.UDP):
            raise TransportError(f"unknown protocol {proto!r}")
        self.stack = stack
        self.src = stack.host
        self.dst = dst
        self.tag = tag
        self.proto = proto
        self.closed = False
        # statistics ----------------------------------------------------
        self.bytes_sent = CounterTrace(f"{self.src}->{dst}:bytes")
        self.bytes_delivered = CounterTrace(f"{self.src}->{dst}:delivered")
        self.retransmissions = CounterTrace(f"{self.src}->{dst}:retx")
        self.losses = CounterTrace(f"{self.src}->{dst}:loss")
        self.delays = TimeSeries(f"{self.src}->{dst}:delay")
        self.rtt = TimeSeries(f"{self.src}->{dst}:rtt")

    def send(self, payload: Any, size: float) -> SimEvent:
        """Send one message; event succeeds with the delivered Message.

        For UDP, a dropped message *fails* the event with
        :class:`TransportError` after the would-be delivery time.
        """
        if self.closed:
            raise TransportError("send on closed connection")
        return self.stack._send(self, payload, size)

    def used_bandwidth(self, window: float = 1.0) -> float:
        """Recent sending rate in bytes/s."""
        return self.bytes_sent.rate(self.stack.env.now, window)

    def mean_rtt(self, since: float = 0.0) -> float:
        """Mean observed round-trip time (seconds)."""
        return self.rtt.mean(since)

    def close(self) -> None:
        self.closed = True


class NetStack:
    """Per-node transport endpoint.

    Handlers are registered per *tag* (a logical port).  Incoming
    messages charge the node's kernel receive cost before dispatch —
    this is how network activity perturbs co-located computation.
    """

    def __init__(self, env: Environment, host: str, fabric: Fabric,
                 rng: np.random.Generator,
                 kernel_charge: Callable[[float], Any] | None = None,
                 receive_cost: Callable[[float], float] | None = None,
                 telemetry: TelemetryRegistry | None = None) -> None:
        self.env = env
        self.host = host
        self.fabric = fabric
        self.rng = rng
        # Self-telemetry (hot path: instruments bound once here).
        # Explicit None check: a registry with no instruments yet has
        # len() == 0 and would read as falsy.
        if telemetry is None:
            telemetry = TelemetryRegistry(enabled=False)
        self._t_in_flight = telemetry.gauge("net.in_flight")
        self._t_delivered = telemetry.counter("net.delivered")
        self._t_drops_fault = telemetry.counter("net.drops_fault")
        self._t_drops_congestion = telemetry.counter(
            "net.drops_congestion")
        self._t_retx = telemetry.counter("net.retransmissions")
        #: Charges ``seconds`` of kernel CPU time (set by Node).
        self.kernel_charge = kernel_charge or (lambda seconds: None)
        #: Maps message size -> kernel seconds for the receive path.
        self.receive_cost = receive_cost or (lambda size: 0.0)
        #: Causal-trace collector; updated by ``attach_tracer`` (the
        #: stack exists before any collector does).
        self.tracer = NULL_TRACER
        self.handlers: dict[str, Callable[[Message], None]] = {}
        self.connections: list[Connection] = []
        self.bytes_in = CounterTrace(f"{host}:rx-bytes")
        self.bytes_out = CounterTrace(f"{host}:tx-bytes")
        #: Other stacks, keyed by host name; filled in by the cluster.
        self.peers: dict[str, "NetStack"] = {}
        #: Off-fabric route provider (a shard conduit).  When set,
        #: ``connect`` falls through to it for hosts the local fabric
        #: does not know — how cross-shard destinations stay reachable
        #: without the fabric modelling them.
        self.router = None
        #: Durable-stream drop recorder, called as
        #: ``drop_hook(payload, dst, reason, now)`` whenever this
        #: stack kills a message (fault plane, injected loss,
        #: congestion).  Passive observation only — set by
        #: ``repro.stream.attach_stream``, None disables it.
        self.drop_hook = None

    # -- wiring ---------------------------------------------------------------

    def register_peer(self, stack: "NetStack") -> None:
        self.peers[stack.host] = stack

    def bind(self, tag: str, handler: Callable[[Message], None]) -> None:
        """Register the receive handler for a message tag."""
        if tag in self.handlers:
            raise TransportError(f"tag {tag!r} already bound on {self.host}")
        self.handlers[tag] = handler

    def unbind(self, tag: str) -> None:
        self.handlers.pop(tag, None)

    def connect(self, dst: str, tag: str,
                proto: str = Protocol.TCP) -> Connection:
        """Open a logical connection to ``dst``."""
        if dst not in self.fabric.hosts:
            router = self.router
            if router is not None and router.routes(dst):
                return router.connect(self, dst, tag, proto)
            raise TransportError(f"unknown destination host {dst!r}")
        conn = Connection(self, dst, tag, proto)
        self.connections.append(conn)
        return conn

    def batch(self):
        """Group several sends into one fabric bandwidth reallocation."""
        return self.fabric.batch()

    # -- data path -----------------------------------------------------------

    def _send(self, conn: Connection, payload: Any,
              size: float) -> SimEvent:
        if size <= 0:
            raise TransportError("message size must be positive")
        now = self.env.now
        msg = Message(mid=next(_msg_ids), src=self.host, dst=conn.dst,
                      tag=conn.tag, payload=payload, size=float(size),
                      sent_at=now, proto=conn.proto)
        # Open the causal hop span before any fault check, so dropped
        # messages leave an annotated failed span behind (duck-typed:
        # any payload carrying a ``trace`` context gets a hop span).
        trace = getattr(payload, "trace", None)
        if trace is not None:
            msg.span = self.tracer.start_span(
                trace, name=f"hop:{self.host}->{conn.dst}",
                stage="transport", node=self.host, start=now,
                dst=conn.dst, proto=conn.proto, size=float(size))
        conn.bytes_sent.add(now, size)
        self.bytes_out.add(now, size)

        # Injected faults are checked before protocol effects: a message
        # into a partition or onto a lossy link never reaches the wire.
        faults = self.fabric.faults
        if faults is not None:
            if faults.blocked(self.host, conn.dst):
                self._t_drops_fault.inc()
                return self._drop(msg, conn, "path blocked",
                                  fault=faults.blocked_reason(
                                      self.host, conn.dst))
            p = faults.loss_probability(
                self.host, conn.dst, self.fabric.path(self.host, conn.dst))
            # Draw from the sender's seeded stream only when a loss rule
            # applies, so fault-free runs stay bit-identical.
            if p > 0.0 and self.rng.random() < p:
                self._t_drops_fault.inc()
                return self._drop(msg, conn, "injected loss")

        congestion = self._path_congestion(conn.dst)
        if conn.proto == Protocol.UDP:
            p_loss = min(0.9, max(0.0, congestion - 0.9) * 5.0)
            if self.rng.random() < p_loss:
                self._t_drops_congestion.inc()
                return self._drop(msg, conn, "congestion")
        else:
            # TCP: congestion manifests as retransmissions once the
            # path nears saturation.
            mean_retx = max(0.0, congestion - 0.9) * 3.0
            msg.retransmissions = int(self.rng.poisson(mean_retx))
            if msg.retransmissions:
                conn.retransmissions.add(now, msg.retransmissions)
                self._t_retx.inc(msg.retransmissions)
                if msg.span is not None:
                    msg.span.annotate(
                        retransmissions=msg.retransmissions)

        effective = size * (1 + msg.retransmissions)
        handle = self.fabric.transfer(self.host, conn.dst, effective,
                                      name=f"{conn.tag}:{msg.mid}")
        self._t_in_flight.adjust(1)
        done = self.env.event()
        handle.done.add_callback(
            lambda _ev, m=msg, c=conn, d=done: self._delivered(m, c, d))
        return done

    def send_many(self, conns: list, payload: Any,
                  size: float) -> list[SimEvent]:
        """Fused fan-out: one payload over several connections.

        Operation-for-operation equivalent to calling
        ``conn.send(payload, size)`` on each connection in order —
        same message ids, RNG draw sequence, statistics arithmetic and
        congestion probes — with the per-call dispatch and attribute
        lookups hoisted out of the loop.  This is the KECho submit hot
        path: at n=64 every poll fans one event out to 63 peers.
        """
        if size <= 0:
            raise TransportError("message size must be positive")
        env = self.env
        now = env.now
        size = float(size)
        host = self.host
        fabric = self.fabric
        transfer = fabric.transfer
        path = fabric.path
        faults = fabric.faults
        rng_random = self.rng.random
        rng_poisson = self.rng.poisson
        trace = getattr(payload, "trace", None)
        tracer = self.tracer
        bytes_out_add = self.bytes_out.add
        drops_fault_inc = self._t_drops_fault.inc
        drops_congestion_inc = self._t_drops_congestion.inc
        retx_inc = self._t_retx.inc
        in_flight_adjust = self._t_in_flight.adjust
        congestion_of = self._path_congestion
        results: list[SimEvent] = []
        append = results.append
        for conn in conns:
            if not isinstance(conn, Connection):
                # Routed (cross-shard conduit) connection: it owns its
                # own delivery semantics; keep it in fan-out order so
                # the per-target RNG draw sequence stays deterministic.
                append(conn.send(payload, size))
                continue
            if conn.closed:
                raise TransportError("send on closed connection")
            dst = conn.dst
            msg = Message(mid=next(_msg_ids), src=host, dst=dst,
                          tag=conn.tag, payload=payload, size=size,
                          sent_at=now, proto=conn.proto)
            if trace is not None:
                msg.span = tracer.start_span(
                    trace, name=f"hop:{host}->{dst}",
                    stage="transport", node=host, start=now,
                    dst=dst, proto=conn.proto, size=size)
            conn.bytes_sent.add(now, size)
            bytes_out_add(now, size)
            if faults is not None:
                if faults.blocked(host, dst):
                    drops_fault_inc()
                    append(self._drop(
                        msg, conn, "path blocked",
                        fault=faults.blocked_reason(host, dst)))
                    continue
                p = faults.loss_probability(host, dst, path(host, dst))
                if p > 0.0 and rng_random() < p:
                    drops_fault_inc()
                    append(self._drop(msg, conn, "injected loss"))
                    continue
            congestion = congestion_of(dst)
            if conn.proto == Protocol.UDP:
                p_loss = min(0.9, max(0.0, congestion - 0.9) * 5.0)
                if rng_random() < p_loss:
                    drops_congestion_inc()
                    append(self._drop(msg, conn, "congestion"))
                    continue
            else:
                mean_retx = max(0.0, congestion - 0.9) * 3.0
                msg.retransmissions = int(rng_poisson(mean_retx))
                if msg.retransmissions:
                    conn.retransmissions.add(now, msg.retransmissions)
                    retx_inc(msg.retransmissions)
                    if msg.span is not None:
                        msg.span.annotate(
                            retransmissions=msg.retransmissions)
            effective = size * (1 + msg.retransmissions)
            handle = transfer(host, dst, effective,
                              name=f"{conn.tag}:{msg.mid}")
            in_flight_adjust(1)
            done = env.event()
            handle.done.add_callback(
                lambda _ev, m=msg, c=conn, d=done:
                self._delivered(m, c, d))
            append(done)
        return results

    def _drop(self, msg: Message, conn: Connection,
              reason: str, fault: str | None = None) -> SimEvent:
        """Fail a message's delivery event (pre-defused: a dropped
        message that nobody awaits must not crash the simulation)."""
        now = self.env.now
        msg.lost = True
        if msg.span is not None:
            # Trace-aware drop accounting: the hop span survives as an
            # annotated failure naming the fault kind.
            msg.span.finish(now, status="dropped",
                            fault=fault or reason)
        if self.drop_hook is not None:
            self.drop_hook(msg.payload, msg.dst, fault or reason, now)
        conn.losses.add(now, 1.0)
        done = self.env.event()
        fail = self.env.timeout(0.0)
        fail.add_callback(
            lambda _ev: (done.fail(TransportError(
                f"message {msg.mid} {msg.src}->{msg.dst} lost "
                f"({reason})")),
                setattr(done, "defused", True)))
        return done

    def _delivered(self, msg: Message, conn: Connection,
                   done: SimEvent) -> None:
        # Faults are re-checked on arrival: a partition or crash that
        # landed while the bytes were in flight still kills them.
        faults = self.fabric.faults
        if faults is not None:
            stall = faults.extra_delay(msg.src, msg.dst)
            if stall > 0.0 and not msg.stalled:
                msg.stalled = True
                if msg.span is not None:
                    msg.span.annotate(stalled_seconds=stall)
                timer = self.env.timeout(stall)
                timer.add_callback(
                    lambda _ev: self._delivered(msg, conn, done))
                return
            if faults.blocked(msg.src, msg.dst):
                msg.lost = True
                fault = faults.blocked_reason(msg.src, msg.dst)
                if msg.span is not None:
                    msg.span.finish(
                        self.env.now, status="dropped",
                        fault=fault, in_flight=True)
                if self.drop_hook is not None:
                    self.drop_hook(msg.payload, msg.dst,
                                   fault or "path blocked",
                                   self.env.now)
                conn.losses.add(self.env.now, 1.0)
                self._t_in_flight.adjust(-1)
                self._t_drops_fault.inc()
                done.fail(TransportError(
                    f"message {msg.mid} {msg.src}->{msg.dst} lost in "
                    f"flight"))
                done.defused = True
                return
        now = self.env.now
        self._t_in_flight.adjust(-1)
        self._t_delivered.inc()
        msg.delivered_at = now
        if msg.span is not None:
            msg.span.finish(now)
        delay = now - msg.sent_at
        conn.bytes_delivered.add(now, msg.size)
        conn.delays.record(now, delay)
        path_lat = sum(l.latency for l in
                       self.fabric.path(msg.src, msg.dst))
        conn.rtt.record(now, 2 * path_lat + self.fabric.switch_latency)
        peer = self.peers.get(msg.dst)
        if peer is None:
            raise TransportError(
                f"no stack registered for host {msg.dst!r}")
        peer._receive(msg)
        done.succeed(msg)

    def _receive(self, msg: Message) -> None:
        now = self.env.now
        self.bytes_in.add(now, msg.size)
        cost = self.receive_cost(msg.size)
        if cost > 0:
            self.kernel_charge(cost)
        handler = self.handlers.get(msg.tag)
        if handler is not None:
            handler(msg)

    # -- observations ---------------------------------------------------------

    def _path_congestion(self, dst: str) -> float:
        """Max fractional utilisation along the path to ``dst`` (0..1+)."""
        fabric = self.fabric
        fabric._settle()
        worst = 0.0
        for link in fabric.path(self.host, dst):
            c = fabric.link_congestion(link)
            if c > worst:
                worst = c
        return worst

    def total_bandwidth(self, window: float = 1.0) -> float:
        """Total outbound rate across all connections (bytes/s)."""
        return self.bytes_out.rate(self.env.now, window)

    def total_receive_bandwidth(self, window: float = 1.0) -> float:
        """Total inbound rate (bytes/s)."""
        return self.bytes_in.rate(self.env.now, window)
