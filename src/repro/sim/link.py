"""Link and flow primitives for the fluid network model.

The network is modelled with *fluid flows* over capacitated links:

* A :class:`Link` is a unidirectional capacity (bytes/s) with a
  propagation latency and a carried-bytes counter.
* A :class:`Flow` is either **fixed-rate** (open-loop UDP-style traffic
  that does not back off; it is scaled down only when its links cannot
  carry the offered load, the excess being *lost*) or **elastic**
  (a discrete reliable transfer of ``remaining`` bytes that takes a
  max-min fair share of whatever the fixed flows leave over).

The allocator in :func:`allocate_rates` implements the classic two-stage
scheme: proportional scaling for fixed flows, then progressive filling
(water-filling) for elastic flows on the residual capacities.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional, Sequence

from repro.errors import NetworkError
from repro.sim.core import SimEvent
from repro.sim.trace import CounterTrace

__all__ = ["Link", "Flow", "FlowKind", "allocate_rates", "settle_flows",
           "ELASTIC_FLOOR_FRACTION"]

_link_ids = itertools.count(1)
_flow_ids = itertools.count(1)

#: Minimum share of a link's capacity an elastic flow can be squeezed to.
#: Models the trickle a reliable stream still achieves under open-loop
#: overload (header compression, retries); prevents infinite stalls.
ELASTIC_FLOOR_FRACTION = 0.01


class FlowKind(Enum):
    """Traffic classes distinguished by the allocator."""

    FIXED = "fixed"       # open-loop, rate-limited at the source (UDP)
    ELASTIC = "elastic"   # closed-loop reliable transfer (TCP-like)


class Link:
    """One direction of a physical link (or a shared segment)."""

    def __init__(self, name: str, capacity: float,
                 latency: float = 0.0) -> None:
        if capacity <= 0:
            raise NetworkError(f"link {name!r} needs positive capacity")
        if latency < 0:
            raise NetworkError(f"link {name!r} latency cannot be negative")
        self.lid = next(_link_ids)
        self.name = name
        self.capacity = float(capacity)   # bytes per second
        self.latency = float(latency)     # seconds, one-way
        self.carried = CounterTrace(f"link:{name}:bytes")
        #: Bytes offered by fixed flows but not carried (dropped).
        self.dropped = CounterTrace(f"link:{name}:dropped")

    def utilization(self, now: float, window: float) -> float:
        """Recent carried load as a fraction of capacity."""
        return self.carried.rate(now, window) / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.capacity * 8 / 1e6:.0f}Mbps>"


@dataclass
class Flow:
    """A unidirectional traffic flow across a path of links."""

    path: tuple[Link, ...]
    kind: FlowKind
    #: Offered rate for FIXED flows (bytes/s); ignored for ELASTIC.
    demand: float = 0.0
    #: Bytes still to move for ELASTIC flows; ignored for FIXED.
    remaining: float = 0.0
    name: str = "flow"
    #: Completion event (ELASTIC only).
    done: Optional[SimEvent] = None
    #: Current allocated rate (bytes/s), set by the allocator.
    rate: float = field(default=0.0, init=False)
    fid: int = field(default_factory=lambda: next(_flow_ids), init=False)
    #: Cumulative bytes actually carried.
    carried_bytes: float = field(default=0.0, init=False)
    #: Cumulative bytes lost (FIXED flows under overload).
    lost_bytes: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if not self.path:
            raise NetworkError(f"flow {self.name!r} has an empty path")
        if self.kind is FlowKind.FIXED and self.demand <= 0:
            raise NetworkError("fixed flow needs a positive demand")
        if self.kind is FlowKind.ELASTIC and self.remaining <= 0:
            raise NetworkError("elastic flow needs positive bytes")

    @property
    def loss_fraction(self) -> float:
        """Fraction of the offered fixed-rate load currently being lost."""
        if self.kind is not FlowKind.FIXED or self.demand <= 0:
            return 0.0
        return max(0.0, 1.0 - self.rate / self.demand)

    @property
    def path_latency(self) -> float:
        """Sum of one-way propagation latencies along the path."""
        return sum(link.latency for link in self.path)


def allocate_rates(flows: Iterable[Flow]) -> None:
    """Assign ``flow.rate`` for every flow, in place.

    Stage 1 — fixed flows: each starts at its demand and is repeatedly
    scaled down on every oversubscribed link (a few iterations converge
    for practical topologies; fixed flows never use more than demand).

    Stage 2 — elastic flows: progressive filling of the residual
    capacity.  Repeatedly find the bottleneck link (smallest equal
    share), freeze its flows at that share, and continue with the rest.
    Every elastic flow additionally receives at least
    ``ELASTIC_FLOOR_FRACTION`` of its tightest link's capacity.
    """
    flows = list(flows)
    fixed = [f for f in flows if f.kind is FlowKind.FIXED]
    elastic = [f for f in flows if f.kind is FlowKind.ELASTIC]

    # -- stage 1: fixed flows ------------------------------------------------
    for f in fixed:
        f.rate = f.demand
    for _ in range(64):  # iterative proportional scaling
        load: dict[int, float] = {}
        by_link: dict[int, list[Flow]] = {}
        caps: dict[int, float] = {}
        for f in fixed:
            for link in f.path:
                load[link.lid] = load.get(link.lid, 0.0) + f.rate
                by_link.setdefault(link.lid, []).append(f)
                caps[link.lid] = link.capacity
        # Scale the single most-oversubscribed link, then re-derive the
        # load map — scaling several links in one pass would shrink a
        # flow once per link it crosses instead of once overall.
        worst_lid, worst_ratio = None, 1.0 + 1e-12
        for lid, total in load.items():
            ratio = total / caps[lid]
            if ratio > worst_ratio:
                worst_lid, worst_ratio = lid, ratio
        if worst_lid is None:
            break
        for f in by_link[worst_lid]:
            f.rate /= worst_ratio

    # -- stage 2: elastic flows on the residual -----------------------------
    residual: dict[int, float] = {}
    count: dict[int, int] = {}
    links: dict[int, Link] = {}
    for f in flows:
        for link in f.path:
            links[link.lid] = link
            residual.setdefault(link.lid, link.capacity)
            count.setdefault(link.lid, 0)
    for f in fixed:
        for link in f.path:
            residual[link.lid] = max(0.0, residual[link.lid] - f.rate)
    for f in elastic:
        for link in f.path:
            count[link.lid] += 1

    active = set(f.fid for f in elastic)
    by_fid = {f.fid: f for f in elastic}
    while active:
        # Equal share offered by each link to its remaining elastic flows.
        shares = {lid: residual[lid] / count[lid]
                  for lid in residual if count.get(lid, 0) > 0}
        if not shares:
            break
        bottleneck = min(shares, key=lambda lid: shares[lid])
        share = shares[bottleneck]
        frozen = [fid for fid in active
                  if any(l.lid == bottleneck for l in by_fid[fid].path)]
        if not frozen:  # pragma: no cover - defensive
            break
        for fid in frozen:
            flow = by_fid[fid]
            floor = ELASTIC_FLOOR_FRACTION * min(
                l.capacity for l in flow.path)
            flow.rate = max(share, floor)
            active.discard(fid)
            for link in flow.path:
                residual[link.lid] = max(
                    0.0, residual[link.lid] - share)
                count[link.lid] -= 1


def settle_flows(flows: Sequence[Flow], dt: float) -> None:
    """Advance byte accounting for ``dt`` seconds at current rates."""
    if dt < 0:
        raise NetworkError("cannot settle a negative interval")
    if dt == 0:
        return
    for f in flows:
        moved = f.rate * dt
        if f.kind is FlowKind.ELASTIC:
            moved = min(moved, f.remaining)
            f.remaining -= moved
        else:
            f.lost_bytes += max(0.0, (f.demand - f.rate)) * dt
        f.carried_bytes += moved
