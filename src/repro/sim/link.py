"""Link and flow primitives for the fluid network model.

The network is modelled with *fluid flows* over capacitated links:

* A :class:`Link` is a unidirectional capacity (bytes/s) with a
  propagation latency and a carried-bytes counter.
* A :class:`Flow` is either **fixed-rate** (open-loop UDP-style traffic
  that does not back off; it is scaled down only when its links cannot
  carry the offered load, the excess being *lost*) or **elastic**
  (a discrete reliable transfer of ``remaining`` bytes that takes a
  max-min fair share of whatever the fixed flows leave over).

The allocator in :func:`allocate_rates` implements the classic two-stage
scheme: proportional scaling for fixed flows, then progressive filling
(water-filling) for elastic flows on the residual capacities.

Scalability: the allocator runs on every flow add/remove/completion, so
its cost dominates large-cluster simulations.  :func:`allocate_rates`
therefore works from a :class:`FlowIndex` — per-link flow maps that a
caller (the :class:`~repro.sim.network.Fabric`) maintains incrementally
across calls instead of rebuilding them from scratch on each
reallocation.  The pre-optimisation implementation is retained verbatim
as :func:`allocate_rates_reference` and the test suite asserts the two
agree on randomized topologies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional, Sequence

from repro.errors import NetworkError
from repro.sim.core import SimEvent
from repro.sim.trace import CounterTrace

__all__ = ["Link", "Flow", "FlowKind", "FlowIndex", "allocate_rates",
           "allocate_rates_reference", "settle_flows",
           "ELASTIC_FLOOR_FRACTION"]

_link_ids = itertools.count(1)
_flow_ids = itertools.count(1)

#: Minimum share of a link's capacity an elastic flow can be squeezed to.
#: Models the trickle a reliable stream still achieves under open-loop
#: overload (header compression, retries); prevents infinite stalls.
ELASTIC_FLOOR_FRACTION = 0.01


class FlowKind(Enum):
    """Traffic classes distinguished by the allocator."""

    FIXED = "fixed"       # open-loop, rate-limited at the source (UDP)
    ELASTIC = "elastic"   # closed-loop reliable transfer (TCP-like)


class Link:
    """One direction of a physical link (or a shared segment)."""

    def __init__(self, name: str, capacity: float,
                 latency: float = 0.0,
                 trace_max_samples: Optional[int] = None) -> None:
        if capacity <= 0:
            raise NetworkError(f"link {name!r} needs positive capacity")
        if latency < 0:
            raise NetworkError(f"link {name!r} latency cannot be negative")
        self.lid = next(_link_ids)
        self.name = name
        self.capacity = float(capacity)   # bytes per second
        self.latency = float(latency)     # seconds, one-way
        self.carried = CounterTrace(f"link:{name}:bytes",
                                    max_samples=trace_max_samples)
        #: Bytes offered by fixed flows but not carried (dropped).
        self.dropped = CounterTrace(f"link:{name}:dropped",
                                    max_samples=trace_max_samples)

    def utilization(self, now: float, window: float) -> float:
        """Recent carried load as a fraction of capacity."""
        return self.carried.rate(now, window) / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.capacity * 8 / 1e6:.0f}Mbps>"


@dataclass
class Flow:
    """A unidirectional traffic flow across a path of links."""

    path: tuple[Link, ...]
    kind: FlowKind
    #: Offered rate for FIXED flows (bytes/s); ignored for ELASTIC.
    demand: float = 0.0
    #: Bytes still to move for ELASTIC flows; ignored for FIXED.
    remaining: float = 0.0
    name: str = "flow"
    #: Completion event (ELASTIC only).
    done: Optional[SimEvent] = None
    #: Current allocated rate (bytes/s), set by the allocator.
    rate: float = field(default=0.0, init=False)
    fid: int = field(default_factory=lambda: next(_flow_ids), init=False)
    #: Cumulative bytes actually carried.
    carried_bytes: float = field(default=0.0, init=False)
    #: Cumulative bytes lost (FIXED flows under overload).
    lost_bytes: float = field(default=0.0, init=False)
    #: Guaranteed minimum rate for ELASTIC flows (precomputed).
    floor: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if not self.path:
            raise NetworkError(f"flow {self.name!r} has an empty path")
        if self.kind is FlowKind.FIXED and self.demand <= 0:
            raise NetworkError("fixed flow needs a positive demand")
        if self.kind is FlowKind.ELASTIC:
            if self.remaining <= 0:
                raise NetworkError("elastic flow needs positive bytes")
            self.floor = ELASTIC_FLOOR_FRACTION * min(
                link.capacity for link in self.path)

    @property
    def loss_fraction(self) -> float:
        """Fraction of the offered fixed-rate load currently being lost."""
        if self.kind is not FlowKind.FIXED or self.demand <= 0:
            return 0.0
        return max(0.0, 1.0 - self.rate / self.demand)

    @property
    def path_latency(self) -> float:
        """Sum of one-way propagation latencies along the path."""
        return sum(link.latency for link in self.path)


class FlowIndex:
    """Per-link flow maps maintained incrementally across reallocations.

    The index keeps, for every link id, insertion-ordered maps of the
    fixed and elastic flows whose paths cross that link.  Keeping these
    maps current on flow add/remove (O(path) per change) lets
    :func:`allocate_rates` skip the O(flows × path) map rebuild it
    would otherwise repeat on every call, and makes "traffic crossing
    one link" queries proportional to that link's population rather
    than to the whole cluster's flow count.
    """

    __slots__ = ("fixed", "elastic", "fixed_by_link", "elastic_by_link")

    def __init__(self, flows: Iterable[Flow] = ()) -> None:
        #: Insertion-ordered maps fid -> Flow by traffic class.
        self.fixed: dict[int, Flow] = {}
        self.elastic: dict[int, Flow] = {}
        #: Per-link insertion-ordered maps fid -> Flow.
        self.fixed_by_link: dict[int, dict[int, Flow]] = {}
        self.elastic_by_link: dict[int, dict[int, Flow]] = {}
        for flow in flows:
            self.add(flow)

    def add(self, flow: Flow) -> None:
        if flow.kind is FlowKind.FIXED:
            flows, by_link = self.fixed, self.fixed_by_link
        else:
            flows, by_link = self.elastic, self.elastic_by_link
        if flow.fid in flows:
            raise NetworkError(f"flow {flow.name!r} already indexed")
        flows[flow.fid] = flow
        for link in flow.path:
            per_link = by_link.get(link.lid)
            if per_link is None:
                per_link = by_link[link.lid] = {}
            per_link[flow.fid] = flow

    def remove(self, flow: Flow) -> None:
        if flow.kind is FlowKind.FIXED:
            flows, by_link = self.fixed, self.fixed_by_link
        else:
            flows, by_link = self.elastic, self.elastic_by_link
        if flows.pop(flow.fid, None) is None:
            raise NetworkError(f"flow {flow.name!r} is not indexed")
        for link in flow.path:
            by_link[link.lid].pop(flow.fid, None)

    def __len__(self) -> int:
        return len(self.fixed) + len(self.elastic)

    def flows(self) -> list[Flow]:
        """All indexed flows (fixed first, then elastic, in add order)."""
        return [*self.fixed.values(), *self.elastic.values()]

    # -- per-link aggregate queries ----------------------------------------

    def allocated_on(self, link: Link) -> float:
        """Sum of currently allocated rates crossing ``link``."""
        lid = link.lid
        total = 0.0
        per_link = self.fixed_by_link.get(lid)
        if per_link:
            for f in per_link.values():
                total += f.rate
        per_link = self.elastic_by_link.get(lid)
        if per_link:
            for f in per_link.values():
                total += f.rate
        return total

    def offered_on(self, link: Link) -> float:
        """Sum of fixed-flow demands crossing ``link``."""
        per_link = self.fixed_by_link.get(link.lid)
        if not per_link:
            return 0.0
        return sum(f.demand for f in per_link.values())

    def flows_on(self, link: Link) -> list[Flow]:
        """All indexed flows whose path crosses ``link``."""
        out = list(self.fixed_by_link.get(link.lid, {}).values())
        out.extend(self.elastic_by_link.get(link.lid, {}).values())
        return out


def allocate_rates(flows: Iterable[Flow],
                   index: Optional[FlowIndex] = None) -> None:
    """Assign ``flow.rate`` for every flow, in place.

    Stage 1 — fixed flows: each starts at its demand and is repeatedly
    scaled down on the single most-oversubscribed link; only the links
    touched by the scaled flows have their load recomputed (the
    reference implementation rebuilt every map on every iteration).

    Stage 2 — elastic flows: progressive filling of the residual
    capacity.  Repeatedly find the bottleneck link (smallest equal
    share), freeze its flows at that share, and continue with the rest.
    Every elastic flow additionally receives at least
    ``ELASTIC_FLOOR_FRACTION`` of its tightest link's capacity
    (precomputed per flow as ``Flow.floor``).

    ``index`` may carry a :class:`FlowIndex` already covering exactly
    ``flows``; callers that mutate the flow set incrementally (the
    Fabric) pass their long-lived index so no per-call map rebuild is
    needed.  Without it a transient index is built from ``flows``.
    """
    if index is None:
        index = FlowIndex(flows)
    fixed = index.fixed
    elastic = index.elastic
    if not fixed and not elastic:
        return

    # -- stage 1: fixed flows ------------------------------------------------
    if fixed:
        fixed_by_link = index.fixed_by_link
        load: dict[int, float] = {}
        caps: dict[int, float] = {}
        for f in fixed.values():
            f.rate = f.demand
        for f in fixed.values():
            rate = f.rate
            for link in f.path:
                lid = link.lid
                if lid in load:
                    load[lid] += rate
                else:
                    load[lid] = rate
                    caps[lid] = link.capacity
        for _ in range(64):  # iterative proportional scaling
            # Scale the single most-oversubscribed link, then re-derive
            # the load on the links its flows touch — scaling several
            # links in one pass would shrink a flow once per link it
            # crosses instead of once overall.
            worst_lid, worst_ratio = None, 1.0 + 1e-12
            for lid, total in load.items():
                ratio = total / caps[lid]
                if ratio > worst_ratio:
                    worst_lid, worst_ratio = lid, ratio
            if worst_lid is None:
                break
            touched: dict[int, bool] = {}
            for f in fixed_by_link[worst_lid].values():
                f.rate /= worst_ratio
                for link in f.path:
                    touched[link.lid] = True
            for lid in touched:
                load[lid] = sum(
                    f.rate for f in fixed_by_link[lid].values())

    # -- stage 2: elastic flows on the residual -----------------------------
    if not elastic:
        return
    residual: dict[int, float] = {}
    count: dict[int, int] = {}
    for f in elastic.values():
        for link in f.path:
            lid = link.lid
            if lid in residual:
                count[lid] += 1
            else:
                residual[lid] = link.capacity
                count[lid] = 1
    if fixed:
        fixed_by_link = index.fixed_by_link
        for lid in residual:
            per_link = fixed_by_link.get(lid)
            if per_link:
                r = residual[lid]
                for f in per_link.values():
                    r -= f.rate
                    if r < 0.0:
                        r = 0.0
                residual[lid] = r

    elastic_by_link = index.elastic_by_link
    active = set(elastic)
    while active:
        # The bottleneck offers the smallest equal share to its
        # remaining elastic flows.
        bottleneck = None
        share = 0.0
        for lid, c in count.items():
            if c > 0:
                s = residual[lid] / c
                if bottleneck is None or s < share:
                    bottleneck, share = lid, s
        if bottleneck is None:
            break
        frozen = [f for fid, f in elastic_by_link[bottleneck].items()
                  if fid in active]
        if not frozen:  # pragma: no cover - defensive
            break
        for flow in frozen:
            floor = flow.floor
            flow.rate = share if share > floor else floor
            active.discard(flow.fid)
            for link in flow.path:
                lid = link.lid
                r = residual[lid] - share
                residual[lid] = r if r > 0.0 else 0.0
                count[lid] -= 1


def allocate_rates_reference(flows: Iterable[Flow]) -> None:
    """The pre-optimisation allocator, kept as the behavioural oracle.

    This is the original O(iterations × flows × path) implementation;
    ``tests/sim/test_link_allocator_equivalence.py`` asserts that
    :func:`allocate_rates` matches it on randomized topologies.
    """
    flows = list(flows)
    fixed = [f for f in flows if f.kind is FlowKind.FIXED]
    elastic = [f for f in flows if f.kind is FlowKind.ELASTIC]

    # -- stage 1: fixed flows ------------------------------------------------
    for f in fixed:
        f.rate = f.demand
    for _ in range(64):  # iterative proportional scaling
        load: dict[int, float] = {}
        by_link: dict[int, list[Flow]] = {}
        caps: dict[int, float] = {}
        for f in fixed:
            for link in f.path:
                load[link.lid] = load.get(link.lid, 0.0) + f.rate
                by_link.setdefault(link.lid, []).append(f)
                caps[link.lid] = link.capacity
        # Scale the single most-oversubscribed link, then re-derive the
        # load map — scaling several links in one pass would shrink a
        # flow once per link it crosses instead of once overall.
        worst_lid, worst_ratio = None, 1.0 + 1e-12
        for lid, total in load.items():
            ratio = total / caps[lid]
            if ratio > worst_ratio:
                worst_lid, worst_ratio = lid, ratio
        if worst_lid is None:
            break
        for f in by_link[worst_lid]:
            f.rate /= worst_ratio

    # -- stage 2: elastic flows on the residual -----------------------------
    residual: dict[int, float] = {}
    count: dict[int, int] = {}
    links: dict[int, Link] = {}
    for f in flows:
        for link in f.path:
            links[link.lid] = link
            residual.setdefault(link.lid, link.capacity)
            count.setdefault(link.lid, 0)
    for f in fixed:
        for link in f.path:
            residual[link.lid] = max(0.0, residual[link.lid] - f.rate)
    for f in elastic:
        for link in f.path:
            count[link.lid] += 1

    active = set(f.fid for f in elastic)
    by_fid = {f.fid: f for f in elastic}
    while active:
        # Equal share offered by each link to its remaining elastic flows.
        shares = {lid: residual[lid] / count[lid]
                  for lid in residual if count.get(lid, 0) > 0}
        if not shares:
            break
        bottleneck = min(shares, key=lambda lid: shares[lid])
        share = shares[bottleneck]
        frozen = [fid for fid in active
                  if any(l.lid == bottleneck for l in by_fid[fid].path)]
        if not frozen:  # pragma: no cover - defensive
            break
        for fid in frozen:
            flow = by_fid[fid]
            floor = ELASTIC_FLOOR_FRACTION * min(
                l.capacity for l in flow.path)
            flow.rate = max(share, floor)
            active.discard(fid)
            for link in flow.path:
                residual[link.lid] = max(
                    0.0, residual[link.lid] - share)
                count[link.lid] -= 1


def settle_flows(flows: Sequence[Flow], dt: float) -> None:
    """Advance byte accounting for ``dt`` seconds at current rates."""
    if dt < 0:
        raise NetworkError("cannot settle a negative interval")
    if dt == 0:
        return
    for f in flows:
        moved = f.rate * dt
        if f.kind is FlowKind.ELASTIC:
            moved = min(moved, f.remaining)
            f.remaining -= moved
        else:
            f.lost_bytes += max(0.0, (f.demand - f.rate)) * dt
        f.carried_bytes += moved
