"""Sharded multi-process simulation with conservative lookahead.

The single-threaded kernel's throughput *degrades* with cluster size;
this module splits the simulated cluster into node shards — each with
its own :class:`~repro.sim.core.Environment`, fabric and KECho bus —
and advances them in lockstep windows sized by the partition's
lookahead (see :class:`~repro.sim.core.WindowScheduler`).  Cross-shard
traffic leaves the local fabric through a *conduit*: the sending
stack's :attr:`router` turns unknown destinations into
:class:`ConduitConnection` objects whose payloads are encoded with the
live backend's binary MONITOR/CONTROL codec, buffered per window, and
carried to the owning shard over a multiprocessing pipe (or handed
over in-process in inline mode).

Execution modes
---------------
``processes=True`` forks one worker per shard; the parent coordinates
barriers and routes envelopes.  Genuinely parallel on multicore hosts.

``processes=False`` (inline) runs every shard world in the calling
process, round-robin per window.  Same windowing, same event order,
same results — used by deterministic tests and by harnesses whose
hooks need a global in-process view (chaos).

Determinism: for a fixed (seed, plan) the sharded schedule is
reproducible — envelopes are injected in ``(arrival, source shard,
sequence)`` order at each barrier, and subscription changes propagate
at barriers only.  The sharded schedule is *not* the single-kernel
schedule (windows quantise cross-shard latency); ``workers=1`` paths
bypass this module entirely and stay bit-identical.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ShardError, TransportError
from repro.kecho.channel import KechoBus
from repro.sim.core import Environment, SimEvent, WindowScheduler
from repro.sim.topology import ShardPlan
from repro.sim.transport import Message, Protocol

__all__ = ["ShardedBus", "ShardRouter", "ConduitConnection",
           "ShardSpec", "ShardWorld", "ShardResult",
           "ShardedRunResult", "run_sharded"]

#: An envelope crossing the shard boundary:
#: ``(arrival_time, src_shard, seq, dst_host, frame_bytes)``.
Envelope = tuple


class ShardedBus(KechoBus):
    """A per-shard KECho bus that merges in remote-shard subscribers.

    Local membership and dispatch work exactly as on
    :class:`KechoBus`; ``remote_subscribers`` additionally returns the
    hosts of *other* shards that subscribe to the channel, so
    publishers fan out across the boundary.  The remote view is pushed
    in at barriers by the coordinator (so it lags real subscription
    changes by at most one window) and is deterministic: shard order,
    then each shard's registry order.
    """

    def __init__(self, registry=None) -> None:
        super().__init__(registry)
        self._remote_subs: dict[str, tuple[str, ...]] = {}
        #: Bumped on *local* subscription changes only — what the
        #: worker reports to the coordinator.
        self.local_subs_version = 0
        self._reported_version = -1

    def _subscriptions_changed(self) -> None:
        super()._subscriptions_changed()
        self.local_subs_version += 1

    def set_remote_subscribers(
            self, view: dict[str, tuple[str, ...]]) -> None:
        """Replace the remote-shard subscriber view (coordinator push)."""
        if view == self._remote_subs:
            return
        self._remote_subs = view
        # Invalidate subscriber/audience caches without claiming a
        # local change.
        self.subscription_version += 1

    def local_subscriptions(self) -> dict[str, tuple[str, ...]]:
        """Channel → ordered local subscriber hosts (for the exchange)."""
        out: dict[str, tuple[str, ...]] = {}
        for name in self.registry.channels():
            subs = tuple(self._subscribers(name))
            if subs:
                out[name] = subs
        return out

    def take_local_subscriptions(self
                                 ) -> Optional[dict[str, tuple[str, ...]]]:
        """The local view if it changed since last report, else None."""
        if self.local_subs_version == self._reported_version:
            return None
        self._reported_version = self.local_subs_version
        return self.local_subscriptions()

    def remote_subscribers(self, name: str, source: str) -> list[str]:
        local = super().remote_subscribers(name, source)
        extra = self._remote_subs.get(name)
        if not extra:
            return local
        # Shards are disjoint, so remote hosts never duplicate local
        # ones; the publisher itself is always local.
        return local + list(extra)

    def has_audience(self, name: str, source: str) -> bool:
        if self._remote_subs.get(name):
            return True
        return super().has_audience(name, source)


class ConduitConnection:
    """A cross-shard logical stream: latency-only WAN-class hop.

    Mirrors the :class:`~repro.sim.transport.Connection` surface the
    KECho fan-out uses.  Sends are checked against the local fault
    plane (partitions, loss and crashes apply across the boundary),
    encoded with the live wire codec, and buffered on the router for
    the next barrier.  The conduit is latency-only — its bandwidth is
    not modelled, because the lookahead contract needs a fixed lower
    bound on delivery time, and the cut links are by construction the
    WAN/inter-cluster class whose latency dominates.
    """

    def __init__(self, router: "ShardRouter", stack, dst: str,
                 tag: str, proto: str = Protocol.TCP) -> None:
        self.router = router
        self.stack = stack
        self.src = stack.host
        self.dst = dst
        self.tag = tag
        self.proto = proto
        self.closed = False

    def send(self, payload: Any, size: float) -> SimEvent:
        if self.closed:
            raise TransportError("send on closed conduit connection")
        if size <= 0:
            raise TransportError("message size must be positive")
        return self.router.send(self, payload, float(size))

    def close(self) -> None:
        self.closed = True


class ShardRouter:
    """One shard's end of the cross-shard conduit.

    Owns the outbound buffer (drained at each barrier), injects
    inbound envelopes as local events at their arrival times, and
    answers :meth:`routes` for the stacks' connect fall-through.
    """

    def __init__(self, env: Environment, plan: ShardPlan,
                 index: int) -> None:
        self.env = env
        self.plan = plan
        self.index = index
        self.lookahead = plan.lookahead
        self._stacks: dict[str, Any] = {}
        self._outbound: list[Envelope] = []
        self._seq = 0
        self._mid = 0
        # Fan-outs submit the same event to many hosts back-to-back;
        # memoise the last encoding so the frame is built once.
        self._last_payload: Any = None
        self._last_frame: bytes | None = None
        self.conduit_tx = 0
        self.conduit_rx = 0
        self.conduit_dropped = 0

    # -- wiring ----------------------------------------------------------

    def attach(self, cluster) -> None:
        """Bind the local stacks and install the connect fall-through."""
        for node in cluster:
            self._stacks[node.name] = node.stack
            node.stack.router = self

    def routes(self, host: str) -> bool:
        try:
            return self.plan.shard_of(host) != self.index
        except Exception:
            return False

    def connect(self, stack, dst: str, tag: str,
                proto: str = Protocol.TCP) -> ConduitConnection:
        return ConduitConnection(self, stack, dst, tag, proto)

    # -- outbound --------------------------------------------------------

    def send(self, conn: ConduitConnection, payload: Any,
             size: float) -> SimEvent:
        from repro.live.codec import encode_frame
        env = self.env
        now = env.now
        stack = conn.stack
        done = env.event()
        # The local fault plane covers the boundary too: a partition
        # rule or an injected loss kills the message before the wire,
        # exactly as on the fabric path (same seeded per-node stream).
        faults = stack.fabric.faults
        if faults is not None:
            reason = None
            if faults.blocked(conn.src, conn.dst):
                reason = faults.blocked_reason(conn.src, conn.dst) \
                    or "path blocked"
            else:
                p = faults.loss_probability(conn.src, conn.dst, ())
                if p > 0.0 and stack.rng.random() < p:
                    reason = "injected loss"
            if reason is not None:
                self.conduit_dropped += 1
                drop_hook = getattr(stack, "drop_hook", None)
                if drop_hook is not None:
                    drop_hook(payload, conn.dst, reason, now)
                fail = env.timeout(0.0)
                fail.add_callback(
                    lambda _ev, r=reason: (
                        done.fail(TransportError(
                            f"conduit {conn.src}->{conn.dst} "
                            f"lost ({r})")),
                        setattr(done, "defused", True)))
                return done
        if payload is self._last_payload:
            frame = self._last_frame
        else:
            # encode_frame length-prefixes for stream transports; the
            # conduit carries whole frames, so keep the body only.
            frame = encode_frame(conn.tag, payload)[4:]
            self._last_payload = payload
            self._last_frame = frame
        seq = self._seq
        self._seq = seq + 1
        arrival = now + self.lookahead
        self._outbound.append((arrival, self.index, seq, conn.dst,
                               frame))
        self.conduit_tx += 1
        stack.bytes_out.add(now, size)
        timer = env.timeout(self.lookahead)
        timer.add_callback(lambda _ev: done.succeed(None))
        return done

    def take_outbound(self) -> list[Envelope]:
        out = self._outbound
        self._outbound = []
        self._last_payload = None
        self._last_frame = None
        return out

    # -- inbound ---------------------------------------------------------

    def inject(self, envelopes: list[Envelope]) -> None:
        """Schedule inbound envelopes (called at a barrier).

        The coordinator delivers each envelope to the window covering
        its arrival, so ``arrival >= env.now`` always holds here; the
        lookahead contract guarantees it.
        """
        env = self.env
        now = env.now
        for arrival, _src_shard, _seq, dst_host, frame in envelopes:
            if arrival < now:
                raise ShardError(
                    f"conduit event for {dst_host!r} arrives at "
                    f"{arrival}, before the window start {now} — "
                    f"lookahead violation")
            timer = env.timeout(arrival - now)
            timer.add_callback(
                lambda _ev, h=dst_host, f=frame: self._deliver(h, f))

    def _deliver(self, host: str, frame: bytes) -> None:
        from repro.live.codec import decode_frame
        stack = self._stacks.get(host)
        if stack is None:
            raise ShardError(f"conduit delivery for non-local host "
                             f"{host!r} on shard {self.index}")
        tag, event = decode_frame(frame)
        # Arrival-side fault re-check, mirroring the fabric's
        # in-flight semantics: a partition or crash that landed while
        # the bytes were crossing still kills them.
        faults = stack.fabric.faults
        if faults is not None and faults.blocked(event.source, host):
            self.conduit_dropped += 1
            drop_hook = getattr(stack, "drop_hook", None)
            if drop_hook is not None:
                # The sender's completion succeeded a window ago: this
                # kill is arrival-side only, invisible to the
                # publisher's failed-delivery counter.
                drop_hook(event, host,
                          faults.blocked_reason(event.source, host)
                          or "path blocked",
                          self.env.now, sender_failed=False)
            return
        self.conduit_rx += 1
        self._mid += 1
        msg = Message(mid=-self._mid, src=event.source, dst=host,
                      tag=tag, payload=event, size=event.size,
                      sent_at=event.submitted_at)
        msg.delivered_at = self.env.now
        stack._receive(msg)


@dataclass
class ShardSpec:
    """Everything a worker needs to build its world."""

    plan: ShardPlan
    index: int
    duration: float
    #: Caller-defined configuration for the builder (kept picklable
    #: when using the spawn start method; under fork anything goes).
    payload: Any = None

    @property
    def local_names(self) -> tuple[str, ...]:
        return self.plan.shards[self.index]


@dataclass
class ShardWorld:
    """One shard's built simulation, as returned by a builder."""

    env: Environment
    router: ShardRouter
    bus: ShardedBus
    cluster: Any = None
    dprocs: Optional[dict] = None
    #: Optional ``harvest(world) -> dict`` collected into the shard's
    #: result at the end of the run (telemetry summaries, reports).
    harvest: Optional[Callable[["ShardWorld"], dict]] = None


@dataclass
class ShardResult:
    """Per-shard accounting returned by :func:`run_sharded`."""

    index: int
    n_nodes: int
    events_processed: int
    #: Worker process CPU seconds over the advance loop (run only,
    #: build excluded) — the critical-path capacity denominator.
    cpu_seconds: float
    conduit_tx: int
    conduit_rx: int
    conduit_dropped: int
    extra: Optional[dict] = None


@dataclass
class ShardedRunResult:
    """Whole-run accounting for one sharded execution."""

    duration: float
    lookahead: float
    n_shards: int
    windows: int
    events_processed: int
    conduit_messages: int
    coordinator_cpu_seconds: float
    processes: bool
    #: Wall seconds building the shard worlds (until every worker is
    #: ready) and driving the window loop.  Timing only — never fed
    #: back into the simulation, so determinism is unaffected.
    build_wall_seconds: float = 0.0
    run_wall_seconds: float = 0.0
    shards: list[ShardResult] = field(default_factory=list)


# -- worker side ----------------------------------------------------------


def _world_result(world: ShardWorld, spec: ShardSpec,
                  cpu_seconds: float) -> dict:
    router = world.router
    return {
        "index": spec.index,
        "n_nodes": len(spec.local_names),
        "events_processed": world.env.events_processed,
        "cpu_seconds": cpu_seconds,
        "conduit_tx": router.conduit_tx,
        "conduit_rx": router.conduit_rx,
        "conduit_dropped": router.conduit_dropped,
        "extra": world.harvest(world) if world.harvest else None,
    }


def _advance(world: ShardWorld, barrier: float,
             envelopes: list[Envelope],
             remote_subs: Optional[dict]) -> tuple:
    """Run one window; returns the worker's reply tuple."""
    if remote_subs is not None:
        world.bus.set_remote_subscribers(remote_subs)
    if envelopes:
        world.router.inject(envelopes)
    world.env.run(until=barrier)
    return (world.env.peek(), world.router.take_outbound(),
            world.bus.take_local_subscriptions(),
            world.env.events_processed)


def _shard_worker(spec: ShardSpec, builder, conn) -> None:
    """Worker process main: build, window loop, result."""
    try:
        world = builder(spec)
        conn.send(("ready", world.bus.local_subscriptions(),
                   world.env.peek()))
        cpu0 = time.process_time()
        while True:
            msg = conn.recv()
            if msg[0] == "finish":
                break
            _kind, barrier, envelopes, remote_subs = msg
            conn.send(("window",)
                      + _advance(world, barrier, envelopes, remote_subs))
        cpu = time.process_time() - cpu0
        conn.send(("result", _world_result(world, spec, cpu)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


# -- coordinator-side shard handles ---------------------------------------


class _InlineShard:
    """A shard world driven in-process (deterministic, fork-free)."""

    def __init__(self, spec: ShardSpec, builder,
                 world: Optional[ShardWorld] = None) -> None:
        self.spec = spec
        self.world = world if world is not None else builder(spec)
        self.cpu_seconds = 0.0
        self._reply: Optional[tuple] = None

    def ready(self) -> tuple:
        return (self.world.bus.local_subscriptions(),
                self.world.env.peek())

    def post(self, barrier: float, envelopes: list[Envelope],
             remote_subs: Optional[dict]) -> None:
        t0 = time.process_time()
        self._reply = _advance(self.world, barrier, envelopes,
                               remote_subs)
        self.cpu_seconds += time.process_time() - t0
    def wait(self) -> tuple:
        reply, self._reply = self._reply, None
        return reply

    def finish(self) -> dict:
        return _world_result(self.world, self.spec, self.cpu_seconds)

    def close(self) -> None:
        pass


class _ProcShard:
    """A shard world in a forked worker, driven over a pipe."""

    def __init__(self, spec: ShardSpec, builder, ctx) -> None:
        self.spec = spec
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker, args=(spec, builder, child),
            name=f"shard-{spec.index}", daemon=True)
        self._proc.start()
        child.close()

    def _recv(self, expect: str) -> tuple:
        try:
            msg = self._conn.recv()
        except EOFError:
            raise ShardError(
                f"shard {self.spec.index} worker died (exit code "
                f"{self._proc.exitcode})") from None
        if msg[0] == "error":
            raise ShardError(
                f"shard {self.spec.index} worker failed:\n{msg[1]}")
        if msg[0] != expect:
            raise ShardError(
                f"shard {self.spec.index}: expected {expect!r}, got "
                f"{msg[0]!r}")
        return msg[1:]

    def ready(self) -> tuple:
        return self._recv("ready")

    def post(self, barrier: float, envelopes: list[Envelope],
             remote_subs: Optional[dict]) -> None:
        self._conn.send(("advance", barrier, envelopes, remote_subs))

    def wait(self) -> tuple:
        return self._recv("window")

    def finish(self) -> dict:
        self._conn.send(("finish",))
        return self._recv("result")[0]

    def close(self) -> None:
        try:
            self._conn.close()
        except Exception:
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():
            self._proc.terminate()


# -- the coordinator ------------------------------------------------------


def _merged_remote_views(plan: ShardPlan,
                         local: list[dict]) -> list[dict]:
    """Per-shard remote-subscriber views, deterministically ordered."""
    views: list[dict] = []
    for i in range(plan.n_shards):
        view: dict[str, tuple[str, ...]] = {}
        for j, subs in enumerate(local):
            if j == i:
                continue
            for name, hosts in subs.items():
                view[name] = view.get(name, ()) + tuple(hosts)
        views.append(view)
    return views


def run_sharded(plan: ShardPlan, duration: float,
                builder: Callable[[ShardSpec], ShardWorld],
                *, payloads: Optional[list] = None,
                processes: bool = True,
                worlds: Optional[list[ShardWorld]] = None
                ) -> ShardedRunResult:
    """Run one sharded simulation for ``duration`` simulated seconds.

    ``builder(spec)`` constructs each shard's world (in the worker
    process when ``processes`` is true).  ``payloads`` optionally
    supplies ``spec.payload`` per shard; ``worlds`` hands over
    pre-built worlds (inline mode only — the caller keeps in-process
    access, as the chaos harness needs).
    """
    if duration <= 0:
        raise ShardError("duration must be positive")
    n = plan.n_shards
    if payloads is not None and len(payloads) != n:
        raise ShardError("payloads/shards length mismatch")
    specs = [ShardSpec(plan=plan, index=i, duration=float(duration),
                       payload=payloads[i] if payloads else None)
             for i in range(n)]
    if worlds is not None:
        if processes:
            raise ShardError(
                "pre-built worlds only run inline (processes=False)")
        if len(worlds) != n:
            raise ShardError("worlds/shards length mismatch")
        shards: list = [_InlineShard(s, builder, world=w)
                        for s, w in zip(specs, worlds)]
    elif processes and n > 1:
        import multiprocessing as mp
        try:
            ctx = mp.get_context("fork")
        except ValueError:
            ctx = None
        if ctx is None:
            shards = [_InlineShard(s, builder) for s in specs]
            processes = False
        else:
            shards = [_ProcShard(s, builder, ctx) for s in specs]
    else:
        shards = [_InlineShard(s, builder) for s in specs]
        processes = False

    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    result = ShardedRunResult(
        duration=float(duration), lookahead=plan.lookahead,
        n_shards=n, windows=0, events_processed=0, conduit_messages=0,
        coordinator_cpu_seconds=0.0, processes=processes)
    try:
        local_subs: list[dict] = [None] * n
        peeks: list[float] = [float("inf")] * n
        for i, shard in enumerate(shards):
            local_subs[i], peeks[i] = shard.ready()
        result.build_wall_seconds = time.perf_counter() - wall0
        wall1 = time.perf_counter()
        views = _merged_remote_views(plan, local_subs)
        dirty = [True] * n
        pending: list[list[Envelope]] = [[] for _ in range(n)]
        scheduler = WindowScheduler(plan.lookahead, float(duration))
        now = 0.0
        while now < duration:
            arrivals = [e[0] for q in pending for e in q]
            barrier = scheduler.next_barrier(now, peeks, arrivals)
            for i, shard in enumerate(shards):
                batch = [e for e in pending[i] if e[0] < barrier]
                if batch:
                    pending[i] = [e for e in pending[i]
                                  if e[0] >= barrier]
                    batch.sort(key=lambda e: (e[0], e[1], e[2]))
                shard.post(barrier, batch,
                           views[i] if dirty[i] else None)
                dirty[i] = False
            subs_changed = False
            for i, shard in enumerate(shards):
                peeks[i], outbound, subs, _events = shard.wait()
                for env_tuple in outbound:
                    dst = plan.shard_of(env_tuple[3])
                    pending[dst].append(env_tuple)
                    result.conduit_messages += 1
                if subs is not None and subs != local_subs[i]:
                    local_subs[i] = subs
                    subs_changed = True
            if subs_changed:
                views = _merged_remote_views(plan, local_subs)
                dirty = [True] * n
            now = barrier
        result.run_wall_seconds = time.perf_counter() - wall1
        result.windows = scheduler.windows
        for shard in shards:
            r = shard.finish()
            result.shards.append(ShardResult(
                index=r["index"], n_nodes=r["n_nodes"],
                events_processed=r["events_processed"],
                cpu_seconds=r["cpu_seconds"],
                conduit_tx=r["conduit_tx"],
                conduit_rx=r["conduit_rx"],
                conduit_dropped=r["conduit_dropped"],
                extra=r["extra"]))
            result.events_processed += r["events_processed"]
    finally:
        for shard in shards:
            shard.close()
    result.coordinator_cpu_seconds = time.process_time() - cpu0
    if not processes:
        # Inline shards burn their CPU in this process; keep the
        # coordinator number to what coordination itself cost.
        result.coordinator_cpu_seconds = max(
            0.0, result.coordinator_cpu_seconds
            - sum(s.cpu_seconds for s in result.shards))
    return result
