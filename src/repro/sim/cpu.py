"""Multi-CPU processor-sharing model.

A :class:`CPU` models an SMP node (the paper's quad Pentium Pro) as a
work-conserving processor-sharing server:

* ``n_cpus`` processors, each delivering ``mflops_per_cpu`` Mflop/s;
* with ``k`` runnable jobs, each receives
  ``mflops_per_cpu * min(1, n_cpus / k)`` — no job exceeds one CPU and
  jobs share fairly when oversubscribed.

The model is **event-driven**: rates are recomputed only when the job
set changes, and the next completion is scheduled analytically, so a
simulated hour of steady load costs a handful of events.

Jobs submitted via :meth:`execute` are *runnable processes* and count
toward the run-queue length seen by CPU_MON; jobs submitted via
:meth:`kernel_work` consume cycles (they contend for capacity) but do
not appear in the run queue, mirroring in-kernel softirq/handler work.

Scalability notes: the runnable-job count is maintained incrementally
(``run_queue_length`` is O(1), not a scan — it is read twice per job
churn by the load-average and trace bookkeeping), and busy-time is
checkpointed at every settle so :meth:`utilization` can answer *windowed*
queries exactly (busy-seconds accrue linearly between checkpoints).
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulationError
from repro.sim.core import Environment, SimEvent
from repro.sim.trace import EwmaLoad, TimeSeries

__all__ = ["CPU", "CpuJob"]

#: Relative tolerance for declaring a job's remaining work complete.
_EPS = 1e-9

#: Busy-time checkpoints retained for windowed utilization queries.
_BUSY_HISTORY_BOUND = 65536


@dataclass
class CpuJob:
    """One unit of CPU work executing under processor sharing."""

    jid: int
    name: str
    work: float                      # total Mflop requested
    remaining: float                 # Mflop still to run
    runnable: bool                   # counts in the run queue?
    done: SimEvent = field(repr=False, default=None)  # type: ignore[assignment]
    started_at: float = 0.0
    cancelled: bool = False


class CPU:
    """Work-conserving multi-processor with processor-sharing scheduling."""

    def __init__(self, env: Environment, n_cpus: int = 4,
                 mflops_per_cpu: float = 17.4,
                 track_runqueue: bool = True) -> None:
        if n_cpus < 1:
            raise SimulationError("need at least one CPU")
        if mflops_per_cpu <= 0:
            raise SimulationError("CPU capacity must be positive")
        self.env = env
        self.n_cpus = int(n_cpus)
        self.mflops_per_cpu = float(mflops_per_cpu)
        self._jobs: dict[int, CpuJob] = {}
        #: Incrementally maintained count of runnable jobs (O(1) reads).
        self._n_runnable = 0
        self._ids = itertools.count(1)
        self._last_update = env.now
        self._timer_generation = 0
        #: Cumulative CPU-seconds actually consumed (all processors).
        self.busy_cpu_seconds = 0.0
        #: Busy-time checkpoints (time, cumulative busy CPU-seconds);
        #: busy accrues linearly between entries, so windowed
        #: utilization interpolates exactly.
        self._busy_times: list[float] = [env.now]
        self._busy_marks: list[float] = [0.0]
        #: Classic /proc/loadavg exponential averages, fed on job churn.
        self.loadavg = EwmaLoad()
        #: Optional full trace of run-queue length transitions.
        self.runqueue_trace: Optional[TimeSeries] = (
            TimeSeries("runqueue") if track_runqueue else None)
        if self.runqueue_trace is not None:
            self.runqueue_trace.record(env.now, 0)

    # -- public interface --------------------------------------------------

    @property
    def run_queue_length(self) -> int:
        """Number of runnable jobs (running + waiting for a processor)."""
        return self._n_runnable

    @property
    def active_jobs(self) -> int:
        """All jobs currently consuming cycles (incl. kernel work)."""
        return len(self._jobs)

    def process_table(self) -> list[tuple[int, str, bool, float]]:
        """Snapshot of live jobs for per-process monitors.

        Returns ``(jid, name, runnable, cpu_share)`` tuples in jid
        order, where ``cpu_share`` is the fraction of one processor
        each job currently receives under processor sharing.
        """
        if not self._jobs:
            return []
        share = self.per_job_rate() / self.mflops_per_cpu
        return [(j.jid, j.name, j.runnable, share)
                for j in sorted(self._jobs.values(), key=lambda j: j.jid)]

    def per_job_rate(self) -> float:
        """Current Mflop/s granted to each active job."""
        k = len(self._jobs)
        if k <= self.n_cpus:
            return self.mflops_per_cpu
        # Same expression shape as ``mflops * min(1, n/k)`` so the
        # float result is bit-identical to the reference model.
        return self.mflops_per_cpu * (self.n_cpus / k)

    def execute(self, work_mflop: float, name: str = "job") -> SimEvent:
        """Run ``work_mflop`` of application work; yields when finished."""
        return self._submit(work_mflop, name, runnable=True).done

    def kernel_work(self, work_mflop: float,
                    name: str = "kernel") -> SimEvent:
        """Run in-kernel work that uses cycles without being 'runnable'."""
        return self._submit(work_mflop, name, runnable=False).done

    def submit(self, work_mflop: float, name: str = "job",
               runnable: bool = True) -> CpuJob:
        """Lower-level entry returning the :class:`CpuJob` handle."""
        return self._submit(work_mflop, name, runnable)

    def cancel(self, job: CpuJob) -> None:
        """Abort a job; its event fails with :class:`SimulationError`."""
        if job.jid not in self._jobs:
            return
        self._settle()
        del self._jobs[job.jid]
        if job.runnable:
            self._n_runnable -= 1
        job.cancelled = True
        job.done.fail(SimulationError(f"job {job.name!r} cancelled"))
        job.done.defused = True
        self._changed()

    def busy_seconds_at(self, t: float) -> float:
        """Cumulative busy CPU-seconds at time ``t`` (``t`` ≤ now).

        Exact for any ``t`` within the retained checkpoint history
        (busy-time accrues linearly between checkpoints); times before
        the retained horizon clamp to the oldest checkpoint.
        """
        times, marks = self._busy_times, self._busy_marks
        last_t = times[-1]
        if t >= last_t:
            # Beyond the last checkpoint busy accrues at the current
            # concurrency level.
            k = len(self._jobs)
            return marks[-1] + min(k, self.n_cpus) * (t - last_t)
        i = bisect_right(times, t)
        if i == 0:
            return marks[0]
        t0, b0 = times[i - 1], marks[i - 1]
        t1, b1 = times[i], marks[i]
        if t1 <= t0:
            return b1
        return b0 + (b1 - b0) * (t - t0) / (t1 - t0)

    def utilization(self, since: float, now: float | None = None) -> float:
        """Mean fraction of total capacity used over ``[since, now]``.

        Honors the window: the numerator is the busy CPU-seconds
        accrued *within* the window (from the checkpointed busy-time
        history), not the global mean from t=0.  Call :meth:`settle`
        first for an up-to-the-instant reading.
        """
        now = self.env.now if now is None else now
        span = now - since
        if span <= 0:
            raise SimulationError("empty utilization window")
        busy = self.busy_seconds_at(now) - self.busy_seconds_at(since)
        return busy / (self.n_cpus * span)

    def settle(self) -> None:
        """Bring accounting (remaining work, busy time) up to ``env.now``."""
        self._settle()

    # -- internals -----------------------------------------------------------

    def _submit(self, work: float, name: str, runnable: bool) -> CpuJob:
        if work < 0:
            raise SimulationError("work must be non-negative")
        self._settle()
        job = CpuJob(jid=next(self._ids), name=name, work=float(work),
                     remaining=float(work), runnable=runnable,
                     done=self.env.event(), started_at=self.env.now)
        if work == 0.0:
            job.done.succeed(job)
            return job
        self._jobs[job.jid] = job
        if runnable:
            self._n_runnable += 1
        self._changed()
        return job

    def _settle(self) -> None:
        """Advance every job's remaining work to the current instant."""
        now = self.env.now
        dt = now - self._last_update
        if dt <= 0:
            self._last_update = now
            return
        k = len(self._jobs)
        if k:
            burn = self.per_job_rate() * dt
            for job in self._jobs.values():
                rem = job.remaining - burn
                job.remaining = rem if rem > 0.0 else 0.0
            self.busy_cpu_seconds += min(k, self.n_cpus) * dt
        self._last_update = now
        self._checkpoint_busy(now)

    def _checkpoint_busy(self, now: float) -> None:
        times, marks = self._busy_times, self._busy_marks
        if times[-1] == now:
            marks[-1] = self.busy_cpu_seconds
        else:
            times.append(now)
            marks.append(self.busy_cpu_seconds)
            if len(times) >= 2 * _BUSY_HISTORY_BOUND:
                cut = len(times) - _BUSY_HISTORY_BOUND
                del times[:cut]
                del marks[:cut]

    def _changed(self) -> None:
        """Job set changed: complete finished jobs, reschedule the timer."""
        now = self.env.now
        jobs = self._jobs
        # Complete any job that has (numerically) finished.
        finished = None
        for j in jobs.values():
            if j.remaining <= _EPS * (j.work if j.work > 1.0 else 1.0):
                if finished is None:
                    finished = [j]
                else:
                    finished.append(j)
        if finished:
            for job in finished:
                del jobs[job.jid]
                if job.runnable:
                    self._n_runnable -= 1
                job.done.succeed(job)
        runnable = self._n_runnable
        self.loadavg.update(now, runnable)
        if self.runqueue_trace is not None:
            self.runqueue_trace.record(now, runnable)
        self._timer_generation += 1
        if not jobs:
            return
        rate = self.per_job_rate()
        next_remaining = min(j.remaining for j in jobs.values())
        eta = next_remaining / rate
        if not math.isfinite(eta):
            raise SimulationError("non-finite completion time")
        generation = self._timer_generation
        timer = self.env.timeout(eta)
        timer.add_callback(lambda _ev: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # stale timer; the job set changed since it was armed
        self._settle()
        self._changed()
