"""Multi-CPU processor-sharing model.

A :class:`CPU` models an SMP node (the paper's quad Pentium Pro) as a
work-conserving processor-sharing server:

* ``n_cpus`` processors, each delivering ``mflops_per_cpu`` Mflop/s;
* with ``k`` runnable jobs, each receives
  ``mflops_per_cpu * min(1, n_cpus / k)`` — no job exceeds one CPU and
  jobs share fairly when oversubscribed.

The model is **event-driven**: rates are recomputed only when the job
set changes, and the next completion is scheduled analytically, so a
simulated hour of steady load costs a handful of events.

Jobs submitted via :meth:`execute` are *runnable processes* and count
toward the run-queue length seen by CPU_MON; jobs submitted via
:meth:`kernel_work` consume cycles (they contend for capacity) but do
not appear in the run queue, mirroring in-kernel softirq/handler work.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulationError
from repro.sim.core import Environment, SimEvent
from repro.sim.trace import EwmaLoad, TimeSeries

__all__ = ["CPU", "CpuJob"]

#: Relative tolerance for declaring a job's remaining work complete.
_EPS = 1e-9


@dataclass
class CpuJob:
    """One unit of CPU work executing under processor sharing."""

    jid: int
    name: str
    work: float                      # total Mflop requested
    remaining: float                 # Mflop still to run
    runnable: bool                   # counts in the run queue?
    done: SimEvent = field(repr=False, default=None)  # type: ignore[assignment]
    started_at: float = 0.0
    cancelled: bool = False


class CPU:
    """Work-conserving multi-processor with processor-sharing scheduling."""

    def __init__(self, env: Environment, n_cpus: int = 4,
                 mflops_per_cpu: float = 17.4,
                 track_runqueue: bool = True) -> None:
        if n_cpus < 1:
            raise SimulationError("need at least one CPU")
        if mflops_per_cpu <= 0:
            raise SimulationError("CPU capacity must be positive")
        self.env = env
        self.n_cpus = int(n_cpus)
        self.mflops_per_cpu = float(mflops_per_cpu)
        self._jobs: dict[int, CpuJob] = {}
        self._ids = itertools.count(1)
        self._last_update = env.now
        self._timer_generation = 0
        #: Cumulative CPU-seconds actually consumed (all processors).
        self.busy_cpu_seconds = 0.0
        #: Classic /proc/loadavg exponential averages, fed on job churn.
        self.loadavg = EwmaLoad()
        #: Optional full trace of run-queue length transitions.
        self.runqueue_trace: Optional[TimeSeries] = (
            TimeSeries("runqueue") if track_runqueue else None)
        if self.runqueue_trace is not None:
            self.runqueue_trace.record(env.now, 0)

    # -- public interface --------------------------------------------------

    @property
    def run_queue_length(self) -> int:
        """Number of runnable jobs (running + waiting for a processor)."""
        return sum(1 for j in self._jobs.values() if j.runnable)

    @property
    def active_jobs(self) -> int:
        """All jobs currently consuming cycles (incl. kernel work)."""
        return len(self._jobs)

    def per_job_rate(self) -> float:
        """Current Mflop/s granted to each active job."""
        k = len(self._jobs)
        if k == 0:
            return self.mflops_per_cpu
        return self.mflops_per_cpu * min(1.0, self.n_cpus / k)

    def execute(self, work_mflop: float, name: str = "job") -> SimEvent:
        """Run ``work_mflop`` of application work; yields when finished."""
        return self._submit(work_mflop, name, runnable=True).done

    def kernel_work(self, work_mflop: float,
                    name: str = "kernel") -> SimEvent:
        """Run in-kernel work that uses cycles without being 'runnable'."""
        return self._submit(work_mflop, name, runnable=False).done

    def submit(self, work_mflop: float, name: str = "job",
               runnable: bool = True) -> CpuJob:
        """Lower-level entry returning the :class:`CpuJob` handle."""
        return self._submit(work_mflop, name, runnable)

    def cancel(self, job: CpuJob) -> None:
        """Abort a job; its event fails with :class:`SimulationError`."""
        if job.jid not in self._jobs:
            return
        self._settle()
        del self._jobs[job.jid]
        job.cancelled = True
        job.done.fail(SimulationError(f"job {job.name!r} cancelled"))
        job.done.defused = True
        self._changed()

    def utilization(self, since: float, now: float | None = None) -> float:
        """Mean fraction of total capacity used since ``since``.

        Call :meth:`settle` first for an up-to-the-instant reading.
        """
        now = self.env.now if now is None else now
        span = now - since
        if span <= 0:
            raise SimulationError("empty utilization window")
        # busy_cpu_seconds is cumulative from t=0; caller is expected to
        # difference readings; here we provide the simple global mean.
        return self.busy_cpu_seconds / (self.n_cpus * now) if now > 0 else 0.0

    def settle(self) -> None:
        """Bring accounting (remaining work, busy time) up to ``env.now``."""
        self._settle()

    # -- internals -----------------------------------------------------------

    def _submit(self, work: float, name: str, runnable: bool) -> CpuJob:
        if work < 0:
            raise SimulationError("work must be non-negative")
        self._settle()
        job = CpuJob(jid=next(self._ids), name=name, work=float(work),
                     remaining=float(work), runnable=runnable,
                     done=self.env.event(), started_at=self.env.now)
        if work == 0.0:
            job.done.succeed(job)
            return job
        self._jobs[job.jid] = job
        self._changed()
        return job

    def _settle(self) -> None:
        """Advance every job's remaining work to the current instant."""
        now = self.env.now
        dt = now - self._last_update
        if dt <= 0:
            self._last_update = now
            return
        k = len(self._jobs)
        if k:
            rate = self.per_job_rate()
            burn = rate * dt
            for job in self._jobs.values():
                job.remaining = max(0.0, job.remaining - burn)
            self.busy_cpu_seconds += min(k, self.n_cpus) * dt
        self._last_update = now

    def _changed(self) -> None:
        """Job set changed: complete finished jobs, reschedule the timer."""
        now = self.env.now
        # Complete any job that has (numerically) finished.
        finished = [j for j in self._jobs.values()
                    if j.remaining <= _EPS * max(1.0, j.work)]
        for job in finished:
            del self._jobs[job.jid]
            job.done.succeed(job)
        self.loadavg.update(now, self.run_queue_length)
        if self.runqueue_trace is not None:
            self.runqueue_trace.record(now, self.run_queue_length)
        self._timer_generation += 1
        if not self._jobs:
            return
        rate = self.per_job_rate()
        next_remaining = min(j.remaining for j in self._jobs.values())
        eta = next_remaining / rate
        if not math.isfinite(eta):
            raise SimulationError("non-finite completion time")
        generation = self._timer_generation
        timer = self.env.timeout(eta)
        timer.add_callback(lambda _ev: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # stale timer; the job set changed since it was armed
        self._settle()
        self._changed()
