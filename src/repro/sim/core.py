"""Discrete-event simulation kernel.

This module provides the event loop (:class:`Environment`), the event
primitives (:class:`SimEvent`, :class:`Timeout`, :class:`Condition`) and
generator-based processes (:class:`Process`) on which the whole cluster
simulator is built.

The design follows the classic event/process-interaction style (as
popularised by SimPy) but is implemented from scratch for this project:

* An :class:`Environment` owns virtual time and a priority queue of
  triggered events.
* A :class:`SimEvent` is a one-shot occurrence; callbacks attached to it
  run when the event is *processed* by the loop.
* A :class:`Process` wraps a Python generator.  The generator *yields*
  events; the process sleeps until the yielded event is processed and is
  then resumed with the event's value (or the event's exception is thrown
  into it).

Determinism: events scheduled for the same time are processed in FIFO
order of scheduling (stable sequence numbers), with an "urgent" priority
band used internally for process bootstrap and interrupts.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import InterruptError, SchedulingError, SimulationError

__all__ = [
    "Environment",
    "SimEvent",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "WindowScheduler",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
]

#: Priority band for interrupts and process initialisation.
PRIORITY_URGENT = 0
#: Priority band for ordinary events.
PRIORITY_NORMAL = 1

# Sentinel distinguishing "no value yet" from a triggered value of None.
_PENDING = object()


class SimEvent:
    """A one-shot simulation event.

    Life cycle::

        untriggered --(succeed/fail)--> triggered --(loop pops it)--> processed

    Attributes
    ----------
    env:
        The owning :class:`Environment`.
    callbacks:
        List of callables invoked with the event when it is processed.
        ``None`` once processed (late callbacks are invoked immediately
        by :meth:`add_callback`).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["SimEvent"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set to True when a failure has been handled (prevents the
        #: environment from re-raising unhandled event failures).
        self.defused = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued (or processed)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance when it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self, PRIORITY_NORMAL)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with an exception.

        Waiting processes will have ``exception`` thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._enqueue(self, PRIORITY_NORMAL)
        return self

    # -- callbacks -------------------------------------------------------------

    def add_callback(self, fn: Callable[["SimEvent"], None]) -> None:
        """Attach ``fn`` to run when the event is processed.

        If the event was already processed the callback runs immediately,
        which makes "subscribe after the fact" race-free.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def remove_callback(self, fn: Callable[["SimEvent"], None]) -> None:
        """Detach a previously added callback (no-op if absent)."""
        if self.callbacks is not None:
            try:
                self.callbacks.remove(fn)
            except ValueError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("processed" if self.processed
                 else "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(SimEvent):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._enqueue(self, PRIORITY_NORMAL, delay)


class _Initialize(SimEvent):
    """Internal urgent event used to start a process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._enqueue(self, PRIORITY_URGENT)


class _InterruptTrigger(SimEvent):
    """Internal urgent event delivering an interrupt to a process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process",
                 cause: Any) -> None:
        super().__init__(env)
        self._ok = False
        self._value = InterruptError(cause)
        self.defused = True
        self.callbacks.append(process._resume)
        env._enqueue(self, PRIORITY_URGENT)


class Process(SimEvent):
    """A running simulation process wrapping a generator.

    The process is itself an event: it triggers when the generator
    returns (success, with the generator's return value) or raises
    (failure).  Other processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment",
                 generator: Generator[SimEvent, Any, Any],
                 name: str | None = None) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on.
        self._target: Optional[SimEvent] = None
        self.name = name or getattr(generator, "__name__", "process")
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process.

        The process must be alive and must not interrupt itself.  The
        event it was waiting on remains pending; the process may re-wait
        on it after handling the interrupt.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self.name!r}")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        _InterruptTrigger(self.env, self, cause)

    def _resume(self, event: SimEvent) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        # Detach from the event we were waiting on; on interrupt the
        # original target may still fire later and must not resume us
        # twice unless we re-wait on it.
        if self._target is not None and self._target is not event:
            self._target.remove_callback(self._resume)
        self._target = None

        # Hot loop: bind the generator's send/throw once per resume and
        # test slots directly instead of going through properties.
        send = self._generator.send
        throw = self._generator.throw
        env._active = self
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    event.defused = True
                    target = throw(event._value)
            except StopIteration as exc:
                env._active = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                env._active = None
                self.fail(exc)
                return

            if not isinstance(target, SimEvent):
                env._active = None
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}")
                self.fail(error)
                return
            if target.callbacks is None:
                # Already processed: resume immediately with its outcome.
                event = target
                continue
            target.callbacks.append(self._resume)
            self._target = target
            env._active = None
            return


class Condition(SimEvent):
    """Composite event over several sub-events.

    Triggers when ``evaluate(events, n_done)`` returns True.  Its value is
    an ordered dict mapping each *triggered* sub-event to that event's
    value.  If any sub-event fails, the condition fails with the same
    exception.
    """

    def __init__(self, env: "Environment", events: Iterable[SimEvent],
                 evaluate: Callable[[list[SimEvent], int], bool]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition spans multiple environments")
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _collect(self) -> dict[SimEvent, Any]:
        # Only *processed* sub-events count: a Timeout is value-bearing
        # from construction, but it has not "happened" until the loop
        # pops it.
        return {ev: ev._value for ev in self.events
                if ev.processed and ev._ok}

    def _check(self, event: SimEvent) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self.events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Condition that triggers once *all* sub-events have triggered."""

    def __init__(self, env: "Environment",
                 events: Iterable[SimEvent]) -> None:
        super().__init__(env, events, lambda evs, n: n >= len(evs))


class AnyOf(Condition):
    """Condition that triggers once *any* sub-event has triggered."""

    def __init__(self, env: "Environment",
                 events: Iterable[SimEvent]) -> None:
        super().__init__(env, events, lambda evs, n: n >= 1)


class Environment:
    """The simulation environment: virtual clock plus event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, SimEvent]] = []
        self._seq = 0
        self._active: Optional[Process] = None
        #: Total events processed by :meth:`step` (throughput metric).
        self.events_processed = 0

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active

    # -- event construction -----------------------------------------------

    def event(self) -> SimEvent:
        """Create a fresh untriggered event."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[SimEvent, Any, Any],
                name: str | None = None) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        """Condition satisfied when every event in ``events`` triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        """Condition satisfied when at least one event triggered."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _enqueue(self, event: SimEvent, priority: int,
                 delay: float = 0.0) -> None:
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay!r}s in the past")
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._queue, (self._now + delay, priority, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = _heappop(self._queue)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for fn in callbacks:
            fn(event)
        if not event._ok and not event.defused:
            # An event failed and nobody was listening: surface the error
            # instead of silently losing it.
            raise event._value

    def run(self, until: float | SimEvent | None = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            a float — run until virtual time reaches that instant.
            a :class:`SimEvent` — run until the event is processed and
            return its value (re-raising its exception on failure).
        """
        queue = self._queue
        step = self.step
        if until is None:
            while queue:
                step()
            return None

        if isinstance(until, SimEvent):
            stop = until
            if stop.processed:
                if stop._ok:
                    return stop._value
                raise stop._value
            finished = []
            stop.add_callback(finished.append)
            while queue and not finished:
                step()
            if not finished:
                raise SimulationError(
                    "schedule ran dry before the awaited event triggered")
            if stop._ok:
                return stop._value
            stop.defused = True
            raise stop._value

        horizon = float(until)
        if horizon < self._now:
            raise SchedulingError(
                f"cannot run until {horizon} (now is {self._now})")
        while queue and queue[0][0] <= horizon:
            step()
        self._now = horizon
        return None


class WindowScheduler:
    """Conservative-lookahead barrier arithmetic for sharded runs.

    Several :class:`Environment` instances (one per shard) advance in
    lockstep windows.  The invariant that makes a window ``[T, W)``
    safe to run without mid-window synchronisation is that no
    cross-shard event sent during the window can *arrive* inside it.
    Cross-shard hops travel over cut links whose latency is at least
    ``lookahead`` seconds, and a shard only sends while processing an
    event, so with ``A`` the earliest activity across all shards (next
    local event or pending cross-shard arrival), every new arrival
    lands at or after ``A + lookahead``.  The scheduler therefore
    advances the barrier to ``min(horizon, max(T + lookahead,
    A + lookahead))`` — the classic null-message jump: idle stretches
    are crossed in one window instead of ``lookahead``-sized steps.
    """

    def __init__(self, lookahead: float, horizon: float) -> None:
        if lookahead <= 0:
            raise SchedulingError(
                f"lookahead must be positive, got {lookahead!r}")
        if horizon <= 0:
            raise SchedulingError(
                f"horizon must be positive, got {horizon!r}")
        self.lookahead = float(lookahead)
        self.horizon = float(horizon)
        self.windows = 0

    def next_barrier(self, now: float,
                     next_event_times: Iterable[float],
                     pending_arrivals: Iterable[float] = ()) -> float:
        """The next safe barrier after ``now``.

        ``next_event_times`` are each shard's next local event time
        (``Environment.peek()``, ``inf`` when idle);
        ``pending_arrivals`` are arrival times of cross-shard events
        already in flight but not yet delivered to their shard.
        """
        activity = min(
            min(next_event_times, default=float("inf")),
            min(pending_arrivals, default=float("inf")))
        if activity == float("inf"):
            barrier = self.horizon
        else:
            barrier = min(self.horizon,
                          max(now, activity) + self.lookahead)
        if barrier <= now:
            raise SchedulingError(
                f"barrier {barrier} does not advance past {now}")
        self.windows += 1
        return barrier

    def admissible(self, send_time: float, arrival_time: float) -> bool:
        """True when a cross-shard event respects the lookahead bound."""
        return arrival_time >= send_time + self.lookahead
