"""Backwards-compatible alias for :mod:`repro.runtime.series`.

The time-series classes were always backend-neutral; they now live in
the runtime layer so the live asyncio backend can use them without
importing the simulator.  This module re-exports them (same class
objects, so ``isinstance`` checks and pickles keep working).
"""

from __future__ import annotations

from repro.runtime.series import (CounterTrace, EwmaLoad, TimeSeries,
                                  WindowAverage)

__all__ = ["TimeSeries", "CounterTrace", "WindowAverage", "EwmaLoad"]
