"""Discrete-event cluster simulator substrate.

Replaces the paper's physical testbed (8 × quad Pentium Pro / switched
100 Mbps Ethernet / Linux 2.4) for the reproduction.  See DESIGN.md §2
for the substitution rationale.
"""

from repro.sim.core import (AllOf, AnyOf, Condition, Environment, Process,
                            SimEvent, Timeout, WindowScheduler)
from repro.sim.cluster import Cluster, PAPER_NODE_NAMES, build_cluster
from repro.sim.cpu import CPU, CpuJob
from repro.sim.disk import Disk
from repro.sim.faults import FaultInjector, FaultPlane
from repro.sim.link import Flow, FlowKind, Link
from repro.sim.memory import Allocation, Memory
from repro.sim.network import Fabric, FixedFlowHandle, HostPort, \
    SharedSegment, TransferHandle
from repro.sim.node import KernelCostModel, Node, NodeConfig
from repro.sim.power import Battery
from repro.sim.rng import RngHub
from repro.sim.stores import Container, PriorityItem, PriorityStore, \
    Resource, Store
from repro.sim.shard import (ShardedBus, ShardedRunResult,
                             ShardResult, ShardRouter, ShardSpec,
                             ShardWorld, run_sharded)
from repro.sim.topology import (DEFAULT_SHARD_LOOKAHEAD, GraphFabric,
                                ShardPlan, build_graph_cluster,
                                line_topology, partition_nodes,
                                partition_placement, tree_topology)
from repro.sim.transport import Connection, Message, NetStack, Protocol
from repro.sim.trace import CounterTrace, EwmaLoad, TimeSeries, \
    WindowAverage

__all__ = [
    "AllOf", "AnyOf", "Condition", "Environment", "Process", "SimEvent",
    "Timeout", "WindowScheduler",
    "Cluster", "PAPER_NODE_NAMES", "build_cluster",
    "CPU", "CpuJob", "Disk", "Memory", "Allocation",
    "FaultInjector", "FaultPlane",
    "Flow", "FlowKind", "Link",
    "Fabric", "FixedFlowHandle", "HostPort", "SharedSegment",
    "TransferHandle",
    "KernelCostModel", "Node", "NodeConfig",
    "Battery", "RngHub",
    "Container", "PriorityItem", "PriorityStore", "Resource", "Store",
    "GraphFabric", "build_graph_cluster", "line_topology",
    "tree_topology",
    "DEFAULT_SHARD_LOOKAHEAD", "ShardPlan", "partition_nodes",
    "partition_placement",
    "ShardedBus", "ShardedRunResult", "ShardResult", "ShardRouter",
    "ShardSpec", "ShardWorld", "run_sharded",
    "Connection", "Message", "NetStack", "Protocol",
    "CounterTrace", "EwmaLoad", "TimeSeries", "WindowAverage",
]
