"""Switched-Ethernet fabric built on the fluid link model.

Topology (matching the paper's testbed): every host has a full-duplex
access link (TX + RX, 100 Mbps each) into an ideal switch.  Hosts can
optionally sit behind a *shared segment* — an extra link that all their
traffic traverses — which is how the Fig 10 experiment ("two nodes
sharing a link between client and server") is reproduced.

The fabric is event-driven: whenever the flow set changes it settles
byte progress, recomputes all rates with the max-min allocator, and
re-arms a single completion timer for the earliest-finishing elastic
flow.  Elastic transfers complete their ``done`` event after the path's
propagation latency.

Scalability: the fabric keeps a :class:`~repro.sim.link.FlowIndex`
current across flow churn so each reallocation skips the per-call map
rebuild, caches host-pair paths, and supports *batched* flow updates
(:meth:`Fabric.batch`) so a publish fanning out to hundreds of
subscribers triggers one reallocation instead of one per target.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.errors import NetworkError, RoutingError
from repro.sim.core import Environment, SimEvent
from repro.sim.link import (Flow, FlowIndex, FlowKind, Link,
                            allocate_rates, settle_flows)
from repro.units import mbps, usec

__all__ = ["Fabric", "HostPort", "SharedSegment", "FixedFlowHandle",
           "TransferHandle"]


@dataclass
class SharedSegment:
    """A shared collision/backbone domain hosts can be attached behind."""

    name: str
    link: Link


class HostPort:
    """A host's attachment point: one TX and one RX link to the switch."""

    def __init__(self, name: str, tx: Link, rx: Link,
                 segment: Optional[SharedSegment] = None) -> None:
        self.name = name
        self.tx = tx
        self.rx = rx
        self.segment = segment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        seg = f" via {self.segment.name}" if self.segment else ""
        return f"<HostPort {self.name}{seg}>"


class FixedFlowHandle:
    """Handle for an open-loop fixed-rate flow (close it to stop)."""

    def __init__(self, fabric: "Fabric", flow: Flow) -> None:
        self._fabric = fabric
        self.flow = flow
        self.opened_at = fabric.env.now
        self.closed = False

    @property
    def rate(self) -> float:
        """Currently carried rate (bytes/s)."""
        self._fabric._settle()
        return self.flow.rate

    @property
    def loss_fraction(self) -> float:
        self._fabric._settle()
        return self.flow.loss_fraction

    @property
    def lost_bytes(self) -> float:
        """Cumulative bytes offered but dropped."""
        self._fabric._settle()
        return self.flow.lost_bytes

    @property
    def carried_bytes(self) -> float:
        """Cumulative bytes actually delivered."""
        self._fabric._settle()
        return self.flow.carried_bytes

    def set_demand(self, demand: float) -> None:
        """Change the offered rate without tearing the flow down."""
        if self.closed:
            raise NetworkError("flow already closed")
        if demand <= 0:
            raise NetworkError("demand must be positive")
        self._fabric._settle()
        self.flow.demand = float(demand)
        self._fabric._reallocate()

    def close(self) -> None:
        """Stop offering traffic (idempotent)."""
        if not self.closed:
            self.closed = True
            self._fabric._remove_flow(self.flow)


class TransferHandle:
    """Handle for an in-flight elastic transfer."""

    def __init__(self, flow: Flow, done: SimEvent) -> None:
        self.flow = flow
        self.done = done

    @property
    def rate(self) -> float:
        return self.flow.rate

    @property
    def remaining(self) -> float:
        return self.flow.remaining


class Fabric:
    """The cluster's switched network."""

    def __init__(self, env: Environment,
                 access_capacity: float = mbps(100),
                 access_latency: float = usec(50),
                 switch_latency: float = usec(10)) -> None:
        self.env = env
        self.access_capacity = float(access_capacity)
        self.access_latency = float(access_latency)
        self.switch_latency = float(switch_latency)
        self.hosts: dict[str, HostPort] = {}
        self.segments: dict[str, SharedSegment] = {}
        #: Attached fault state (set by ``repro.sim.faults.FaultInjector``);
        #: ``None`` means a fault-free fabric and zero added overhead.
        self.faults = None
        #: Live flows in add order (fid -> Flow; O(1) removal).
        self._flows: dict[int, Flow] = {}
        #: Per-link flow maps, kept current across flow churn.
        self._index = FlowIndex()
        self._path_cache: dict[tuple[str, str], tuple[Link, ...]] = {}
        self._last_settle = env.now
        self._timer_generation = 0
        self._batch_depth = 0

    # -- topology ------------------------------------------------------------

    def add_segment(self, name: str,
                    capacity: float | None = None,
                    latency: float = 0.0) -> SharedSegment:
        """Create a shared segment hosts can be attached behind."""
        if name in self.segments:
            raise NetworkError(f"segment {name!r} already exists")
        cap = self.access_capacity if capacity is None else capacity
        seg = SharedSegment(name, Link(f"seg:{name}", cap, latency))
        self.segments[name] = seg
        return seg

    def add_host(self, name: str,
                 capacity: float | None = None,
                 segment: SharedSegment | str | None = None) -> HostPort:
        """Attach a host with a full-duplex access link."""
        if name in self.hosts:
            raise NetworkError(f"host {name!r} already attached")
        cap = self.access_capacity if capacity is None else capacity
        if isinstance(segment, str):
            try:
                segment = self.segments[segment]
            except KeyError:
                raise RoutingError(f"unknown segment {segment!r}") from None
        port = HostPort(
            name,
            tx=Link(f"{name}:tx", cap, self.access_latency),
            rx=Link(f"{name}:rx", cap, self.access_latency),
            segment=segment,
        )
        self.hosts[name] = port
        return port

    def path(self, src: str, dst: str) -> tuple[Link, ...]:
        """Links traversed from ``src`` to ``dst`` (TX, segments, RX)."""
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        if src == dst:
            raise RoutingError(f"no self-path for host {src!r}")
        try:
            sport, dport = self.hosts[src], self.hosts[dst]
        except KeyError as exc:
            raise RoutingError(f"unknown host {exc.args[0]!r}") from None
        links: list[Link] = [sport.tx]
        # Traffic crossing in or out of a segment traverses it once; two
        # hosts on the same segment also share it.
        segs = []
        if sport.segment is not None:
            segs.append(sport.segment.link)
        if dport.segment is not None and (
                sport.segment is None
                or dport.segment.link is not sport.segment.link):
            segs.append(dport.segment.link)
        links.extend(segs)
        links.append(dport.rx)
        result = tuple(links)
        self._path_cache[(src, dst)] = result
        return result

    # -- traffic -------------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: float,
                 name: str = "xfer") -> TransferHandle:
        """Start a reliable elastic transfer of ``nbytes``.

        Returns a handle whose ``done`` event fires once the last byte
        has been serialised *and* propagated (path latency + switch).
        """
        if nbytes <= 0:
            raise NetworkError("transfer size must be positive")
        links = self.path(src, dst)
        done = self.env.event()
        flow = Flow(path=links, kind=FlowKind.ELASTIC,
                    remaining=float(nbytes), name=name, done=done)
        self._add_flow(flow)
        return TransferHandle(flow, done)

    def open_fixed_flow(self, src: str, dst: str, demand: float,
                        name: str = "udp") -> FixedFlowHandle:
        """Open an open-loop fixed-rate flow (UDP-style perturbation)."""
        links = self.path(src, dst)
        flow = Flow(path=links, kind=FlowKind.FIXED,
                    demand=float(demand), name=name)
        self._add_flow(flow)
        return FixedFlowHandle(self, flow)

    @contextmanager
    def batch(self):
        """Group several flow additions/removals into one reallocation.

        All changes inside the ``with`` block happen at the same
        simulated instant (no events are processed mid-callback), so
        settling once on entry and reallocating once on exit is
        equivalent to — and much cheaper than — reallocating per
        change.  Batches nest; only the outermost one reallocates.
        """
        if self._batch_depth == 0:
            self._settle()
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._reallocate()

    def flows_through(self, link: Link) -> list[Flow]:
        """All live flows whose path includes ``link``."""
        return self._index.flows_on(link)

    def available_bandwidth(self, src: str, dst: str) -> float:
        """Instantaneous residual capacity on the src→dst path.

        This is what NET_MON reports as 'available bandwidth': the
        tightest link's capacity minus its currently allocated rates.
        """
        self._settle()
        index = self._index
        best = math.inf
        for link in self.path(src, dst):
            used = index.allocated_on(link)
            free = link.capacity - used
            best = min(best, free if free > 0.0 else 0.0)
        return best

    def link_congestion(self, link: Link) -> float:
        """Fractional load on one link: max(allocated, offered)/capacity."""
        index = self._index
        used = index.allocated_on(link)
        offered = index.offered_on(link)
        return (used if used > offered else offered) / link.capacity

    def settle(self) -> None:
        """Bring all flow/link byte accounting up to the current instant."""
        self._settle()

    # -- internals ------------------------------------------------------------

    def _add_flow(self, flow: Flow) -> None:
        if self._batch_depth == 0:
            self._settle()
        self._flows[flow.fid] = flow
        self._index.add(flow)
        if self._batch_depth == 0:
            self._reallocate()

    def _remove_flow(self, flow: Flow) -> None:
        if self._batch_depth == 0:
            self._settle()
        if self._flows.pop(flow.fid, None) is None:
            raise NetworkError("flow is not live")
        self._index.remove(flow)
        if self._batch_depth == 0:
            self._reallocate()

    def _settle(self) -> None:
        """Advance all flow byte counters to ``env.now``."""
        now = self.env.now
        dt = now - self._last_settle
        if dt <= 0:
            self._last_settle = now
            return
        flows = self._flows.values()
        settle_flows(flows, dt)
        for f in flows:
            carried = f.rate * dt
            if f.kind is FlowKind.FIXED and f.demand > f.rate:
                dropped = (f.demand - f.rate) * dt
                for link in f.path:
                    link.carried.add(now, carried)
                    link.dropped.add(now, dropped)
            else:
                for link in f.path:
                    link.carried.add(now, carried)
        self._last_settle = now

    def _reallocate(self) -> None:
        """Recompute rates and re-arm the completion timer."""
        flows = self._flows
        index = self._index
        allocate_rates(flows.values(), index=index)
        # Finish elastic flows that have drained.
        finished = [f for f in index.elastic.values()
                    if f.remaining <= 1e-6]
        for f in finished:
            del flows[f.fid]
            index.remove(f)
            latency = f.path_latency + self.switch_latency
            delivery = self.env.timeout(latency)
            done = f.done
            assert done is not None
            delivery.add_callback(lambda _ev, d=done, fl=f: d.succeed(fl))
        if finished:
            allocate_rates(flows.values(), index=index)

        self._timer_generation += 1
        eta = math.inf
        for f in index.elastic.values():
            rate = f.rate
            if rate > 0:
                t = f.remaining / rate
                if t < eta:
                    eta = t
        if math.isinf(eta):
            return
        generation = self._timer_generation
        timer = self.env.timeout(eta)
        timer.add_callback(lambda _ev: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return
        self._settle()
        self._reallocate()
