"""Deterministic fault injection for the cluster simulator.

The paper's central fault-tolerance claim is that dproc's peer-to-peer
KECho channels "avoid central master collection points".  Testing that
claim needs failures richer than cleanly stopping a d-mon, so this
module provides them:

* **link partitions** — the host set is split into groups; messages
  crossing a group boundary are dropped (both at send time and for
  traffic already in flight when the partition lands);
* **probabilistic message loss** — a global probability, per-pair
  probabilities, and per-fabric-link probabilities compose (a message
  survives only if it survives every lossy element on its path);
* **delivery stalls** — extra seconds added to a delivery, modelling a
  degraded rather than severed path;
* **node crash / reboot** — a crashed host neither sends nor receives;
  registered handlers let higher layers (e.g. a dproc deployment) stop
  and restart their per-node services at the same instants.

Two classes split the work:

* :class:`FaultPlane` is pure queryable state, attached to the fabric
  as ``fabric.faults``; the transport layer consults it on every send
  and delivery.  With no plane attached (the default) the data path is
  untouched and — crucially for reproducibility — *no* extra RNG draws
  happen.
* :class:`FaultInjector` owns a plane, mutates it (immediately or on a
  schedule expressed in simulated time), and keeps a time-stamped
  :attr:`~FaultInjector.log` of every action.

Determinism: scheduled faults ride the simulator's event queue, and
loss sampling draws from the *sending node's* seeded RNG stream, so a
given master seed always yields the identical failure schedule, the
identical set of dropped messages, and the identical recovery trace.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.errors import FaultInjectionError

__all__ = ["FaultPlane", "FaultInjector"]

CrashHandler = Callable[[str], None]


def _check_probability(p: float) -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise FaultInjectionError(
            f"loss probability must be in [0, 1], got {p!r}")
    return p


class FaultPlane:
    """Queryable fault state consulted by the transport on every message.

    All mutators are idempotent and take effect instantly; scheduling
    lives in :class:`FaultInjector`.  Loss probabilities compose as
    independent drop chances: ``1 - (1-p_global)·(1-p_pair)·Π(1-p_link)``.
    """

    def __init__(self) -> None:
        #: Hosts currently crashed (neither send nor receive).
        self.down_hosts: set[str] = set()
        #: host -> partition group id; empty when no partition is active.
        self._group_of: dict[str, int] = {}
        self._default_loss = 0.0
        self._pair_loss: dict[tuple[str, str], float] = {}
        #: Loss keyed by :attr:`~repro.sim.link.Link.name`.
        self._link_loss: dict[str, float] = {}
        self._default_stall = 0.0
        self._pair_stall: dict[tuple[str, str], float] = {}

    # -- queries (transport hot path) ---------------------------------------

    @property
    def active(self) -> bool:
        """True when any fault is currently configured."""
        return bool(self.down_hosts or self._group_of
                    or self._default_loss or self._pair_loss
                    or self._link_loss or self._default_stall
                    or self._pair_stall)

    def node_down(self, host: str) -> bool:
        return host in self.down_hosts

    def partitioned(self, src: str, dst: str) -> bool:
        """True when an active partition separates the two hosts.

        Hosts not named in any partition group keep full connectivity.
        """
        groups = self._group_of
        if not groups:
            return False
        a = groups.get(src)
        b = groups.get(dst)
        return a is not None and b is not None and a != b

    def blocked(self, src: str, dst: str) -> bool:
        """Hard failure on the src→dst path (crash or partition)."""
        return (src in self.down_hosts or dst in self.down_hosts
                or self.partitioned(src, dst))

    def blocked_reason(self, src: str, dst: str) -> Optional[str]:
        """Which fault blocks the src→dst path (None when open).

        Used by trace-aware drop accounting: a failed hop span is
        annotated with the fault *kind*, not just "blocked".
        """
        if src in self.down_hosts:
            return f"crash:{src}"
        if dst in self.down_hosts:
            return f"crash:{dst}"
        if self.partitioned(src, dst):
            return "partition"
        return None

    def loss_probability(self, src: str, dst: str,
                         path: Sequence = ()) -> float:
        """Combined drop probability for one src→dst message.

        ``path`` is the sequence of fabric links the message traverses
        (used for per-link loss); pass the fabric's cached path tuple.
        """
        survive = (1.0 - self._default_loss) \
            * (1.0 - self._pair_loss.get((src, dst), 0.0))
        if self._link_loss:
            for link in path:
                p = self._link_loss.get(link.name)
                if p:
                    survive *= 1.0 - p
        return 1.0 - survive

    def extra_delay(self, src: str, dst: str) -> float:
        """Injected stall (seconds) for one src→dst delivery."""
        stall = self._pair_stall.get((src, dst))
        return self._default_stall if stall is None else stall

    # -- mutators ------------------------------------------------------------

    def set_loss(self, p: float, src: Optional[str] = None,
                 dst: Optional[str] = None) -> None:
        """Set message loss: global when src/dst omitted, else per-pair
        (directional).  ``p = 0`` clears the rule."""
        p = _check_probability(p)
        if src is None and dst is None:
            self._default_loss = p
        elif src is not None and dst is not None:
            if p == 0.0:
                self._pair_loss.pop((src, dst), None)
            else:
                self._pair_loss[(src, dst)] = p
        else:
            raise FaultInjectionError(
                "per-pair loss needs both src and dst")

    def set_link_loss(self, link_name: str, p: float) -> None:
        """Set loss on one fabric link (e.g. ``'alan:tx'``, ``'seg:s0'``)."""
        p = _check_probability(p)
        if p == 0.0:
            self._link_loss.pop(link_name, None)
        else:
            self._link_loss[link_name] = p

    def clear_loss(self) -> None:
        """Remove every loss rule (global, pair and link)."""
        self._default_loss = 0.0
        self._pair_loss.clear()
        self._link_loss.clear()

    def set_stall(self, seconds: float, src: Optional[str] = None,
                  dst: Optional[str] = None) -> None:
        """Add ``seconds`` of extra delay to deliveries (0 clears)."""
        seconds = float(seconds)
        if seconds < 0:
            raise FaultInjectionError(
                f"stall must be non-negative, got {seconds!r}")
        if src is None and dst is None:
            self._default_stall = seconds
        elif src is not None and dst is not None:
            if seconds == 0.0:
                self._pair_stall.pop((src, dst), None)
            else:
                self._pair_stall[(src, dst)] = seconds
        else:
            raise FaultInjectionError(
                "per-pair stall needs both src and dst")

    def set_partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Partition the listed hosts into isolated groups.

        Replaces any existing partition.  A host appearing in no group
        can still reach everyone.
        """
        group_of: dict[str, int] = {}
        for gid, group in enumerate(groups):
            for host in group:
                if host in group_of:
                    raise FaultInjectionError(
                        f"host {host!r} appears in two partition groups")
                group_of[host] = gid
        self._group_of = group_of

    def heal_partition(self) -> None:
        self._group_of = {}

    def mark_down(self, host: str) -> None:
        self.down_hosts.add(host)

    def mark_up(self, host: str) -> None:
        self.down_hosts.discard(host)


class FaultInjector:
    """Schedules deterministic faults against one cluster.

    Attaches a :class:`FaultPlane` to the cluster's fabric and offers
    immediate and time-scheduled mutations.  Every executed action is
    appended to :attr:`log` as ``(sim_time, description)`` — two runs
    with the same seed produce identical logs.

    Crash/reboot callbacks let service layers participate: a dproc
    harness registers ``on_crash → dproc.stop()`` and ``on_reboot →
    dproc.start()`` so the monitored software dies and rejoins with the
    simulated hardware.
    """

    def __init__(self, cluster) -> None:
        """``cluster`` needs ``.env`` and ``.fabric`` (a
        :class:`~repro.sim.cluster.Cluster` or compatible)."""
        self.env = cluster.env
        self.fabric = cluster.fabric
        self.plane = FaultPlane()
        self.fabric.faults = self.plane
        #: Executed fault actions: ``(sim_time, description)``.
        self.log: list[tuple[float, str]] = []
        self._crash_handlers: list[CrashHandler] = []
        self._reboot_handlers: list[CrashHandler] = []

    # -- handler registration -------------------------------------------------

    def on_crash(self, handler: CrashHandler) -> None:
        """Call ``handler(host)`` whenever a host crashes."""
        self._crash_handlers.append(handler)

    def on_reboot(self, handler: CrashHandler) -> None:
        """Call ``handler(host)`` whenever a host finishes rebooting."""
        self._reboot_handlers.append(handler)

    # -- immediate faults ------------------------------------------------------

    def set_message_loss(self, p: float, src: Optional[str] = None,
                         dst: Optional[str] = None) -> None:
        self.plane.set_loss(p, src, dst)
        scope = "all links" if src is None and dst is None \
            else f"{src}->{dst}"
        self._log(f"loss {p:g} on {scope}")

    def set_link_loss(self, link_name: str, p: float) -> None:
        self.plane.set_link_loss(link_name, p)
        self._log(f"loss {p:g} on link {link_name}")

    def clear_message_loss(self) -> None:
        self.plane.clear_loss()
        self._log("loss cleared")

    def set_stall(self, seconds: float, src: Optional[str] = None,
                  dst: Optional[str] = None) -> None:
        self.plane.set_stall(seconds, src, dst)
        scope = "all links" if src is None and dst is None \
            else f"{src}->{dst}"
        self._log(f"stall {seconds:g}s on {scope}")

    def partition(self, *groups: Iterable[str]) -> None:
        """Partition hosts into the given isolated groups (immediate)."""
        frozen = [tuple(g) for g in groups]
        for group in frozen:
            for host in group:
                if host not in self.fabric.hosts:
                    raise FaultInjectionError(
                        f"unknown host {host!r} in partition group")
        self.plane.set_partition(frozen)
        self._log("partition " + " | ".join(
            ",".join(g) for g in frozen))

    def heal(self) -> None:
        self.plane.heal_partition()
        self._log("partition healed")

    def crash(self, host: str) -> None:
        """Crash ``host`` now: it stops sending/receiving and its crash
        handlers run (abrupt — no clean shutdown is implied)."""
        if host not in self.fabric.hosts:
            raise FaultInjectionError(f"unknown host {host!r}")
        self.plane.mark_down(host)
        self._log(f"crash {host}")
        for handler in self._crash_handlers:
            handler(host)

    def reboot(self, host: str) -> None:
        """Bring a crashed ``host`` back and run its reboot handlers."""
        if host not in self.fabric.hosts:
            raise FaultInjectionError(f"unknown host {host!r}")
        self.plane.mark_up(host)
        self._log(f"reboot {host}")
        for handler in self._reboot_handlers:
            handler(host)

    # -- scheduled faults ------------------------------------------------------

    def at(self, when: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute simulated time ``when``."""
        delay = when - self.env.now
        if delay < 0:
            raise FaultInjectionError(
                f"cannot schedule a fault at {when} (now is "
                f"{self.env.now})")
        timer = self.env.timeout(delay)
        timer.add_callback(lambda _ev: action())

    def schedule_loss(self, at: float, p: float,
                      src: Optional[str] = None,
                      dst: Optional[str] = None,
                      until: Optional[float] = None) -> None:
        """Enable message loss at ``at``; clear it again at ``until``."""
        self.at(at, lambda: self.set_message_loss(p, src, dst))
        if until is not None:
            if until <= at:
                raise FaultInjectionError(
                    "loss end time must be after its start")
            self.at(until, lambda: self.set_message_loss(0.0, src, dst))

    def schedule_partition(self, at: float,
                           groups: Sequence[Iterable[str]],
                           heal_at: Optional[float] = None) -> None:
        frozen = [tuple(g) for g in groups]
        self.at(at, lambda: self.partition(*frozen))
        if heal_at is not None:
            if heal_at <= at:
                raise FaultInjectionError(
                    "heal time must be after the partition time")
            self.at(heal_at, self.heal)

    def schedule_crash(self, at: float, host: str,
                       reboot_at: Optional[float] = None) -> None:
        self.at(at, lambda: self.crash(host))
        if reboot_at is not None:
            if reboot_at <= at:
                raise FaultInjectionError(
                    "reboot time must be after the crash time")
            self.at(reboot_at, lambda: self.reboot(host))

    # -- internals ------------------------------------------------------------

    def _log(self, text: str) -> None:
        self.log.append((self.env.now, text))
