"""Deterministic named random-number streams.

Every stochastic element of the simulator (network jitter, workload
arrivals, loss sampling, ...) draws from its own named stream so that

* two runs with the same master seed are bit-identical, and
* adding a new consumer of randomness does not perturb existing streams.

Streams are derived from the master seed with :class:`numpy.random.SeedSequence`
spawned by a stable hash of the stream name.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngHub"]


class RngHub:
    """Factory of named, deterministic :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream object, so state
        advances across calls — callers share one logical sequence per
        name.
        """
        gen = self._streams.get(name)
        if gen is None:
            tag = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence([self.master_seed, tag])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngHub":
        """Derive an independent hub (e.g. one per experiment repetition)."""
        return RngHub(master_seed=(self.master_seed * 1_000_003 + salt))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RngHub(master_seed={self.master_seed}, "
                f"streams={sorted(self._streams)})")
