"""A cluster node: CPUs, memory, disk, NIC and kernel cost accounting.

The :class:`KernelCostModel` centralises every calibration constant that
turns protocol activity into CPU time.  These constants are **global**
(never tuned per experiment); they were fitted once against the paper's
measured overheads (Figures 6–8, see EXPERIMENTS.md) and then reused by
all benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Generator

import numpy as np

from repro.errors import SimulationError
from repro.sim.core import Environment, Process, SimEvent
from repro.sim.cpu import CPU
from repro.sim.disk import Disk
from repro.sim.memory import Memory
from repro.sim.network import Fabric
from repro.sim.transport import NetStack
from repro.telemetry import TelemetryRegistry
from repro.tracing.collector import NULL_TRACER
from repro.units import MB, usec

__all__ = ["KernelCostModel", "NodeConfig", "Node"]


@dataclass(frozen=True)
class KernelCostModel:
    """CPU costs (seconds) of kernel-level messaging and monitoring.

    Calibration targets (paper, 8-node cluster of 200 MHz Pentium Pros):

    * Fig 6 — submitting one ~75 B monitoring event to 7 subscribers
      costs ≈ 1.8 ms  →  ``encode + 7·send(75 B)``.
    * Fig 7 — the same with 5 KB events costs ≈ 4.8 ms.
    * Fig 8 — handling 7 incoming events per polling iteration costs
      ≈ 2.2 ms  →  ``7·receive(75 B)``.
    """

    #: Event serialisation: fixed + per-byte cost (PBIO-style encode).
    encode_base: float = usec(20)
    encode_per_byte: float = usec(0.07)
    #: Per-subscriber kernel socket send: fixed + per-byte.
    send_base: float = usec(239)
    send_per_byte: float = usec(0.0743)
    #: Per-event receive-path handling (softirq + handler dispatch).
    receive_base: float = usec(300)
    receive_per_byte: float = usec(0.012)
    #: Executing one compiled E-code filter over one event.
    filter_exec: float = usec(18)
    #: Evaluating one parameter rule (threshold / period check).
    param_check: float = usec(2)
    #: Dynamically compiling an E-code filter string (one-off).
    filter_compile: float = usec(1500)
    #: Polling one registered monitoring module's callback.
    module_poll: float = usec(25)
    #: CPU_MON kernel thread: one walk of the task list.
    tasklist_walk: float = usec(40)
    #: PROC_MON: sampling one process-table row (per-PID stat read).
    proc_sample: float = usec(1)

    def encode_cost(self, size: float) -> float:
        """CPU seconds to serialise an event of ``size`` bytes."""
        return self.encode_base + self.encode_per_byte * size

    def send_cost(self, size: float, n_subscribers: int) -> float:
        """CPU seconds to push one event to ``n_subscribers`` sockets."""
        return n_subscribers * (self.send_base + self.send_per_byte * size)

    def receive_cost(self, size: float) -> float:
        """CPU seconds to receive and dispatch one incoming event."""
        return self.receive_base + self.receive_per_byte * size


@dataclass(frozen=True)
class NodeConfig:
    """Static hardware description of a node.

    The defaults model the paper's testbed machines for the purpose of
    *contention*: linpack is single-threaded, so kernel monitoring work
    steals cycles from the one CPU it runs on — a single-CPU
    processor-sharing model captures that directly (documented
    substitution; see DESIGN.md §5).
    """

    n_cpus: int = 1
    mflops_per_cpu: float = 17.4
    memory_bytes: float = MB(512)
    disk_rate: float = MB(20)
    costs: KernelCostModel = field(default_factory=KernelCostModel)
    #: Collect self-telemetry (counters/histograms/spans) on this node.
    #: Purely observational — event scheduling, RNG draws and kernel
    #: cost accounting are identical either way.
    telemetry: bool = True

    def with_cpus(self, n_cpus: int) -> "NodeConfig":
        """Convenience for heterogeneous clusters."""
        return replace(self, n_cpus=n_cpus)


class Node:
    """A simulated cluster machine."""

    def __init__(self, env: Environment, name: str, fabric: Fabric,
                 rng: np.random.Generator,
                 config: NodeConfig | None = None,
                 segment: Any = None) -> None:
        self.env = env
        self.name = name
        self.config = config or NodeConfig()
        self.rng = rng
        self.telemetry = TelemetryRegistry(
            scope=name, enabled=self.config.telemetry)
        self.cpu = CPU(env, n_cpus=self.config.n_cpus,
                       mflops_per_cpu=self.config.mflops_per_cpu)
        self.memory = Memory(env, capacity_bytes=self.config.memory_bytes)
        self.disk = Disk(env, transfer_rate=self.config.disk_rate)
        self.port = fabric.add_host(name, segment=segment)
        self.stack = NetStack(
            env, name, fabric, rng,
            kernel_charge=self.charge_kernel_seconds,
            receive_cost=self.config.costs.receive_cost,
            telemetry=self.telemetry)
        #: Causal-trace collector; the disabled singleton until
        #: :func:`repro.tracing.attach_tracer` replaces it (which also
        #: updates ``stack.tracer`` — keep the two in sync).
        self.tracer = NULL_TRACER
        #: Attached subsystems (dproc toolkit, applications) by name.
        self.services: dict[str, Any] = {}

    # -- helpers ---------------------------------------------------------------

    @property
    def costs(self) -> KernelCostModel:
        return self.config.costs

    def charge_kernel_seconds(self, seconds: float) -> SimEvent:
        """Consume ``seconds`` of one-CPU kernel time (asynchronously).

        The work is submitted to the processor-sharing CPU, so it
        contends with (and perturbs) application jobs — this is the
        mechanism behind the paper's perturbation measurements.
        """
        if seconds < 0:
            raise SimulationError("cannot charge negative time")
        work = seconds * self.config.mflops_per_cpu
        return self.cpu.kernel_work(work, name="kernel")

    def spawn(self, generator: Generator[SimEvent, Any, Any],
              name: str | None = None) -> Process:
        """Start a process logically running on this node."""
        label = f"{self.name}:{name or 'proc'}"
        return self.env.process(generator, name=label)

    def attach_service(self, key: str, service: Any) -> None:
        if key in self.services:
            raise SimulationError(
                f"service {key!r} already attached to {self.name}")
        self.services[key] = service

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} cpus={self.config.n_cpus}>"
