"""Cluster construction helpers.

Builds the paper's testbed in one call: *n* nodes on a switched
100 Mbps fabric, each with CPUs/memory/disk/NIC, deterministic per-node
RNG streams, and full transport wiring (every stack knows every peer).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import SimulationError
from repro.sim.core import Environment
from repro.sim.network import Fabric, SharedSegment
from repro.sim.node import Node, NodeConfig
from repro.sim.rng import RngHub

__all__ = ["Cluster", "PAPER_NODE_NAMES", "build_cluster"]

#: Host names in the style of the paper's examples (alan, maui, etna).
PAPER_NODE_NAMES: tuple[str, ...] = (
    "alan", "maui", "etna", "kilauea", "fuji", "rainier", "hekla", "hood",
)


class Cluster:
    """A set of wired-up nodes sharing one fabric and RNG hub."""

    def __init__(self, env: Environment, fabric: Fabric,
                 rng_hub: RngHub) -> None:
        self.env = env
        self.fabric = fabric
        self.rng = rng_hub
        self.nodes: dict[str, Node] = {}

    def add_node(self, name: str, config: NodeConfig | None = None,
                 segment: SharedSegment | str | None = None) -> Node:
        """Create and wire a node into the cluster."""
        if name in self.nodes:
            raise SimulationError(f"node {name!r} already exists")
        node = Node(self.env, name, self.fabric,
                    rng=self.rng.stream(f"node:{name}"),
                    config=config, segment=segment)
        for other in self.nodes.values():
            other.stack.register_peer(node.stack)
            node.stack.register_peer(other.stack)
        self.nodes[name] = node
        return node

    def __getitem__(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise SimulationError(f"no node named {name!r}") from None

    def __iter__(self):
        return iter(self.nodes.values())

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def names(self) -> list[str]:
        return list(self.nodes)


def build_cluster(env: Environment, nodes: Optional[int] = None,
                  config: NodeConfig | None = None,
                  seed: int = 0,
                  names: Optional[Sequence[str]] = None,
                  node_configs: Optional[Iterable[NodeConfig]] = None,
                  *, n_nodes: Optional[int] = None,
                  ) -> Cluster:
    """Build an *n*-node cluster on a fresh 100 Mbps switched fabric.

    Parameters
    ----------
    nodes:
        Cluster size (default 8, the paper's testbed).
    config:
        Default hardware config for every node.
    node_configs:
        Optional per-node overrides (iterable aligned with names).
    names:
        Host names; defaults to the paper-style names, extended with
        ``nodeK`` beyond eight.
    """
    if n_nodes is not None:
        # The PR 5 alias is gone; fail loudly with the migration.
        raise TypeError("build_cluster() no longer accepts "
                        "'n_nodes'; pass nodes=... instead")
    n_nodes = 8 if nodes is None else nodes
    if n_nodes < 1:
        raise SimulationError("a cluster needs at least one node")
    if names is None:
        names = [PAPER_NODE_NAMES[i] if i < len(PAPER_NODE_NAMES)
                 else f"node{i}" for i in range(n_nodes)]
    names = list(names)
    if len(names) != n_nodes:
        raise SimulationError("names/n_nodes mismatch")
    fabric = Fabric(env)
    cluster = Cluster(env, fabric, RngHub(seed))
    per_node = list(node_configs) if node_configs is not None \
        else [config] * n_nodes
    if len(per_node) != n_nodes:
        raise SimulationError("node_configs/n_nodes mismatch")
    for name, cfg in zip(names, per_node):
        cluster.add_node(name, config=cfg)
    return cluster
