"""Arbitrary multi-switch topologies on top of the fluid fabric.

The base :class:`~repro.sim.network.Fabric` models the paper's testbed:
one ideal switch, optional shared segments.  Grids and large clusters
(the paper's future work) have switch hierarchies; this module provides
:class:`GraphFabric`, which routes over an arbitrary switch graph
described with :mod:`networkx`:

* graph nodes are switches; graph edges are trunks, each realised as a
  pair of directed :class:`~repro.sim.link.Link` objects with
  per-edge ``capacity`` (bytes/s) and ``latency`` attributes;
* hosts attach to a named switch and keep their full-duplex access
  links;
* paths are shortest switch paths (by hop count, latency-weighted),
  computed once and cached.

Everything above routing — max-min allocation, transfers, fixed flows,
transport, KECho, dproc — works unchanged on a :class:`GraphFabric`.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.errors import NetworkError, RoutingError
from repro.sim.cluster import Cluster
from repro.sim.core import Environment
from repro.sim.link import Link
from repro.sim.network import Fabric, HostPort
from repro.sim.node import NodeConfig
from repro.sim.rng import RngHub
from repro.units import mbps, usec

__all__ = ["GraphFabric", "build_graph_cluster", "line_topology",
           "tree_topology"]


class GraphFabric(Fabric):
    """A fabric whose core is an arbitrary switch graph."""

    def __init__(self, env: Environment, graph: nx.Graph,
                 access_capacity: float = mbps(100),
                 access_latency: float = usec(50),
                 trunk_capacity: float = mbps(1000),
                 trunk_latency: float = usec(100),
                 switch_latency: float = usec(10)) -> None:
        """``graph`` edges may carry ``capacity``/``latency`` attributes
        overriding the trunk defaults."""
        super().__init__(env, access_capacity=access_capacity,
                         access_latency=access_latency,
                         switch_latency=switch_latency)
        if graph.number_of_nodes() == 0:
            raise NetworkError("switch graph is empty")
        if not nx.is_connected(graph):
            raise NetworkError("switch graph must be connected")
        self.graph = graph
        self._host_switch: dict[str, str] = {}
        self._trunks: dict[tuple[str, str], Link] = {}
        self._path_cache: dict[tuple[str, str], tuple[Link, ...]] = {}
        for u, v, attrs in graph.edges(data=True):
            capacity = attrs.get("capacity", trunk_capacity)
            latency = attrs.get("latency", trunk_latency)
            self._trunks[(u, v)] = Link(f"trunk:{u}->{v}", capacity,
                                        latency)
            self._trunks[(v, u)] = Link(f"trunk:{v}->{u}", capacity,
                                        latency)

    # -- topology ------------------------------------------------------------

    def add_host(self, name: str,
                 capacity: Optional[float] = None,
                 segment=None, switch: Optional[str] = None) -> HostPort:
        """Attach a host to a switch.

        ``switch`` names the switch; for compatibility with callers of
        the base fabric (:class:`~repro.sim.node.Node` passes
        ``segment``), a string ``segment`` is accepted as the switch
        name as well.
        """
        if switch is None and isinstance(segment, str):
            switch, segment = segment, None
        if switch is None:
            raise RoutingError(
                f"host {name!r} needs a switch to attach to")
        if switch not in self.graph:
            raise RoutingError(f"unknown switch {switch!r}")
        port = super().add_host(name, capacity=capacity, segment=None)
        self._host_switch[name] = switch
        self._path_cache.clear()
        return port

    def switch_of(self, host: str) -> str:
        try:
            return self._host_switch[host]
        except KeyError:
            raise RoutingError(f"unknown host {host!r}") from None

    def trunk(self, u: str, v: str) -> Link:
        """The directed trunk link from switch ``u`` to switch ``v``."""
        try:
            return self._trunks[(u, v)]
        except KeyError:
            raise RoutingError(f"no trunk {u!r} -> {v!r}") from None

    def path(self, src: str, dst: str) -> tuple[Link, ...]:
        if src == dst:
            raise RoutingError(f"no self-path for host {src!r}")
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        try:
            sport, dport = self.hosts[src], self.hosts[dst]
        except KeyError as exc:
            raise RoutingError(f"unknown host {exc.args[0]!r}") \
                from None
        s_switch = self.switch_of(src)
        d_switch = self.switch_of(dst)
        links: list[Link] = [sport.tx]
        if s_switch != d_switch:
            switches = nx.shortest_path(self.graph, s_switch, d_switch,
                                        weight="latency")
            for u, v in zip(switches, switches[1:]):
                links.append(self._trunks[(u, v)])
        links.append(dport.rx)
        result = tuple(links)
        self._path_cache[(src, dst)] = result
        return result


def line_topology(n_switches: int) -> nx.Graph:
    """``s0 - s1 - ... - s(n-1)``: the worst-diameter core."""
    if n_switches < 1:
        raise NetworkError("need at least one switch")
    return nx.path_graph([f"s{i}" for i in range(n_switches)])


def tree_topology(depth: int, fanout: int = 2) -> nx.Graph:
    """Balanced switch tree (datacenter-style aggregation)."""
    if depth < 0 or fanout < 1:
        raise NetworkError("invalid tree parameters")
    tree = nx.balanced_tree(fanout, depth)
    return nx.relabel_nodes(tree, {i: f"s{i}" for i in tree.nodes})


def build_graph_cluster(env: Environment, graph: nx.Graph,
                        placement: dict[str, str],
                        config: NodeConfig | None = None,
                        seed: int = 0,
                        **fabric_kwargs) -> Cluster:
    """Build a cluster whose hosts sit on an arbitrary switch graph.

    ``placement`` maps host name → switch name.
    """
    if not placement:
        raise NetworkError("placement is empty")
    fabric = GraphFabric(env, graph, **fabric_kwargs)
    cluster = Cluster(env, fabric, RngHub(seed))
    for host, switch in placement.items():
        cluster.add_node(host, config=config, segment=switch)
    return cluster
