"""Arbitrary multi-switch topologies on top of the fluid fabric.

The base :class:`~repro.sim.network.Fabric` models the paper's testbed:
one ideal switch, optional shared segments.  Grids and large clusters
(the paper's future work) have switch hierarchies; this module provides
:class:`GraphFabric`, which routes over an arbitrary switch graph
described with :mod:`networkx`:

* graph nodes are switches; graph edges are trunks, each realised as a
  pair of directed :class:`~repro.sim.link.Link` objects with
  per-edge ``capacity`` (bytes/s) and ``latency`` attributes;
* hosts attach to a named switch and keep their full-duplex access
  links;
* paths are shortest switch paths (by hop count, latency-weighted),
  computed once and cached.

Everything above routing — max-min allocation, transfers, fixed flows,
transport, KECho, dproc — works unchanged on a :class:`GraphFabric`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import networkx as nx

from repro.errors import NetworkError, RoutingError
from repro.sim.cluster import Cluster
from repro.sim.core import Environment
from repro.sim.link import Link
from repro.sim.network import Fabric, HostPort
from repro.sim.node import NodeConfig
from repro.sim.rng import RngHub
from repro.units import mbps, msec, usec

__all__ = ["GraphFabric", "build_graph_cluster", "line_topology",
           "tree_topology", "ShardPlan", "partition_nodes",
           "partition_placement", "DEFAULT_SHARD_LOOKAHEAD"]

#: Default inter-shard boundary latency: the WAN-link class
#: (:class:`repro.dproc.federation.WanLink` defaults to 40 ms), which
#: is what makes the cut links safe lookahead horizons.
DEFAULT_SHARD_LOOKAHEAD = msec(40)


@dataclass(frozen=True)
class ShardPlan:
    """A partition of a cluster's hosts into per-worker shards.

    ``shards[i]`` is the ordered tuple of host names owned by worker
    ``i``; ``lookahead`` is the conservative synchronisation horizon —
    the minimum latency of any cut (inter-shard) link, so a
    cross-shard event sent at ``t`` can never arrive before
    ``t + lookahead``.  ``cut_edges`` lists the switch-graph trunks
    severed by the partition (empty for flat-fabric partitions, whose
    boundary is the implicit WAN hop).
    """

    shards: tuple[tuple[str, ...], ...]
    lookahead: float = DEFAULT_SHARD_LOOKAHEAD
    cut_edges: tuple[tuple[str, str], ...] = ()
    _owner: Mapping[str, int] = field(init=False, repr=False,
                                      compare=False, hash=False,
                                      default=None)

    def __post_init__(self) -> None:
        if not self.shards or not any(self.shards):
            raise NetworkError("a shard plan needs at least one host")
        if self.lookahead <= 0:
            raise NetworkError(
                f"lookahead must be positive, got {self.lookahead!r}")
        owner: dict[str, int] = {}
        for index, hosts in enumerate(self.shards):
            for host in hosts:
                if host in owner:
                    raise NetworkError(
                        f"host {host!r} appears in shards "
                        f"{owner[host]} and {index}")
                owner[host] = index
        object.__setattr__(self, "_owner", owner)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def names(self) -> tuple[str, ...]:
        """All hosts in global order (shard-0 first, round-robin safe
        callers should keep their own global ordering)."""
        return tuple(h for shard in self.shards for h in shard)

    def shard_of(self, host: str) -> int:
        try:
            return self._owner[host]
        except KeyError:
            raise NetworkError(f"host {host!r} is in no shard") from None

    def validate(self, names: Sequence[str]) -> None:
        """Check the plan covers exactly ``names`` (each once)."""
        expected = set(names)
        got = set(self._owner)
        if expected != got:
            missing = sorted(expected - got)
            extra = sorted(got - expected)
            raise NetworkError(
                f"shard plan mismatch: missing={missing} extra={extra}")
        if len(names) != len(expected):
            raise NetworkError("duplicate host names")


def partition_nodes(names: Sequence[str], workers: int,
                    lookahead: float = DEFAULT_SHARD_LOOKAHEAD
                    ) -> ShardPlan:
    """Round-robin partition of a flat cluster into ``workers`` shards.

    Host ``i`` goes to shard ``i % workers``, which spreads the
    front-end watcher nodes (conventionally the first k hosts) evenly
    across shards instead of piling them onto shard 0.  The boundary
    between shards is modelled as a WAN-class hop of ``lookahead``
    seconds minimum latency.
    """
    if workers < 1:
        raise NetworkError(f"need at least one worker, got {workers}")
    names = list(names)
    if len(set(names)) != len(names):
        raise NetworkError("duplicate host names")
    workers = min(workers, len(names))
    shards: list[list[str]] = [[] for _ in range(workers)]
    for i, name in enumerate(names):
        shards[i % workers].append(name)
    return ShardPlan(shards=tuple(tuple(s) for s in shards),
                     lookahead=lookahead)


def partition_placement(graph: nx.Graph, placement: Mapping[str, str],
                        workers: int,
                        trunk_latency: float = usec(100),
                        min_lookahead: float | None = None
                        ) -> ShardPlan:
    """Topology-aware partition: keep each switch's hosts together.

    Switches are packed onto workers greedily (heaviest switch first,
    onto the lightest worker), so intra-switch traffic never crosses a
    shard boundary.  The plan's lookahead is the minimum latency over
    the *cut* trunks — the switch-graph edges whose endpoints landed
    on different workers.  A cut through low-latency datacenter trunks
    yields a tiny lookahead and therefore tiny windows; callers can
    assert a floor with ``min_lookahead`` (raising instead of silently
    thrashing) — this is the "sharding hurts chatty LAN topologies"
    guard.
    """
    if workers < 1:
        raise NetworkError(f"need at least one worker, got {workers}")
    if not placement:
        raise NetworkError("placement is empty")
    hosts_per_switch: dict[str, list[str]] = {}
    for host, switch in placement.items():
        if switch not in graph:
            raise RoutingError(f"unknown switch {switch!r}")
        hosts_per_switch.setdefault(switch, []).append(host)
    workers = min(workers, len(hosts_per_switch))
    # Greedy balanced bin-packing, deterministic: sort switches by
    # (host count desc, name) and drop each onto the lightest worker.
    order = sorted(hosts_per_switch,
                   key=lambda s: (-len(hosts_per_switch[s]), s))
    loads = [0] * workers
    switch_owner: dict[str, int] = {}
    shards: list[list[str]] = [[] for _ in range(workers)]
    for switch in order:
        target = min(range(workers), key=lambda i: (loads[i], i))
        switch_owner[switch] = target
        shards[target].extend(hosts_per_switch[switch])
        loads[target] += len(hosts_per_switch[switch])
    cut: list[tuple[str, str]] = []
    lookahead = float("inf")
    for u, v, attrs in graph.edges(data=True):
        owner_u = switch_owner.get(u)
        owner_v = switch_owner.get(v)
        # Host-less switches carry no simulated traffic: an edge is a
        # cut only when both sides own hosts on different workers.
        if owner_u is None or owner_v is None or owner_u == owner_v:
            continue
        cut.append((u, v))
        lookahead = min(lookahead,
                        float(attrs.get("latency", trunk_latency)))
    if not cut:
        # Everything fits on one worker (or the graph has no
        # cross-worker trunk): the boundary is the WAN default.
        lookahead = DEFAULT_SHARD_LOOKAHEAD
    if min_lookahead is not None and lookahead < min_lookahead:
        raise NetworkError(
            f"partition cuts a {lookahead:.6g}s-latency trunk, below "
            f"the {min_lookahead:.6g}s floor; sharding this topology "
            f"would thrash on synchronisation")
    return ShardPlan(shards=tuple(tuple(s) for s in shards),
                     lookahead=lookahead,
                     cut_edges=tuple(sorted(cut)))


class GraphFabric(Fabric):
    """A fabric whose core is an arbitrary switch graph."""

    def __init__(self, env: Environment, graph: nx.Graph,
                 access_capacity: float = mbps(100),
                 access_latency: float = usec(50),
                 trunk_capacity: float = mbps(1000),
                 trunk_latency: float = usec(100),
                 switch_latency: float = usec(10)) -> None:
        """``graph`` edges may carry ``capacity``/``latency`` attributes
        overriding the trunk defaults."""
        super().__init__(env, access_capacity=access_capacity,
                         access_latency=access_latency,
                         switch_latency=switch_latency)
        if graph.number_of_nodes() == 0:
            raise NetworkError("switch graph is empty")
        if not nx.is_connected(graph):
            raise NetworkError("switch graph must be connected")
        self.graph = graph
        self._host_switch: dict[str, str] = {}
        self._trunks: dict[tuple[str, str], Link] = {}
        self._path_cache: dict[tuple[str, str], tuple[Link, ...]] = {}
        for u, v, attrs in graph.edges(data=True):
            capacity = attrs.get("capacity", trunk_capacity)
            latency = attrs.get("latency", trunk_latency)
            self._trunks[(u, v)] = Link(f"trunk:{u}->{v}", capacity,
                                        latency)
            self._trunks[(v, u)] = Link(f"trunk:{v}->{u}", capacity,
                                        latency)

    # -- topology ------------------------------------------------------------

    def add_host(self, name: str,
                 capacity: Optional[float] = None,
                 segment=None, switch: Optional[str] = None) -> HostPort:
        """Attach a host to a switch.

        ``switch`` names the switch; for compatibility with callers of
        the base fabric (:class:`~repro.sim.node.Node` passes
        ``segment``), a string ``segment`` is accepted as the switch
        name as well.
        """
        if switch is None and isinstance(segment, str):
            switch, segment = segment, None
        if switch is None:
            raise RoutingError(
                f"host {name!r} needs a switch to attach to")
        if switch not in self.graph:
            raise RoutingError(f"unknown switch {switch!r}")
        port = super().add_host(name, capacity=capacity, segment=None)
        self._host_switch[name] = switch
        self._path_cache.clear()
        return port

    def switch_of(self, host: str) -> str:
        try:
            return self._host_switch[host]
        except KeyError:
            raise RoutingError(f"unknown host {host!r}") from None

    def trunk(self, u: str, v: str) -> Link:
        """The directed trunk link from switch ``u`` to switch ``v``."""
        try:
            return self._trunks[(u, v)]
        except KeyError:
            raise RoutingError(f"no trunk {u!r} -> {v!r}") from None

    def path(self, src: str, dst: str) -> tuple[Link, ...]:
        if src == dst:
            raise RoutingError(f"no self-path for host {src!r}")
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        try:
            sport, dport = self.hosts[src], self.hosts[dst]
        except KeyError as exc:
            raise RoutingError(f"unknown host {exc.args[0]!r}") \
                from None
        s_switch = self.switch_of(src)
        d_switch = self.switch_of(dst)
        links: list[Link] = [sport.tx]
        if s_switch != d_switch:
            switches = nx.shortest_path(self.graph, s_switch, d_switch,
                                        weight="latency")
            for u, v in zip(switches, switches[1:]):
                links.append(self._trunks[(u, v)])
        links.append(dport.rx)
        result = tuple(links)
        self._path_cache[(src, dst)] = result
        return result


def line_topology(n_switches: int) -> nx.Graph:
    """``s0 - s1 - ... - s(n-1)``: the worst-diameter core."""
    if n_switches < 1:
        raise NetworkError("need at least one switch")
    return nx.path_graph([f"s{i}" for i in range(n_switches)])


def tree_topology(depth: int, fanout: int = 2) -> nx.Graph:
    """Balanced switch tree (datacenter-style aggregation)."""
    if depth < 0 or fanout < 1:
        raise NetworkError("invalid tree parameters")
    tree = nx.balanced_tree(fanout, depth)
    return nx.relabel_nodes(tree, {i: f"s{i}" for i in tree.nodes})


def build_graph_cluster(env: Environment, graph: nx.Graph,
                        placement: dict[str, str],
                        config: NodeConfig | None = None,
                        seed: int = 0,
                        **fabric_kwargs) -> Cluster:
    """Build a cluster whose hosts sit on an arbitrary switch graph.

    ``placement`` maps host name → switch name.
    """
    if not placement:
        raise NetworkError("placement is empty")
    fabric = GraphFabric(env, graph, **fabric_kwargs)
    cluster = Cluster(env, fabric, RngHub(seed))
    for host, switch in placement.items():
        cluster.add_node(host, config=config, segment=switch)
    return cluster
