"""Disk model with FIFO service and the counters DISK_MON reports.

Service time of an operation = ``per_op_latency`` (seek + rotational
average) plus ``size / transfer_rate``.  A single head serves requests in
arrival order, so a data-logging client under heavy stream rates shows
rising disk utilisation — the signal the paper's hybrid experiment needs.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.core import Environment, SimEvent
from repro.sim.stores import Resource
from repro.sim.trace import CounterTrace
from repro.units import MB, SECTOR_SIZE, msec

__all__ = ["Disk"]


class Disk:
    """Single-spindle disk with operation counters.

    The counters (``reads``, ``writes``, ``sectors_read``,
    ``sectors_written``) are :class:`CounterTrace` instances so DISK_MON
    can ask for windowed rates, exactly matching the paper's "average
    number of disk writes and reads as well as the average number of
    sectors written and read for a certain period of time".
    """

    def __init__(self, env: Environment,
                 transfer_rate: float = MB(20),
                 per_op_latency: float = msec(8)) -> None:
        if transfer_rate <= 0:
            raise SimulationError("transfer rate must be positive")
        if per_op_latency < 0:
            raise SimulationError("latency cannot be negative")
        self.env = env
        self.transfer_rate = float(transfer_rate)
        self.per_op_latency = float(per_op_latency)
        self._head = Resource(env, capacity=1)
        self.reads = CounterTrace("disk_reads")
        self.writes = CounterTrace("disk_writes")
        self.sectors_read = CounterTrace("sectors_read")
        self.sectors_written = CounterTrace("sectors_written")
        self.busy_seconds = 0.0

    # -- public API ---------------------------------------------------------

    def read(self, nbytes: float) -> SimEvent:
        """Start a read; the returned process-event completes when done."""
        return self.env.process(self._operate(nbytes, is_write=False),
                                name="disk-read")

    def write(self, nbytes: float) -> SimEvent:
        """Start a write; the returned process-event completes when done."""
        return self.env.process(self._operate(nbytes, is_write=True),
                                name="disk-write")

    def service_time(self, nbytes: float) -> float:
        """Raw (uncontended) service time for an operation."""
        return self.per_op_latency + nbytes / self.transfer_rate

    def queue_length(self) -> int:
        """Operations waiting or in service."""
        return self._head.count + len(self._head.queue)

    def utilization(self, now: float | None = None) -> float:
        """Fraction of time the head has been busy since t=0."""
        now = self.env.now if now is None else now
        return self.busy_seconds / now if now > 0 else 0.0

    # -- internals ------------------------------------------------------------

    def _operate(self, nbytes: float, is_write: bool):
        if nbytes < 0:
            raise SimulationError("operation size cannot be negative")
        req = self._head.request()
        yield req
        try:
            duration = self.service_time(nbytes)
            yield self.env.timeout(duration)
            self.busy_seconds += duration
            t = self.env.now
            sectors = max(1.0, nbytes / SECTOR_SIZE)
            if is_write:
                self.writes.add(t, 1.0)
                self.sectors_written.add(t, sectors)
            else:
                self.reads.add(t, 1.0)
                self.sectors_read.add(t, sectors)
        finally:
            req.release()
        return nbytes
