"""Battery/power model for mobile nodes.

The paper's future work makes power "a first-class resource" for
wireless and mobile clients, and its extensibility section names
"monitoring of the current battery power in mobile devices" as the
canonical dynamically-deployed monitoring module.  This model provides
the substrate: an energy store drained by base load, CPU activity and
network traffic, with event-free lazy accounting (the level is computed
on demand from the simulator's ground-truth counters).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.node import Node

__all__ = ["Battery"]


class Battery:
    """Energy store attached to one node.

    Draw model (joules):

    * ``base_power`` watts continuously (display, radios idle);
    * ``cpu_joules_per_second`` per busy CPU-second;
    * ``radio_joules_per_byte`` per byte sent or received.
    """

    def __init__(self, node: Node,
                 capacity_joules: float = 20_000.0,   # ~5.5 Wh handheld
                 base_power: float = 0.8,
                 cpu_joules_per_second: float = 6.0,
                 radio_joules_per_byte: float = 2e-6) -> None:
        if capacity_joules <= 0:
            raise SimulationError("battery capacity must be positive")
        if min(base_power, cpu_joules_per_second,
               radio_joules_per_byte) < 0:
            raise SimulationError("power draws cannot be negative")
        self.node = node
        self.capacity_joules = float(capacity_joules)
        self.base_power = float(base_power)
        self.cpu_joules_per_second = float(cpu_joules_per_second)
        self.radio_joules_per_byte = float(radio_joules_per_byte)
        self._attached_at = node.env.now
        self._cpu_mark = self._busy_seconds()
        self._bytes_mark = self._radio_bytes()
        self._drained_at_mark = 0.0
        node.attach_service("battery", self)

    # -- accounting ----------------------------------------------------------

    def _busy_seconds(self) -> float:
        self.node.cpu.settle()
        return self.node.cpu.busy_cpu_seconds

    def _radio_bytes(self) -> float:
        stack = self.node.stack
        return stack.bytes_in.total + stack.bytes_out.total

    def drained_joules(self) -> float:
        """Total energy consumed since attachment."""
        now = self.node.env.now
        elapsed = now - self._attached_at
        cpu_busy = self._busy_seconds() - self._cpu_mark
        radio = self._radio_bytes() - self._bytes_mark
        return (self._drained_at_mark
                + elapsed * self.base_power
                + cpu_busy * self.cpu_joules_per_second
                + radio * self.radio_joules_per_byte)

    def level_joules(self) -> float:
        """Remaining energy (clamped at zero)."""
        return max(0.0, self.capacity_joules - self.drained_joules())

    def level_percent(self) -> float:
        """Remaining charge as a percentage."""
        return 100.0 * self.level_joules() / self.capacity_joules

    @property
    def empty(self) -> bool:
        return self.level_joules() <= 0.0

    def recharge(self) -> None:
        """Reset to full (rebases all the drain marks)."""
        self._attached_at = self.node.env.now
        self._cpu_mark = self._busy_seconds()
        self._bytes_mark = self._radio_bytes()
        self._drained_at_mark = 0.0
