"""Physical-memory model.

A trivially simple but observable allocator: processes grab and return
byte ranges; MEM_MON reads the free-page count exactly like the kernel's
``nr_free_pages()`` the paper mentions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.core import Environment
from repro.sim.trace import TimeSeries
from repro.units import MB, PAGE_SIZE

__all__ = ["Memory", "Allocation"]


@dataclass
class Allocation:
    """Handle for a live memory allocation."""

    aid: int
    nbytes: float
    tag: str
    _memory: "Memory"
    freed: bool = False

    def free(self) -> None:
        """Return this allocation to the pool (idempotent)."""
        if not self.freed:
            self._memory._release(self)
            self.freed = True


class Memory:
    """Byte-accounting memory with free-page reporting."""

    def __init__(self, env: Environment, capacity_bytes: float = MB(512),
                 reserved_bytes: float = MB(32)) -> None:
        """``reserved_bytes`` models the kernel's own footprint."""
        if capacity_bytes <= 0:
            raise SimulationError("memory capacity must be positive")
        if not 0 <= reserved_bytes < capacity_bytes:
            raise SimulationError("reservation outside capacity")
        self.env = env
        self.capacity_bytes = float(capacity_bytes)
        self._used = float(reserved_bytes)
        self._ids = itertools.count(1)
        self._live: dict[int, Allocation] = {}
        self.free_trace = TimeSeries("free_bytes")
        self.free_trace.record(env.now, self.free_bytes)

    @property
    def used_bytes(self) -> float:
        return self._used

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self._used

    def nr_free_pages(self) -> int:
        """Free memory in pages — the kernel call MEM_MON invokes."""
        return int(self.free_bytes // PAGE_SIZE)

    def allocate(self, nbytes: float, tag: str = "anon") -> Allocation:
        """Claim ``nbytes``; raises when the pool is exhausted."""
        if nbytes < 0:
            raise SimulationError("cannot allocate negative bytes")
        if nbytes > self.free_bytes:
            raise SimulationError(
                f"out of memory: want {nbytes:.0f}B, "
                f"free {self.free_bytes:.0f}B")
        alloc = Allocation(aid=next(self._ids), nbytes=float(nbytes),
                           tag=tag, _memory=self)
        self._used += nbytes
        self._live[alloc.aid] = alloc
        self.free_trace.record(self.env.now, self.free_bytes)
        return alloc

    def _release(self, alloc: Allocation) -> None:
        if alloc.aid not in self._live:
            raise SimulationError("double free")
        del self._live[alloc.aid]
        self._used -= alloc.nbytes
        self.free_trace.record(self.env.now, self.free_bytes)
