"""Per-node TCP transport: the live implementation of ``Transport``.

Each :class:`LiveStack` owns one real TCP server socket on localhost;
a connection to another host dials that host's server (address found
through the :class:`~repro.live.registry.RegistryClient` directory) and
writes length-prefixed codec frames.  The surface mirrors the
simulator's ``NetStack`` exactly — ``bind``/``unbind`` a tag handler,
``connect`` for a :class:`LiveConnection`, ``batch`` as a no-op — so
:class:`repro.kecho.channel.ChannelEndpoint` runs on it unchanged.
"""

from __future__ import annotations

import asyncio
from contextlib import contextmanager
from types import SimpleNamespace
from typing import Any, Callable, Optional

from repro.errors import TransportError
from repro.kecho.event import ChannelEvent
from repro.live.codec import FrameDecoder, decode_frame, encode_frame
from repro.runtime.series import CounterTrace

__all__ = ["LiveStack", "LiveConnection", "LiveCompletion"]

Resolver = Callable[[str], Optional[tuple[str, int]]]


class LiveCompletion:
    """Synchronous completion handle for one send.

    Satisfies :class:`repro.runtime.protocol.Completion`.  A live
    socket write either queues successfully (``_ok``) or the
    connection is known-dead; callbacks fire immediately either way,
    which is how the sim's same-instant delivery callbacks behave from
    the publisher's perspective.
    """

    __slots__ = ("_ok", "defused")

    def __init__(self, ok: bool) -> None:
        self._ok = ok
        self.defused = False

    def add_callback(self, fn: Callable[["LiveCompletion"], None]) -> None:
        fn(self)


class LiveConnection:
    """One logical connection to a remote host (lazily dialled).

    Frames written before the TCP connect completes are buffered and
    flushed on connection; after a connection error every further send
    reports a failed completion (the publisher keeps running — delivery
    failure must never take d-mon down).
    """

    def __init__(self, stack: "LiveStack", dst: str, tag: str) -> None:
        self.stack = stack
        self.dst = dst
        self.tag = tag
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: list[bytes] = []
        self._dead = False
        self._opener = asyncio.ensure_future(self._open())

    async def _open(self) -> None:
        address = self.stack.resolve(self.dst)
        if address is None:
            self._dead = True
            return
        try:
            _reader, writer = await asyncio.open_connection(
                address[0], address[1])
        except OSError:
            self._dead = True
            return
        self._writer = writer
        pending, self._pending = self._pending, []
        for frame in pending:
            writer.write(frame)

    def send(self, payload: Any, size: float) -> LiveCompletion:
        """Encode and transmit one :class:`ChannelEvent`."""
        if not isinstance(payload, ChannelEvent):
            raise TransportError(
                "live transport carries ChannelEvent frames only")
        if self._dead:
            return LiveCompletion(ok=False)
        frame = encode_frame(self.tag, payload)
        now = self.stack.clock.now
        self.stack.bytes_out.add(now, float(len(frame)))
        self.stack._t_tx.inc(len(frame))
        if self._writer is None:
            self._pending.append(frame)
        else:
            try:
                self._writer.write(frame)
            except Exception:
                self._dead = True
                return LiveCompletion(ok=False)
        return LiveCompletion(ok=True)

    def close(self) -> None:
        self._opener.cancel()
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._dead = True


class LiveStack:
    """One node's TCP endpoint: server socket + tagged dispatch."""

    def __init__(self, host: str, clock, telemetry) -> None:
        self.host = host
        self.clock = clock
        self.handlers: dict[str, Callable] = {}
        self.connections: list[LiveConnection] = []
        self.address: Optional[tuple[str, int]] = None
        #: Host-name → (ip, port) lookup; wired to the registry client
        #: by the runtime before any connection is made.
        self.resolve: Resolver = lambda host: None
        self._server: Optional[asyncio.AbstractServer] = None
        self.bytes_in = CounterTrace(f"{host}:rx-bytes")
        self.bytes_out = CounterTrace(f"{host}:tx-bytes")
        self._t_tx = telemetry.counter("net.tx_frame_bytes")
        self._t_rx = telemetry.counter("net.rx_frame_bytes")
        self._t_undeliverable = telemetry.counter("net.undeliverable")

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Open the server socket (port 0 → ephemeral) and return it."""
        self._server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def stop(self) -> None:
        for conn in self.connections:
            conn.close()
        self.connections.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- the Transport protocol -------------------------------------------

    def bind(self, tag: str, handler: Callable) -> None:
        if tag in self.handlers:
            raise TransportError(
                f"tag {tag!r} already bound on {self.host}")
        self.handlers[tag] = handler

    def unbind(self, tag: str) -> None:
        self.handlers.pop(tag, None)

    def connect(self, dst: str, tag: str) -> LiveConnection:
        conn = LiveConnection(self, dst, tag)
        self.connections.append(conn)
        return conn

    @contextmanager
    def batch(self):
        """No-op: real sockets need no bandwidth reallocation."""
        yield self

    # -- receive path ------------------------------------------------------

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                now = self.clock.now
                self.bytes_in.add(now, float(len(data)))
                self._t_rx.inc(len(data))
                for frame in decoder.feed(data):
                    tag, event = decode_frame(frame)
                    handler = self.handlers.get(tag)
                    if handler is None:
                        self._t_undeliverable.inc()
                        continue
                    handler(SimpleNamespace(payload=event, span=None))
        finally:
            writer.close()
