"""Per-node TCP transport: the live implementation of ``Transport``.

Each :class:`LiveStack` owns one real TCP server socket on localhost;
a connection to another host dials that host's server (address found
through the :class:`~repro.live.registry.RegistryClient` directory) and
writes length-prefixed codec frames.  The surface mirrors the
simulator's ``NetStack`` exactly — ``bind``/``unbind`` a tag handler,
``connect`` for a :class:`LiveConnection`, ``batch`` as a no-op — so
:class:`repro.kecho.channel.ChannelEndpoint` runs on it unchanged.

Scaling machinery (all per-destination, owned by a shared
:class:`_PeerLink` so every channel endpoint talking to the same host
rides one socket):

* **connection pooling** — ``connect(dst, tag)`` returns a thin
  :class:`LiveConnection` facade over one pooled TCP link per
  destination host, so a 200-node cluster needs O(nodes × watchers)
  sockets instead of O(nodes × watchers × channels);
* **frame batching** — with a :class:`BatchConfig`, outgoing frames
  coalesce into ``BATCH`` super-frames flushed by size watermark
  (``max_bytes``/``max_frames``) or time watermark (``max_delay``);
* **sender-side backpressure** — write-buffer high/low watermarks
  (:class:`FlowConfig`) wired into asyncio flow control: past the
  high watermark the link pauses, frames park in a bounded deferral
  queue drained when ``drain()`` reports the buffer back under the
  low watermark; queue overflow *drops* the newest frame and reports
  it through :attr:`LiveStack.drop_hook`, so the durable stream
  records the loss and reconciliation stays zero-discrepancy.
"""

from __future__ import annotations

import asyncio
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Any, Callable, Optional

from repro.errors import ChannelError, TransportError
from repro.kecho.event import ChannelEvent
from repro.live.codec import (FrameDecoder, decode_frame, encode_batch,
                              encode_frame)
from repro.runtime.series import CounterTrace

__all__ = ["LiveStack", "LiveConnection", "LiveCompletion",
           "BatchConfig", "FlowConfig"]

Resolver = Callable[[str], Optional[tuple[str, int]]]


@dataclass(frozen=True)
class BatchConfig:
    """Frame-coalescing watermarks for one stack's outgoing links."""

    #: Flush when the coalesced frames reach this many bytes.
    max_bytes: int = 32 * 1024
    #: Flush at most this many seconds after the first queued frame.
    max_delay: float = 0.05
    #: Flush when this many frames are queued (bounded super-frames).
    max_frames: int = 256


@dataclass(frozen=True)
class FlowConfig:
    """Sender-side backpressure watermarks for one stack's links."""

    #: Pause the link when the socket write buffer exceeds this.
    high_watermark: int = 256 * 1024
    #: ``drain()`` resumes the link once the buffer is back below this.
    low_watermark: int = 64 * 1024
    #: Frames parked while paused; overflow drops (and records) the
    #: newest frame instead of buffering without bound.
    max_deferred: int = 1024


class LiveCompletion:
    """Synchronous completion handle for one send.

    Satisfies :class:`repro.runtime.protocol.Completion`.  A live
    socket write either queues successfully (``_ok``) or the
    connection is known-dead; callbacks fire immediately either way,
    which is how the sim's same-instant delivery callbacks behave from
    the publisher's perspective.
    """

    __slots__ = ("_ok", "defused")

    def __init__(self, ok: bool) -> None:
        self._ok = ok
        self.defused = False

    def add_callback(self, fn: Callable[["LiveCompletion"], None]) -> None:
        fn(self)


class _PeerLink:
    """The pooled TCP link to one destination host (lazily dialled).

    Owns the writer, the coalescing buffer and the flow-control state;
    every :class:`LiveConnection` to the same host delegates here.
    Frames written before the TCP connect completes are buffered and
    flushed on connection; after a connection error every further send
    reports a failed completion (the publisher keeps running — delivery
    failure must never take d-mon down).
    """

    def __init__(self, stack: "LiveStack", dst: str) -> None:
        self.stack = stack
        self.dst = dst
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: list[bytes] = []
        self._dead = False
        self.refs = 0
        # batching state
        self._batch: list[bytes] = []
        self._batch_bytes = 0
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        # backpressure state
        self.paused = False
        self._deferred: deque[tuple[bytes, ChannelEvent]] = deque()
        self._drainer: Optional[asyncio.Task] = None
        self._opener = asyncio.ensure_future(self._open())

    async def _open(self) -> None:
        address = self.stack.resolve(self.dst)
        if address is None:
            self._dead = True
            return
        try:
            _reader, writer = await asyncio.open_connection(
                address[0], address[1])
        except OSError:
            self._dead = True
            return
        flow = self.stack.flow_config
        if flow is not None:
            writer.transport.set_write_buffer_limits(
                high=flow.high_watermark, low=flow.low_watermark)
        self._writer = writer
        pending, self._pending = self._pending, []
        for data in pending:
            self._write_out(data)

    # -- send path ---------------------------------------------------------

    def send(self, frame: bytes, event: ChannelEvent) -> bool:
        """Queue one encoded frame; False when it is known lost."""
        if self._dead:
            return False
        if self.paused:
            flow = self.stack.flow_config
            if flow is None or len(self._deferred) < flow.max_deferred:
                self._deferred.append((frame, event))
                self.stack._t_deferred.inc()
                return True
            self.stack._record_drop(event, self.dst)
            return False
        return self._enqueue(frame)

    def _enqueue(self, frame: bytes) -> bool:
        batch = self.stack.batch_config
        if batch is None:
            self._write_out(frame)
            return not self._dead
        self._batch.append(frame)
        self._batch_bytes += len(frame)
        if (self._batch_bytes >= batch.max_bytes
                or len(self._batch) >= batch.max_frames):
            self.flush()
        elif self._flush_handle is None:
            self._flush_handle = asyncio.get_event_loop().call_later(
                batch.max_delay, self._flush_timer)
        return not self._dead

    def _flush_timer(self) -> None:
        self._flush_handle = None
        self.flush()

    def flush(self) -> None:
        """Write out the coalesced frames (one super-frame if > 1)."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._batch:
            return
        frames, self._batch = self._batch, []
        self._batch_bytes = 0
        if len(frames) == 1:
            self._write_out(frames[0])
            return
        try:
            data = encode_batch(frames)
        except ChannelError:  # over-large batch: fall back frame-wise
            for frame in frames:
                self._write_out(frame)
            return
        self.stack._t_batches.inc()
        self.stack._t_batched_frames.inc(len(frames))
        self._write_out(data)

    def _write_out(self, data: bytes) -> None:
        """One wire write (a frame or a super-frame)."""
        writer = self._writer
        if writer is None:
            self._pending.append(data)
            return
        if writer.transport.is_closing():
            # The peer hung up (teardown); asyncio would log every
            # further write as "socket.send() raised exception".
            self._dead = True
            return
        try:
            writer.write(data)
        except Exception:
            self._dead = True
            return
        # Counted only on a real socket write, so frames parked in
        # ``_pending`` before the connect completes count once.
        self.stack._t_wire_frames.inc()
        self.stack._t_wire_bytes.inc(len(data))
        self._check_watermark(writer)

    def _check_watermark(self, writer: asyncio.StreamWriter) -> None:
        flow = self.stack.flow_config
        if flow is None or self.paused:
            return
        try:
            size = writer.transport.get_write_buffer_size()
        except Exception:  # pragma: no cover - transport torn down
            return
        if size > flow.high_watermark:
            self.paused = True
            self.stack._t_pauses.inc()
            self._drainer = asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        """Wait out the slow consumer, then replay deferred frames."""
        writer = self._writer
        if writer is None:  # pragma: no cover - paused before connect
            self.paused = False
            return
        try:
            await writer.drain()
        except Exception:
            self._dead = True
            self.paused = False
            return
        self.paused = False
        self.stack._t_resumes.inc()
        while self._deferred and not self.paused and not self._dead:
            frame, _event = self._deferred.popleft()
            self._enqueue(frame)

    # -- teardown ----------------------------------------------------------

    def release(self) -> None:
        """Drop one facade's reference (the pool owns the socket)."""
        self.refs = max(0, self.refs - 1)

    def close(self) -> None:
        self._opener.cancel()
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if self._drainer is not None:
            self._drainer.cancel()
            self._drainer = None
        # Best-effort final flush: coalesced and deferred frames go to
        # the kernel buffer before the socket closes.
        if self._writer is not None:
            while self._deferred:
                frame, _event = self._deferred.popleft()
                self._batch.append(frame)
            self.paused = False
            self.flush()
            self._writer.close()
            self._writer = None
        self._dead = True


class LiveConnection:
    """One logical connection to a remote host: a facade over the
    stack's pooled per-destination :class:`_PeerLink`."""

    def __init__(self, stack: "LiveStack", dst: str, tag: str) -> None:
        self.stack = stack
        self.dst = dst
        self.tag = tag
        self._link = stack._link_to(dst)
        self._closed = False

    def send(self, payload: Any, size: float) -> LiveCompletion:
        """Encode and transmit one :class:`ChannelEvent`."""
        if not isinstance(payload, ChannelEvent):
            raise TransportError(
                "live transport carries ChannelEvent frames only")
        if self._closed or self._link._dead:
            return LiveCompletion(ok=False)
        frame = encode_frame(self.tag, payload)
        now = self.stack.clock.now
        self.stack.bytes_out.add(now, float(len(frame)))
        self.stack._t_tx.inc(len(frame))
        self.stack._t_frames.inc()
        return LiveCompletion(ok=self._link.send(frame, payload))

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._link.release()


class LiveStack:
    """One node's TCP endpoint: server socket + tagged dispatch."""

    #: Wired by ``repro.stream.attach_stream`` to the durable broker's
    #: ``record_drop``; called as ``drop_hook(event, dest, reason,
    #: now)`` for every frame the sender gives up on (backpressure
    #: overflow), so live drops reconcile exactly like sim drops.
    drop_hook: Optional[Callable] = None

    def __init__(self, host: str, clock, telemetry,
                 batch: Optional[BatchConfig] = None,
                 flow: Optional[FlowConfig] = None) -> None:
        self.host = host
        self.clock = clock
        self.handlers: dict[str, Callable] = {}
        self.connections: list[LiveConnection] = []
        self.address: Optional[tuple[str, int]] = None
        #: Host-name → (ip, port) lookup; wired to the registry client
        #: by the runtime before any connection is made.
        self.resolve: Resolver = lambda host: None
        #: Outgoing transport tuning; set before the first ``connect``
        #: (the runtime configures these from the scenario).
        self.batch_config = batch
        self.flow_config = flow if flow is not None else FlowConfig()
        self._links: dict[str, _PeerLink] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self.bytes_in = CounterTrace(f"{host}:rx-bytes")
        self.bytes_out = CounterTrace(f"{host}:tx-bytes")
        self._t_tx = telemetry.counter("net.tx_frame_bytes")
        self._t_rx = telemetry.counter("net.rx_frame_bytes")
        self._t_undeliverable = telemetry.counter("net.undeliverable")
        self._t_frames = telemetry.counter("net.tx_frames")
        self._t_wire_frames = telemetry.counter("net.tx_wire_frames")
        self._t_wire_bytes = telemetry.counter("net.tx_wire_bytes")
        self._t_batches = telemetry.counter("net.tx_batches")
        self._t_batched_frames = telemetry.counter(
            "net.tx_batched_frames")
        self._t_deferred = telemetry.counter(
            "net.backpressure_deferred")
        self._t_drops = telemetry.counter("net.backpressure_drops")
        self._t_pauses = telemetry.counter("net.backpressure_pauses")
        self._t_resumes = telemetry.counter("net.backpressure_resumes")
        self._t_truncated = telemetry.counter("net.rx_truncated")

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Open the server socket (port 0 → ephemeral) and return it."""
        self._server = await asyncio.start_server(
            self._serve, "127.0.0.1", 0)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def stop(self) -> None:
        for conn in self.connections:
            conn.close()
        self.connections.clear()
        for link in self._links.values():
            link.close()
        self._links.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- the Transport protocol -------------------------------------------

    def bind(self, tag: str, handler: Callable) -> None:
        if tag in self.handlers:
            raise TransportError(
                f"tag {tag!r} already bound on {self.host}")
        self.handlers[tag] = handler

    def unbind(self, tag: str) -> None:
        self.handlers.pop(tag, None)

    def connect(self, dst: str, tag: str) -> LiveConnection:
        conn = LiveConnection(self, dst, tag)
        self.connections.append(conn)
        return conn

    @contextmanager
    def batch(self):
        """No-op: real sockets need no bandwidth reallocation."""
        yield self

    def flush(self) -> None:
        """Force-flush every link's coalescing buffer (tests/teardown)."""
        for link in self._links.values():
            link.flush()

    # -- internals ---------------------------------------------------------

    def _link_to(self, dst: str) -> _PeerLink:
        link = self._links.get(dst)
        if link is None:
            link = _PeerLink(self, dst)
            self._links[dst] = link
        link.refs += 1
        return link

    def _record_drop(self, event: ChannelEvent, dst: str) -> None:
        self._t_drops.inc()
        hook = self.drop_hook
        if hook is not None:
            hook(event, dst, "backpressure", self.clock.now)

    # -- receive path ------------------------------------------------------

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                try:
                    data = await reader.read(65536)
                except (ConnectionError, OSError):
                    data = b""
                if not data:
                    if decoder.pending_bytes:
                        # Partial header/body at EOF: the peer died
                        # mid-frame.  Count it; the reconciler sees
                        # the missing delivery.
                        self._t_truncated.inc()
                    break
                now = self.clock.now
                self.bytes_in.add(now, float(len(data)))
                self._t_rx.inc(len(data))
                for frame in decoder.feed(data):
                    tag, event = decode_frame(frame)
                    handler = self.handlers.get(tag)
                    if handler is None:
                        self._t_undeliverable.inc()
                        continue
                    handler(SimpleNamespace(payload=event, span=None))
        finally:
            writer.close()
