"""The live channel registry: a directory server on a real socket.

Mirrors the paper's "user-level channel directory server": d-mon
modules contact the registry to create/find channels; here they also
publish their data-plane socket addresses so publishers can dial
subscribers directly (events never pass through the registry — it is
control-plane only, exactly like the simulator's in-memory
:class:`repro.kecho.registry.ChannelRegistry`).

Protocol: JSON lines over TCP.  Clients send operations::

    {"op": "sync", "hosts": {name: [ip, port]},
     "channels": {name: {"members": [...], "subscribers": [...]}}}

and the server replies to everyone with the merged directory::

    {"op": "state", "version": N, "hosts": {...}, "channels": {...}}

A client's ``sync`` replaces that client's whole contribution; the
server unions contributions across clients, so multiple node-runner
processes on one machine share one directory.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Optional

__all__ = ["RegistryServer", "RegistryClient"]


def _merge(contributions: dict) -> tuple[dict, dict]:
    """Union every client's contribution into one directory."""
    hosts: dict[str, list] = {}
    channels: dict[str, dict] = {}
    for contrib in contributions.values():
        hosts.update(contrib.get("hosts", {}))
        for name, entry in contrib.get("channels", {}).items():
            merged = channels.setdefault(
                name, {"members": [], "subscribers": []})
            for key in ("members", "subscribers"):
                for host in entry.get(key, ()):
                    if host not in merged[key]:
                        merged[key].append(host)
    return hosts, channels


class RegistryServer:
    """Serves the channel directory on a localhost TCP socket."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[tuple[str, int]] = None
        self.version = 0
        #: client id -> that client's latest sync contribution.
        self._contributions: dict[int, dict] = {}
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._serve_tasks: set[asyncio.Task] = set()
        self._next_client = 0

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._serve, self._host, self._port)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Closing the writers EOFs each client loop, so the serve
        # tasks exit on their own rather than being cancelled (a
        # cancelled client_connected_cb task makes asyncio log noise).
        for writer in list(self._writers.values()):
            writer.close()
        if self._serve_tasks:
            await asyncio.gather(*self._serve_tasks,
                                 return_exceptions=True)
            self._serve_tasks.clear()
        self._writers.clear()

    async def _serve(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._serve_tasks.add(task)
            task.add_done_callback(self._serve_tasks.discard)
        cid = self._next_client
        self._next_client += 1
        self._writers[cid] = writer
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError):
                    # A client that vanishes mid-teardown (worker
                    # process exit) is a normal departure, not noise.
                    break
                if not line:
                    break
                try:
                    msg = json.loads(line)
                except ValueError:
                    continue
                if msg.get("op") == "sync":
                    self._contributions[cid] = msg
                    self._broadcast()
        finally:
            self._writers.pop(cid, None)
            # A vanished client's hosts/subscriptions leave with it.
            if self._contributions.pop(cid, None) is not None:
                self._broadcast()
            writer.close()

    def _broadcast(self) -> None:
        self.version += 1
        hosts, channels = _merge(self._contributions)
        line = (json.dumps({"op": "state", "version": self.version,
                            "hosts": hosts, "channels": channels},
                           separators=(",", ":")) + "\n").encode()
        for writer in self._writers.values():
            if writer.is_closing():
                continue
            try:
                writer.write(line)
            except (ConnectionError, OSError):
                continue


class RegistryClient:
    """One process's connection to the registry server.

    Keeps a local directory cache that is updated *optimistically* on
    local operations (so same-process publishers see a subscription the
    instant it happens, matching the simulator's synchronous registry)
    and *authoritatively* from server broadcasts (so other processes'
    hosts and subscriptions appear as they sync).
    """

    def __init__(self) -> None:
        self.hosts: dict[str, tuple[str, int]] = {}
        self.channels: dict[str, dict] = {}
        #: Bumped on every directory change, local or remote.
        self.version = 0
        self._local: dict = {"hosts": {}, "channels": {}}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        #: Called after every directory change (bus cache invalidation).
        self.on_change: Optional[Callable[[], None]] = None

    async def connect(self, address: tuple[str, int]) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            address[0], address[1])
        self._reader_task = asyncio.ensure_future(self._listen())

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # -- local operations (optimistic + pushed to the server) -------------

    def register_host(self, host: str, address: tuple[str, int]) -> None:
        self._local["hosts"][host] = list(address)
        self.hosts[host] = (address[0], int(address[1]))
        self._bump()

    def open_channel(self, name: str, host: str) -> None:
        entry = self._local["channels"].setdefault(
            name, {"members": [], "subscribers": []})
        if host not in entry["members"]:
            entry["members"].append(host)
        cached = self.channels.setdefault(
            name, {"members": [], "subscribers": []})
        if host not in cached["members"]:
            cached["members"].append(host)
        self._bump()

    def leave_channel(self, name: str, host: str) -> None:
        entry = self._local["channels"].get(name)
        if entry is not None and host in entry["members"]:
            entry["members"].remove(host)
        cached = self.channels.get(name)
        if cached is not None and host in cached["members"]:
            cached["members"].remove(host)
        self._bump()

    def set_subscribers(self, name: str,
                        subscribers: list[str]) -> None:
        """Replace this process's subscriber list for one channel."""
        entry = self._local["channels"].setdefault(
            name, {"members": [], "subscribers": []})
        entry["subscribers"] = list(subscribers)
        cached = self.channels.setdefault(
            name, {"members": [], "subscribers": []})
        cached["subscribers"] = list(subscribers)
        self._bump()

    # -- queries ----------------------------------------------------------

    def host_address(self, host: str) -> Optional[tuple[str, int]]:
        return self.hosts.get(host)

    def subscribers(self, name: str) -> list[str]:
        entry = self.channels.get(name)
        return list(entry["subscribers"]) if entry else []

    # -- internals --------------------------------------------------------

    def _bump(self) -> None:
        self.version += 1
        if self._writer is not None:
            line = (json.dumps({"op": "sync", **self._local},
                               separators=(",", ":")) + "\n").encode()
            self._writer.write(line)
        if self.on_change is not None:
            self.on_change()

    async def _listen(self) -> None:
        assert self._reader is not None
        while True:
            line = await self._reader.readline()
            if not line:
                return
            try:
                msg = json.loads(line)
            except ValueError:
                continue
            if msg.get("op") != "state":
                continue
            hosts = {h: (a[0], int(a[1]))
                     for h, a in msg.get("hosts", {}).items()}
            channels = msg.get("channels", {})
            # Merge authoritative state with our optimistic local view
            # (ours may be ahead of the broadcast in flight).
            local_hosts = {h: (a[0], int(a[1]))
                           for h, a in self._local["hosts"].items()}
            hosts.update(local_hosts)
            for name, entry in self._local["channels"].items():
                merged = channels.setdefault(
                    name, {"members": [], "subscribers": []})
                for key in ("members", "subscribers"):
                    for host in entry[key]:
                        if host not in merged[key]:
                            merged[key].append(host)
            self.hosts = hosts
            self.channels = channels
            self.version += 1
            if self.on_change is not None:
                self.on_change()
