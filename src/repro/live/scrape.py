"""The live backend's scrape endpoint: one listener, two routes.

A minimal HTTP/1.1 server over ``asyncio.start_server`` (no web
framework — the repo's no-new-dependencies rule) serving:

* ``GET /metrics``  — OpenMetrics text exposition of every node's
  telemetry registry plus the health verdict gauges
  (:func:`repro.obs.openmetrics.render_openmetrics`);
* ``GET /healthz``  — the health engine's rolled-up verdict as JSON;
  status 200 while healthy, 503 while any rule is degraded.

The server binds localhost and is started/stopped by
:class:`repro.live.runtime.LiveRuntime` inside its event loop (see
``aux_servers``); ``Scenario.with_observability(scrape_port=...)``
wires it up.  Rendering happens per request from the *live*
registries, so a scrape always sees current values.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

__all__ = ["ScrapeServer"]

_MAX_REQUEST_BYTES = 16384


class ScrapeServer:
    """Serves ``/metrics`` and ``/healthz`` for one live cluster."""

    def __init__(self, nodes, plane, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        """``nodes`` is the runtime's node group (registries are read
        per scrape); ``plane`` the cluster's
        :class:`~repro.obs.plane.ObservabilityPlane`."""
        self.nodes = nodes
        self.plane = plane
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        #: Requests served, by path (diagnostics + tests).
        self.hits: dict[str, int] = {}

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        return (self.host, self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling ---------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        if len(request) > _MAX_REQUEST_BYTES:
            await self._respond(writer, 413, "text/plain",
                                "request too large\n")
            return
        line = request.split(b"\r\n", 1)[0].decode("latin-1")
        parts = line.split(" ")
        if len(parts) != 3 or parts[0] != "GET":
            await self._respond(writer, 405, "text/plain",
                                "only GET is supported\n")
            return
        path = parts[1].split("?", 1)[0]
        self.hits[path] = self.hits.get(path, 0) + 1
        if path == "/metrics":
            from repro.obs.openmetrics import (CONTENT_TYPE,
                                               render_openmetrics)
            body = render_openmetrics(
                {node.name: node.telemetry for node in self.nodes},
                health=self.plane.verdict()
                if self.plane is not None else None)
            await self._respond(writer, 200, CONTENT_TYPE, body)
        elif path == "/healthz":
            verdict = (self.plane.verdict()
                       if self.plane is not None
                       else {"healthy": True, "rules": []})
            status = 200 if verdict.get("healthy", True) else 503
            await self._respond(writer, status, "application/json",
                                json.dumps(verdict, sort_keys=True)
                                + "\n")
        else:
            await self._respond(writer, 404, "text/plain",
                                f"no route {path}\n")

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       content_type: str, body: str) -> None:
        reason = {200: "OK", 404: "Not Found", 405:
                  "Method Not Allowed", 413: "Payload Too Large",
                  503: "Service Unavailable"}.get(status, "Error")
        payload = body.encode("utf-8")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + payload)
        try:
            await writer.drain()
        finally:
            writer.close()
