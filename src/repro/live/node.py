"""LiveNode: the per-host service bundle over real host resources.

Satisfies :class:`repro.runtime.protocol.RuntimeNode` with the exact
attribute surface d-mon, KECho and the toolkit use: ``env`` (the shared
:class:`~repro.live.clock.AsyncClock`), ``rng``, ``costs`` (the same
:class:`~repro.sim.node.KernelCostModel` — live costs are *accounted*,
not simulated, so the telemetry/overhead reports stay comparable),
``telemetry``, ``tracer``, ``stack`` and ``spawn``.

``cpu`` and ``memory`` expose just enough of the simulated devices'
shape for the toolkit's standard ``/proc/loadavg`` and
``/proc/meminfo`` mounts, backed by the real host's ``/proc``.
"""

from __future__ import annotations

import os
from typing import Any, Generator

import numpy as np

from repro.live.clock import AsyncClock, LiveTask
from repro.live.transport import LiveStack
from repro.sim.node import KernelCostModel
from repro.telemetry import TelemetryRegistry
from repro.tracing import NULL_TRACER
from repro.units import PAGE_SIZE

__all__ = ["LiveNode", "HostCpu", "HostMemory"]


def _read_proc(path: str) -> str:
    try:
        with open(path, "r") as fh:
            return fh.read()
    except OSError:
        return ""


class _HostLoadavg:
    """Shape-compatible stand-in for the sim's EwmaLoad tracker."""

    def update(self, t: float, runnable: float) -> None:
        """No-op: the host kernel maintains the real load averages."""

    def as_tuple(self) -> tuple[float, float, float]:
        try:
            return os.getloadavg()
        except OSError:  # pragma: no cover - platform without loadavg
            return (0.0, 0.0, 0.0)


class HostCpu:
    """Real-host CPU view (shape of ``repro.sim.cpu.Cpu``)."""

    def __init__(self) -> None:
        self.loadavg = _HostLoadavg()

    @property
    def run_queue_length(self) -> float:
        """Runnable tasks right now, from ``/proc/loadavg``'s r/t field."""
        text = _read_proc("/proc/loadavg")
        fields = text.split()
        if len(fields) >= 4 and "/" in fields[3]:
            try:
                return max(0.0, float(fields[3].split("/")[0]) - 1.0)
            except ValueError:  # pragma: no cover - malformed procfs
                pass
        return 0.0


class HostMemory:
    """Real-host memory view (shape of ``repro.sim.memory.Memory``)."""

    @staticmethod
    def _meminfo(key: str) -> float:
        for line in _read_proc("/proc/meminfo").splitlines():
            if line.startswith(key + ":"):
                try:
                    return float(line.split()[1]) * 1024.0
                except (IndexError, ValueError):  # pragma: no cover
                    return 0.0
        return 0.0

    @property
    def capacity_bytes(self) -> float:
        return self._meminfo("MemTotal")

    @property
    def free_bytes(self) -> float:
        return self._meminfo("MemFree")

    def nr_free_pages(self) -> float:
        return self.free_bytes / PAGE_SIZE


class LiveNode:
    """One live host: clock + RNG + costs + telemetry + TCP stack."""

    def __init__(self, name: str, clock: AsyncClock,
                 seed: int = 0, index: int = 0,
                 costs: KernelCostModel | None = None) -> None:
        self.name = name
        self.env = clock
        self.rng = np.random.default_rng([seed, index])
        self.costs = costs if costs is not None else KernelCostModel()
        self.telemetry = TelemetryRegistry(scope=name)
        self.tracer = NULL_TRACER
        self.stack = LiveStack(name, clock, self.telemetry)
        self.cpu = HostCpu()
        self.memory = HostMemory()
        self.services: dict[str, Any] = {}
        #: Modeled kernel CPU seconds accounted to this node.
        self.kernel_cpu_seconds = 0.0

    def spawn(self, gen: Generator, name: str = "") -> LiveTask:
        return self.env.spawn(gen, name=name or self.name)

    def charge_kernel_seconds(self, seconds: float) -> None:
        """Account modeled kernel CPU (live charges are bookkeeping)."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.kernel_cpu_seconds += seconds

    def attach_service(self, key: str, service: Any) -> None:
        self.services[key] = service

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LiveNode {self.name}>"
