"""LiveBus: KECho channel wiring over the socket-served registry.

The live bus *is* a :class:`repro.kecho.channel.KechoBus` — endpoints,
subscriptions, telemetry and submit accounting are byte-for-byte the
simulator's code — with the directory synchronised through a
:class:`~repro.live.registry.RegistryClient`:

* channel opens/leaves and subscriber sets are pushed to the registry
  server, so node runners in *other* processes see them;
* the merged directory (theirs + ours) answers
  :meth:`remote_subscribers`, so publishers fan out to every
  subscribed host on the machine, not just the local process;
* any remote directory change bumps ``subscription_version``, which
  invalidates d-mon's audience cache exactly like a local subscribe.
"""

from __future__ import annotations

from typing import Optional

from repro.kecho.channel import ChannelEndpoint, KechoBus
from repro.live.registry import RegistryClient

__all__ = ["LiveBus"]


class LiveBus(KechoBus):
    """A KechoBus whose directory lives on the registry socket."""

    def __init__(self) -> None:
        super().__init__()
        self.client: Optional[RegistryClient] = None
        self._pushing = False

    def attach_registry(self, client: RegistryClient) -> None:
        self.client = client
        client.on_change = self._on_remote_change

    # -- directory sync ----------------------------------------------------

    def _on_remote_change(self) -> None:
        # Invalidate subscriber caches; never push from here (the
        # push path is local-change only, or we would loop).
        KechoBus._subscriptions_changed(self)

    def _subscriptions_changed(self) -> None:
        super()._subscriptions_changed()
        self._push_subscribers()

    def _push_subscribers(self) -> None:
        client = self.client
        if client is None or self._pushing:
            return
        self._pushing = True
        try:
            by_channel: dict[str, list[str]] = {}
            names = set()
            for (name, host), ep in self._endpoints.items():
                names.add(name)
                if not ep.closed and ep.subscriptions:
                    by_channel.setdefault(name, []).append(host)
            for name in sorted(names):
                subs = by_channel.get(name, [])
                if client.subscribers(name) != subs:
                    client.set_subscribers(name, subs)
        finally:
            self._pushing = False

    # -- KechoBus overrides ------------------------------------------------

    def connect(self, node, name: str) -> ChannelEndpoint:
        endpoint = super().connect(node, name)
        if self.client is not None:
            self.client.open_channel(name, node.name)
        return endpoint

    def _detach(self, endpoint: ChannelEndpoint) -> None:
        super()._detach(endpoint)
        if self.client is not None:
            self.client.leave_channel(endpoint.name,
                                      endpoint.node.name)

    def _subscribers(self, name: str) -> list[str]:
        try:
            local = super()._subscribers(name)
        except Exception:
            local = []
        if self.client is None:
            return local
        merged = list(local)
        local_hosts = {h for (_n, h) in self._endpoints}
        for host in self.client.subscribers(name):
            # Hosts of this process are authoritative locally; remote
            # processes' hosts come from the directory.
            if host not in merged and host not in local_hosts:
                merged.append(host)
        return merged

    def has_audience(self, name: str, source: str) -> bool:
        return bool(self._subscribers(name))
