"""The live asyncio backend: real sockets, wall-clock time.

Same d-mon, same KECho endpoint code, same procfs — running over
localhost TCP with a socket-served channel registry.  See
:mod:`repro.live.runtime` for the node runner and
``python -m repro.harness live`` for the CLI entry point.
"""

from repro.live.bus import LiveBus
from repro.live.clock import AsyncClock, LiveTask, LiveTimeout
from repro.live.modules import HOST_MODULES, host_module_factory
from repro.live.node import LiveNode
from repro.live.registry import RegistryClient, RegistryServer
from repro.live.runtime import LiveNodeGroup, LiveRuntime
from repro.live.transport import LiveStack

__all__ = [
    "AsyncClock", "LiveTimeout", "LiveTask", "LiveNode", "LiveStack",
    "LiveBus", "LiveRuntime", "LiveNodeGroup", "RegistryServer",
    "RegistryClient", "HOST_MODULES", "host_module_factory",
]
