"""Host-backed monitoring modules for the live backend.

Each module has the *same* name and produces the *same*
:class:`~repro.dproc.metrics.MetricId` set as its simulator
counterpart (``MODULE_METRICS`` is the shared contract, asserted by
the cross-backend conformance suite), but samples the real host's
``/proc`` instead of simulated devices.  Values that the host cannot
provide without privileged counters (hardware PMCs, per-connection
RTT) are reported as 0.0 — present in the schema, honest about the
source.

All ``/proc`` reads are guarded: on a platform without them the
modules report zeros rather than fail, so the live smoke test runs
anywhere asyncio does.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.dproc.metrics import MODULE_METRICS, MetricId
from repro.dproc.modules.base import (KeyedSample, MetricSample,
                                      MonitoringModule)
from repro.dproc.modules.self_mon import SelfMon
from repro.errors import DprocError
from repro.runtime.protocol import RuntimeNode

__all__ = ["HostCpuMon", "HostMemMon", "HostDiskMon", "HostNetMon",
           "HostPmcMon", "HostProcMon", "host_module_factory",
           "HOST_MODULES"]

#: Nominal NIC capacity for available-bandwidth reporting (100 Mbps,
#: the paper's fabric) when the host interface speed is unknowable.
NOMINAL_BANDWIDTH = 100e6 / 8.0


def _read_proc(path: str) -> str:
    try:
        with open(path, "r") as fh:
            return fh.read()
    except OSError:
        return ""


class _RateTracker:
    """Turns a cumulative host counter into a per-second rate."""

    __slots__ = ("_last_t", "_last_v")

    def __init__(self) -> None:
        self._last_t: Optional[float] = None
        self._last_v = 0.0

    def rate(self, now: float, value: float) -> float:
        last_t, last_v = self._last_t, self._last_v
        self._last_t, self._last_v = now, value
        if last_t is None or now <= last_t or value < last_v:
            return 0.0
        return (value - last_v) / (now - last_t)


class HostCpuMon(MonitoringModule):
    """LOADAVG from the host's 1-minute load average."""

    name = "cpu"

    def __init__(self, node: RuntimeNode) -> None:
        super().__init__(node)
        self.avg_period = 60.0

    def metrics(self) -> tuple[MetricId, ...]:
        return MODULE_METRICS["cpu"]

    def collect(self, now: float) -> list[MetricSample]:
        try:
            load = os.getloadavg()[0]
        except OSError:  # pragma: no cover - platform without loadavg
            load = 0.0
        return [MetricSample(MetricId.LOADAVG, float(load), now)]

    def configure(self, key: str, value: float) -> None:
        """Accept the sim module's ``period`` knob (the host kernel's
        averaging window is fixed, so this only records intent)."""
        if key != "period":
            super().configure(key, value)
        if value <= 0:
            raise DprocError("averaging period must be positive")
        self.avg_period = float(value)


class HostMemMon(MonitoringModule):
    """FREEMEM from ``/proc/meminfo``."""

    name = "mem"

    def metrics(self) -> tuple[MetricId, ...]:
        return MODULE_METRICS["mem"]

    def collect(self, now: float) -> list[MetricSample]:
        free = 0.0
        for line in _read_proc("/proc/meminfo").splitlines():
            if line.startswith("MemFree:"):
                try:
                    free = float(line.split()[1]) * 1024.0
                except (IndexError, ValueError):  # pragma: no cover
                    free = 0.0
                break
        return [MetricSample(MetricId.FREEMEM, free, now)]


class HostDiskMon(MonitoringModule):
    """Sector and op rates from ``/proc/diskstats``."""

    name = "disk"

    def __init__(self, node: RuntimeNode) -> None:
        super().__init__(node)
        self._sectors = _RateTracker()
        self._reads = _RateTracker()
        self._writes = _RateTracker()

    def metrics(self) -> tuple[MetricId, ...]:
        return MODULE_METRICS["disk"]

    @staticmethod
    def _totals() -> tuple[float, float, float]:
        reads = writes = sectors = 0.0
        for line in _read_proc("/proc/diskstats").splitlines():
            fields = line.split()
            # Whole-device rows only (field 3 is the device name):
            # loopN and partitions would double-count.
            if len(fields) < 14 or not fields[2].isalpha():
                continue
            try:
                reads += float(fields[3])
                sectors += float(fields[5]) + float(fields[9])
                writes += float(fields[7])
            except ValueError:  # pragma: no cover - malformed procfs
                continue
        return sectors, reads, writes

    def collect(self, now: float) -> list[MetricSample]:
        sectors, reads, writes = self._totals()
        return [
            MetricSample(MetricId.DISKUSAGE,
                         self._sectors.rate(now, sectors), now),
            MetricSample(MetricId.DISK_READS,
                         self._reads.rate(now, reads), now),
            MetricSample(MetricId.DISK_WRITES,
                         self._writes.rate(now, writes), now),
        ]


class HostNetMon(MonitoringModule):
    """Interface byte/retransmission rates from ``/proc/net``."""

    name = "net"

    def __init__(self, node: RuntimeNode) -> None:
        super().__init__(node)
        self._tx = _RateTracker()
        self._retx = _RateTracker()

    def metrics(self) -> tuple[MetricId, ...]:
        return MODULE_METRICS["net"]

    @staticmethod
    def _tx_bytes() -> float:
        total = 0.0
        for line in _read_proc("/proc/net/dev").splitlines():
            if ":" not in line:
                continue
            name, _, rest = line.partition(":")
            if name.strip() == "lo":
                continue
            fields = rest.split()
            if len(fields) >= 9:
                try:
                    total += float(fields[8])
                except ValueError:  # pragma: no cover
                    continue
        return total

    @staticmethod
    def _retransmissions() -> float:
        lines = _read_proc("/proc/net/snmp").splitlines()
        for header, values in zip(lines, lines[1:]):
            if header.startswith("Tcp:") and values.startswith("Tcp:"):
                keys = header.split()[1:]
                vals = values.split()[1:]
                if "RetransSegs" in keys:
                    try:
                        return float(vals[keys.index("RetransSegs")])
                    except (IndexError, ValueError):  # pragma: no cover
                        return 0.0
        return 0.0

    def collect(self, now: float) -> list[MetricSample]:
        used = self._tx.rate(now, self._tx_bytes())
        retx = self._retx.rate(now, self._retransmissions())
        available = max(0.0, NOMINAL_BANDWIDTH - used)
        return [
            MetricSample(MetricId.NET_BANDWIDTH, available, now),
            MetricSample(MetricId.NET_RTT, 0.0, now),
            MetricSample(MetricId.NET_RETX, retx, now),
            MetricSample(MetricId.NET_LOST, 0.0, now),
            MetricSample(MetricId.NET_USED, used, now),
            MetricSample(MetricId.NET_DELAY, 0.0, now),
        ]


class HostPmcMon(MonitoringModule):
    """PMC stand-in: hardware counters need perf privileges, so both
    metrics report 0.0 (schema-present, value-honest)."""

    name = "pmc"

    def metrics(self) -> tuple[MetricId, ...]:
        return MODULE_METRICS["pmc"]

    def collect(self, now: float) -> list[MetricSample]:
        return [MetricSample(MetricId.CACHE_MISS, 0.0, now),
                MetricSample(MetricId.INSTRUCTIONS, 0.0, now)]


class HostProcMon(MonitoringModule):
    """Per-PID table from real ``/proc/<pid>/stat`` (the keyed stream).

    Rows are ``(pid, cpu_share, rss_bytes, io_bytes_per_s)``; CPU is a
    per-PID utime+stime rate over the poll interval (share of one
    core), I/O comes from ``/proc/<pid>/io`` where readable.  The scan
    is bounded to :attr:`MAX_PIDS` processes (ascending PID order) so
    a busy host cannot blow up the poll.
    """

    name = "proc"
    provides_keyed = True

    MAX_PIDS = 512

    def __init__(self, node: RuntimeNode) -> None:
        super().__init__(node)
        self._cpu: dict[int, _RateTracker] = {}
        self._io: dict[int, _RateTracker] = {}
        try:
            self._hz = float(os.sysconf("SC_CLK_TCK"))
        except (OSError, ValueError, AttributeError):  # pragma: no cover
            self._hz = 100.0
        try:
            self._page = float(os.sysconf("SC_PAGE_SIZE"))
        except (OSError, ValueError, AttributeError):  # pragma: no cover
            self._page = 4096.0
        self._table: list[KeyedSample] = []
        self._table_at: Optional[float] = None

    def metrics(self) -> tuple[MetricId, ...]:
        return MODULE_METRICS["proc"]

    def collect(self, now: float) -> list[MetricSample]:
        table = self._sample(now)
        return [
            MetricSample(MetricId.PROC_COUNT, float(len(table)), now),
            MetricSample(MetricId.PROC_CPU_MAX,
                         max((r[1] for r in table), default=0.0), now),
            MetricSample(MetricId.PROC_RSS_MAX,
                         max((r[2] for r in table), default=0.0), now),
        ]

    def keyed_collect(self, now: float) -> list[KeyedSample]:
        return self._sample(now)

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _pids() -> list[int]:
        try:
            entries = os.listdir("/proc")
        except OSError:  # pragma: no cover - no procfs
            return []
        return sorted(int(e) for e in entries if e.isdigit())

    def _sample(self, now: float) -> list[KeyedSample]:
        if self._table_at == now:
            return self._table
        rows: list[KeyedSample] = []
        live: set[int] = set()
        for pid in self._pids()[:self.MAX_PIDS]:
            stat = _read_proc(f"/proc/{pid}/stat")
            if not stat:
                continue  # process exited mid-scan
            # Fields after the parenthesised comm (which may contain
            # spaces): utime/stime are fields 14/15, rss field 24
            # (1-based), i.e. 11/12/21 relative to the tail.
            _, _, tail = stat.rpartition(")")
            fields = tail.split()
            if len(fields) < 22:
                continue
            try:
                jiffies = float(fields[11]) + float(fields[12])
                rss = float(fields[21]) * self._page
            except ValueError:  # pragma: no cover - malformed stat
                continue
            live.add(pid)
            tracker = self._cpu.setdefault(pid, _RateTracker())
            cpu_share = tracker.rate(now, jiffies / self._hz)
            io_rate = 0.0
            io_text = _read_proc(f"/proc/{pid}/io")
            if io_text:
                total_bytes = 0.0
                for line in io_text.splitlines():
                    if line.startswith(("read_bytes:", "write_bytes:")):
                        try:
                            total_bytes += float(line.split()[1])
                        except (IndexError, ValueError):  # pragma: no cover
                            pass
                io_rate = self._io.setdefault(
                    pid, _RateTracker()).rate(now, total_bytes)
            rows.append((pid, cpu_share, rss, io_rate))
        # Drop trackers for exited PIDs so the maps stay bounded.
        for stale in set(self._cpu) - live:
            self._cpu.pop(stale, None)
            self._io.pop(stale, None)
        self._table = rows
        self._table_at = now
        return rows


#: module name -> host-backed class (SELF_MON is backend-neutral:
#: it reads the node's telemetry registry, which LiveNode provides).
HOST_MODULES = {
    "cpu": HostCpuMon,
    "mem": HostMemMon,
    "disk": HostDiskMon,
    "net": HostNetMon,
    "pmc": HostPmcMon,
    "proc": HostProcMon,
    "dproc": SelfMon,
}


def host_module_factory(name: str, node: RuntimeNode):
    """The live backend's ``module_factory`` for ``deploy_dproc``."""
    try:
        cls = HOST_MODULES[name]
    except KeyError:
        raise DprocError(f"no host module named {name!r}") from None
    return cls(node)
