"""Host-backed monitoring modules for the live backend.

Each module has the *same* name and produces the *same*
:class:`~repro.dproc.metrics.MetricId` set as its simulator
counterpart (``MODULE_METRICS`` is the shared contract, asserted by
the cross-backend conformance suite), but samples the real host's
``/proc`` instead of simulated devices.  Values that the host cannot
provide without privileged counters (hardware PMCs, per-connection
RTT) are reported as 0.0 — present in the schema, honest about the
source.

All ``/proc`` reads are guarded: on a platform without them the
modules report zeros rather than fail, so the live smoke test runs
anywhere asyncio does.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.dproc.metrics import MODULE_METRICS, MetricId
from repro.dproc.modules.base import MetricSample, MonitoringModule
from repro.dproc.modules.self_mon import SelfMon
from repro.errors import DprocError
from repro.runtime.protocol import RuntimeNode

__all__ = ["HostCpuMon", "HostMemMon", "HostDiskMon", "HostNetMon",
           "HostPmcMon", "host_module_factory", "HOST_MODULES"]

#: Nominal NIC capacity for available-bandwidth reporting (100 Mbps,
#: the paper's fabric) when the host interface speed is unknowable.
NOMINAL_BANDWIDTH = 100e6 / 8.0


def _read_proc(path: str) -> str:
    try:
        with open(path, "r") as fh:
            return fh.read()
    except OSError:
        return ""


class _RateTracker:
    """Turns a cumulative host counter into a per-second rate."""

    __slots__ = ("_last_t", "_last_v")

    def __init__(self) -> None:
        self._last_t: Optional[float] = None
        self._last_v = 0.0

    def rate(self, now: float, value: float) -> float:
        last_t, last_v = self._last_t, self._last_v
        self._last_t, self._last_v = now, value
        if last_t is None or now <= last_t or value < last_v:
            return 0.0
        return (value - last_v) / (now - last_t)


class HostCpuMon(MonitoringModule):
    """LOADAVG from the host's 1-minute load average."""

    name = "cpu"

    def __init__(self, node: RuntimeNode) -> None:
        super().__init__(node)
        self.avg_period = 60.0

    def metrics(self) -> tuple[MetricId, ...]:
        return MODULE_METRICS["cpu"]

    def collect(self, now: float) -> list[MetricSample]:
        try:
            load = os.getloadavg()[0]
        except OSError:  # pragma: no cover - platform without loadavg
            load = 0.0
        return [MetricSample(MetricId.LOADAVG, float(load), now)]

    def configure(self, key: str, value: float) -> None:
        """Accept the sim module's ``period`` knob (the host kernel's
        averaging window is fixed, so this only records intent)."""
        if key != "period":
            super().configure(key, value)
        if value <= 0:
            raise DprocError("averaging period must be positive")
        self.avg_period = float(value)


class HostMemMon(MonitoringModule):
    """FREEMEM from ``/proc/meminfo``."""

    name = "mem"

    def metrics(self) -> tuple[MetricId, ...]:
        return MODULE_METRICS["mem"]

    def collect(self, now: float) -> list[MetricSample]:
        free = 0.0
        for line in _read_proc("/proc/meminfo").splitlines():
            if line.startswith("MemFree:"):
                try:
                    free = float(line.split()[1]) * 1024.0
                except (IndexError, ValueError):  # pragma: no cover
                    free = 0.0
                break
        return [MetricSample(MetricId.FREEMEM, free, now)]


class HostDiskMon(MonitoringModule):
    """Sector and op rates from ``/proc/diskstats``."""

    name = "disk"

    def __init__(self, node: RuntimeNode) -> None:
        super().__init__(node)
        self._sectors = _RateTracker()
        self._reads = _RateTracker()
        self._writes = _RateTracker()

    def metrics(self) -> tuple[MetricId, ...]:
        return MODULE_METRICS["disk"]

    @staticmethod
    def _totals() -> tuple[float, float, float]:
        reads = writes = sectors = 0.0
        for line in _read_proc("/proc/diskstats").splitlines():
            fields = line.split()
            # Whole-device rows only (field 3 is the device name):
            # loopN and partitions would double-count.
            if len(fields) < 14 or not fields[2].isalpha():
                continue
            try:
                reads += float(fields[3])
                sectors += float(fields[5]) + float(fields[9])
                writes += float(fields[7])
            except ValueError:  # pragma: no cover - malformed procfs
                continue
        return sectors, reads, writes

    def collect(self, now: float) -> list[MetricSample]:
        sectors, reads, writes = self._totals()
        return [
            MetricSample(MetricId.DISKUSAGE,
                         self._sectors.rate(now, sectors), now),
            MetricSample(MetricId.DISK_READS,
                         self._reads.rate(now, reads), now),
            MetricSample(MetricId.DISK_WRITES,
                         self._writes.rate(now, writes), now),
        ]


class HostNetMon(MonitoringModule):
    """Interface byte/retransmission rates from ``/proc/net``."""

    name = "net"

    def __init__(self, node: RuntimeNode) -> None:
        super().__init__(node)
        self._tx = _RateTracker()
        self._retx = _RateTracker()

    def metrics(self) -> tuple[MetricId, ...]:
        return MODULE_METRICS["net"]

    @staticmethod
    def _tx_bytes() -> float:
        total = 0.0
        for line in _read_proc("/proc/net/dev").splitlines():
            if ":" not in line:
                continue
            name, _, rest = line.partition(":")
            if name.strip() == "lo":
                continue
            fields = rest.split()
            if len(fields) >= 9:
                try:
                    total += float(fields[8])
                except ValueError:  # pragma: no cover
                    continue
        return total

    @staticmethod
    def _retransmissions() -> float:
        lines = _read_proc("/proc/net/snmp").splitlines()
        for header, values in zip(lines, lines[1:]):
            if header.startswith("Tcp:") and values.startswith("Tcp:"):
                keys = header.split()[1:]
                vals = values.split()[1:]
                if "RetransSegs" in keys:
                    try:
                        return float(vals[keys.index("RetransSegs")])
                    except (IndexError, ValueError):  # pragma: no cover
                        return 0.0
        return 0.0

    def collect(self, now: float) -> list[MetricSample]:
        used = self._tx.rate(now, self._tx_bytes())
        retx = self._retx.rate(now, self._retransmissions())
        available = max(0.0, NOMINAL_BANDWIDTH - used)
        return [
            MetricSample(MetricId.NET_BANDWIDTH, available, now),
            MetricSample(MetricId.NET_RTT, 0.0, now),
            MetricSample(MetricId.NET_RETX, retx, now),
            MetricSample(MetricId.NET_LOST, 0.0, now),
            MetricSample(MetricId.NET_USED, used, now),
            MetricSample(MetricId.NET_DELAY, 0.0, now),
        ]


class HostPmcMon(MonitoringModule):
    """PMC stand-in: hardware counters need perf privileges, so both
    metrics report 0.0 (schema-present, value-honest)."""

    name = "pmc"

    def metrics(self) -> tuple[MetricId, ...]:
        return MODULE_METRICS["pmc"]

    def collect(self, now: float) -> list[MetricSample]:
        return [MetricSample(MetricId.CACHE_MISS, 0.0, now),
                MetricSample(MetricId.INSTRUCTIONS, 0.0, now)]


#: module name -> host-backed class (SELF_MON is backend-neutral:
#: it reads the node's telemetry registry, which LiveNode provides).
HOST_MODULES = {
    "cpu": HostCpuMon,
    "mem": HostMemMon,
    "disk": HostDiskMon,
    "net": HostNetMon,
    "pmc": HostPmcMon,
    "dproc": SelfMon,
}


def host_module_factory(name: str, node: RuntimeNode):
    """The live backend's ``module_factory`` for ``deploy_dproc``."""
    try:
        cls = HOST_MODULES[name]
    except KeyError:
        raise DprocError(f"no host module named {name!r}") from None
    return cls(node)
