"""LiveRuntime: localhost asyncio node runner behind the Runtime protocol.

Runs N :class:`~repro.live.node.LiveNode` hosts as asyncio tasks in
one process, each with its own real TCP server socket; a
:class:`~repro.live.registry.RegistryServer` (self-hosted by default,
or an external one via ``registry``) serves the channel directory, so
additional runner processes can join the same cluster by pointing at
the same registry address.

Because socket and task creation are event-loop operations, scenario
construction is *deferred*: callers queue setup callbacks with
:meth:`setup` and then call :meth:`run`, which brings the world up,
executes the callbacks inside the loop, lets wall-clock time pass,
and tears everything down (d-mon stop, task cancel, socket close).
The :class:`repro.api.Scenario` facade hides this asymmetry — the same
scenario script drives either backend.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Iterator, Optional, Sequence

from repro.live.bus import LiveBus
from repro.live.clock import AsyncClock
from repro.live.modules import host_module_factory
from repro.live.node import LiveNode
from repro.live.registry import RegistryClient, RegistryServer
from repro.live.transport import BatchConfig, FlowConfig

__all__ = ["LiveRuntime", "LiveNodeGroup", "install_uvloop"]


def install_uvloop() -> bool:
    """Install the uvloop event-loop policy when available.

    Optional dependency: returns False (and changes nothing) when
    uvloop is not importable, so the stock asyncio loop keeps working
    everywhere.
    """
    try:
        import uvloop
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


class LiveNodeGroup:
    """Satisfies :class:`repro.runtime.protocol.NodeGroup`."""

    def __init__(self, nodes: dict[str, LiveNode]) -> None:
        self._nodes = nodes

    @property
    def names(self) -> list[str]:
        return list(self._nodes)

    def __getitem__(self, name: str) -> LiveNode:
        return self._nodes[name]

    def __iter__(self) -> Iterator[LiveNode]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)


def _default_names(n: int) -> list[str]:
    from repro.sim.cluster import PAPER_NODE_NAMES
    return [PAPER_NODE_NAMES[i] if i < len(PAPER_NODE_NAMES)
            else f"node{i}" for i in range(n)]


class LiveRuntime:
    """Real-time localhost backend (asyncio tasks + TCP sockets)."""

    backend = "live"

    #: The live analogue of ``deploy_dproc``'s default module set.
    module_factory = staticmethod(host_module_factory)

    def __init__(self, nodes: int = 4, seed: int = 0,
                 names: Optional[Sequence[str]] = None,
                 registry: Optional[tuple[str, int]] = None,
                 batch: Optional[BatchConfig] = None,
                 flow: Optional[FlowConfig] = None,
                 use_uvloop: bool = False) -> None:
        if nodes < 1:
            raise ValueError("a live cluster needs at least one node")
        self.clock = AsyncClock()
        host_names = list(names) if names is not None \
            else _default_names(nodes)
        if len(host_names) != nodes:
            raise ValueError("names/nodes mismatch")
        self._nodes = {
            name: LiveNode(name, self.clock, seed=seed, index=i)
            for i, name in enumerate(host_names)}
        for node in self._nodes.values():
            node.stack.batch_config = batch
            if flow is not None:
                node.stack.flow_config = flow
        self.nodes = LiveNodeGroup(self._nodes)
        self._batch = batch
        self._flow = flow
        self._use_uvloop = use_uvloop
        #: A :class:`repro.live.pool.LivePool` when this runtime is
        #: the parent of a multi-process node pool (set by the
        #: scenario facade before :meth:`run`).
        self.pool = None
        self.pool_harvests: list[dict] = []
        self._duration = 0.0
        self._registry_addr = registry
        self._registry_server: Optional[RegistryServer] = None
        self.registry_client = RegistryClient()
        self._bus: Optional[LiveBus] = None
        self._setups: list[Callable[["LiveRuntime"], None]] = []
        self._teardowns: list[Callable[["LiveRuntime"], None]] = []
        #: Auxiliary servers (``async start()/stop()``, e.g. the
        #: metrics scrape endpoint) started once setup completes and
        #: stopped first at teardown.  Register via :meth:`add_server`.
        self.aux_servers: list = []
        self.finished = False

    # -- the Runtime protocol ----------------------------------------------

    def make_bus(self) -> LiveBus:
        """The process-wide bus (one per runtime; idempotent)."""
        if self._bus is None:
            self._bus = LiveBus()
            self._bus.attach_registry(self.registry_client)
        return self._bus

    def run(self, until: float) -> None:
        """Bring the cluster up, run ``until`` wall seconds, tear down."""
        self._duration = until
        if self._use_uvloop:
            install_uvloop()
        asyncio.run(self._main(until))

    def overhead(self) -> dict:
        """Cluster-wide overhead: this process merged with pool workers.

        Shaped exactly like :func:`repro.telemetry.overhead_summary`
        (worker summaries merge via
        :func:`~repro.telemetry.merge_overhead_summaries`), so
        ``Scenario.overhead()`` reports the whole pool.
        """
        from repro.telemetry import (merge_overhead_summaries,
                                     overhead_summary)
        span = self._duration or 1.0
        local = overhead_summary(
            {node.name: node.telemetry for node in self.nodes},
            sim_seconds=span)
        remote = [h["overhead"] for h in self.pool_harvests
                  if h.get("overhead")]
        if not remote:
            return local
        return merge_overhead_summaries([local] + remote)

    def wire_stats(self) -> dict:
        """Pool-wide transport counters (frames, batches, drops)."""
        from repro.live.pool import pool_harvest
        totals = dict(pool_harvest(self, self._duration or 1.0)["wire"])
        for harvest in self.pool_harvests:
            for name, value in harvest.get("wire", {}).items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def shutdown(self) -> None:
        """Everything real is torn down inside :meth:`run`."""
        self.finished = True

    # -- scenario hooks ----------------------------------------------------

    def setup(self, fn: Callable[["LiveRuntime"], None]) -> None:
        """Queue ``fn(runtime)`` to run once the event loop is up."""
        self._setups.append(fn)

    def on_teardown(self, fn: Callable[["LiveRuntime"], None]) -> None:
        """Queue ``fn(runtime)`` to run just before shutdown."""
        self._teardowns.append(fn)

    def add_server(self, server) -> None:
        """Attach an aux server for the runtime's lifetime.

        ``server`` needs ``async start()`` and ``async stop()``; it is
        brought up after the setup callbacks (sockets exist, dprocs
        run) and taken down before the node stacks close.
        """
        self.aux_servers.append(server)

    # -- the run loop ------------------------------------------------------

    async def _main(self, until: float) -> None:
        self.clock.start()
        registry_addr = self._registry_addr
        if registry_addr is None:
            self._registry_server = RegistryServer()
            registry_addr = await self._registry_server.start()
        await self.registry_client.connect(registry_addr)
        client = self.registry_client
        try:
            for node in self._nodes.values():
                address = await node.stack.start()
                node.stack.resolve = client.host_address
                client.register_host(node.name, address)
            if self.pool is not None:
                # Fork the worker processes early, then wait for every
                # worker's dprocs before parent-side setup hooks run
                # (control writes must never race worker startup).
                self.pool.start(registry_addr, until)
                await self.pool.wait_ready()
            self.make_bus()
            for fn in self._setups:
                fn(self)
            for server in self.aux_servers:
                await server.start()
            # Let real time pass; sockets and pollers do the work.
            remaining = until - self.clock.now
            if remaining > 0:
                await asyncio.sleep(remaining)
        finally:
            if self.pool is not None:
                # Workers harvest at their own teardown; the registry
                # must stay up until they are gone.
                self.pool_harvests = await self.pool.collect()
            await self._teardown()

    async def _teardown(self) -> None:
        for server in self.aux_servers:
            await server.stop()
        for fn in self._teardowns:
            fn(self)
        # Stop any dproc deployed on our nodes (closes endpoints and
        # interrupts pollers), then hard-cancel remaining tasks.
        for node in self._nodes.values():
            dproc = node.services.get("dproc")
            if dproc is not None:
                dproc.stop()
        # One loop turn so interrupt cancellations unwind cleanly.
        await asyncio.sleep(0)
        await self.clock.cancel_all()
        for node in self._nodes.values():
            await node.stack.stop()
        await self.registry_client.close()
        if self._registry_server is not None:
            await self._registry_server.stop()
            self._registry_server = None
        self.finished = True
