"""Wall-clock time and the asyncio generator driver.

The simulator runs d-mon's polling loop as a generator that yields
``env.timeout(...)`` events.  The live backend runs *the same
generator* by driving it from an asyncio task: each yielded
:class:`LiveTimeout` becomes an ``asyncio.sleep``, and
:meth:`LiveTask.interrupt` raises :class:`repro.errors.InterruptError`
at the suspended yield — exactly the simulator's interrupt semantics.
Time is the wall clock, reported as seconds since the runtime started
so both backends' clocks read 0.0 at scenario start.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Any, Generator, Optional

from repro.errors import InterruptError

__all__ = ["AsyncClock", "LiveTimeout", "LiveTask"]


class LiveTimeout:
    """What :meth:`AsyncClock.timeout` returns: a yieldable delay."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        self.delay = float(delay)
        self.value = value


class AsyncClock:
    """Monotonic wall clock, zeroed when the runtime starts.

    Satisfies :class:`repro.runtime.protocol.Clock`.  ``active_process``
    is maintained by :class:`LiveTask` while a driven generator is
    executing a step — the event loop is single-threaded, so a plain
    attribute is race-free.
    """

    def __init__(self) -> None:
        self._t0: Optional[float] = None
        self._active: Optional["LiveTask"] = None
        #: Every task spawned against this clock (for teardown).
        self.tasks: list["LiveTask"] = []

    def start(self) -> None:
        """Zero the clock (idempotent: only the first call anchors)."""
        if self._t0 is None:
            self._t0 = time.monotonic()

    @property
    def now(self) -> float:
        """Wall seconds since :meth:`start` (0.0 before it)."""
        if self._t0 is None:
            return 0.0
        return time.monotonic() - self._t0

    def timeout(self, delay: float, value: Any = None) -> LiveTimeout:
        return LiveTimeout(delay, value)

    @property
    def active_process(self) -> Optional["LiveTask"]:
        return self._active

    def spawn(self, gen: Generator, name: str = "") -> "LiveTask":
        task = LiveTask(self, gen, name=name)
        self.tasks.append(task)
        return task

    async def cancel_all(self) -> None:
        """Cancel every live task and wait for them to unwind."""
        tasks, self.tasks = self.tasks, []
        for task in tasks:
            task.cancel()
        for task in tasks:
            await task.wait_cancelled()


class LiveTask:
    """One driven generator: the live analogue of ``sim.core.Process``.

    Satisfies :class:`repro.runtime.protocol.TaskHandle`.
    """

    def __init__(self, clock: AsyncClock, gen: Generator,
                 name: str = "") -> None:
        self.clock = clock
        self.gen = gen
        self.name = name
        self._interrupts: deque[InterruptError] = deque()
        self._sleeper: Optional[asyncio.Task] = None
        self._cancelled = False
        self.task = asyncio.ensure_future(self._drive())

    @property
    def is_alive(self) -> bool:
        return not self.task.done()

    def interrupt(self, cause: Any = None) -> None:
        """Raise InterruptError inside the generator at its next yield."""
        if not self.is_alive:
            return
        self._interrupts.append(InterruptError(cause))
        if self._sleeper is not None:
            self._sleeper.cancel()

    def cancel(self) -> None:
        """Hard-stop the task (teardown path, not an interrupt)."""
        self._cancelled = True
        self.task.cancel()

    async def wait_cancelled(self) -> None:
        try:
            await self.task
        except (asyncio.CancelledError, Exception):
            pass

    async def _drive(self) -> None:
        gen = self.gen
        clock = self.clock
        throw: Optional[InterruptError] = None
        try:
            while True:
                clock._active = self
                try:
                    if throw is not None:
                        exc, throw = throw, None
                        item = gen.throw(exc)
                    else:
                        item = gen.send(None)
                except (StopIteration, InterruptError):
                    return
                finally:
                    clock._active = None
                delay = getattr(item, "delay", 0.0)
                sleeper = asyncio.ensure_future(asyncio.sleep(delay))
                self._sleeper = sleeper
                try:
                    await sleeper
                except asyncio.CancelledError:
                    if self._cancelled or not self._interrupts:
                        raise
                    throw = self._interrupts.popleft()
                finally:
                    self._sleeper = None
        finally:
            gen.close()
