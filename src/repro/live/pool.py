"""Multi-process live node pools: hundreds of real nodes on one box.

Mirrors the PR 6 shard design for the live backend: the parent
:class:`~repro.live.runtime.LiveRuntime` owns the registry server and
the first slice of hosts; each worker process runs its own asyncio
event loop (optionally uvloop) with a :class:`LiveRuntime` over its
slice, joined to the cluster through the shared registry, and deploys
dproc from a picklable :class:`PoolDeployment`.  Workers report a
``ready`` handshake once their dprocs run (so parent-side setup hooks
— control-file writes, experiment engines — never race worker
startup) and a ``harvest`` (overhead summary + wire counters) at
teardown, which the parent merges into the cluster-wide report.

Subscription fan-in is bounded by ``deployment.watchers``: only those
hosts subscribe to the monitoring channel, so a 200-node pool opens
O(nodes × watchers) sockets instead of O(nodes²).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.dproc.dmon import DMonConfig
from repro.live.transport import BatchConfig, FlowConfig

__all__ = ["PoolDeployment", "LivePool", "partition_hosts",
           "pool_harvest", "watcher_config_fn"]

#: Seconds the parent waits for each worker's ready/harvest message.
READY_TIMEOUT = 30.0
HARVEST_TIMEOUT = 30.0


@dataclass(frozen=True)
class PoolDeployment:
    """Picklable instructions for one worker process."""

    seed: int
    dmon: Optional[DMonConfig]
    modules: tuple[str, ...]
    #: Every host in the cluster (all processes), deployment order.
    all_names: tuple[str, ...]
    #: Hosts that run a dproc (publish monitoring data).
    monitored: tuple[str, ...]
    #: Hosts that subscribe to the monitoring channel (None = all).
    watchers: Optional[tuple[str, ...]] = None
    batch: Optional[BatchConfig] = None
    flow: Optional[FlowConfig] = None
    use_uvloop: bool = False


def partition_hosts(names: Sequence[str],
                    workers: int) -> list[list[str]]:
    """Contiguous host slices, one per process (parent gets slice 0).

    Contiguous (not round-robin) so ``nodes.names[:2]`` — the hosts
    harness scripts poke from setup hooks — stay on the parent.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    workers = min(workers, len(names))
    base, extra = divmod(len(names), workers)
    slices, start = [], 0
    for i in range(workers):
        size = base + (1 if i < extra else 0)
        slices.append(list(names[start:start + size]))
        start += size
    return slices


def watcher_config_fn(config: Optional[DMonConfig],
                      watchers: Optional[Sequence[str]]):
    """Per-host DMonConfig: only ``watchers`` subscribe to monitoring."""
    base = config if config is not None else DMonConfig()
    if watchers is None:
        return lambda host: base
    watcher_set = frozenset(watchers)
    quiet = replace(base, subscribe_monitoring=False)
    return lambda host: base if host in watcher_set else quiet


def pool_harvest(runtime, duration: float) -> dict:
    """One process's contribution to the cluster-wide report."""
    from repro.telemetry import overhead_summary
    registries = {node.name: node.telemetry for node in runtime.nodes}
    wire = {}
    for name in ("net.tx_frames", "net.tx_wire_frames",
                 "net.tx_batches", "net.tx_batched_frames",
                 "net.tx_wire_bytes", "net.backpressure_deferred",
                 "net.backpressure_drops", "net.backpressure_pauses",
                 "net.backpressure_resumes"):
        wire[name] = sum(r.value(name) for r in registries.values())
    return {"overhead": overhead_summary(registries,
                                         sim_seconds=duration),
            "wire": wire}


def _worker_main(names: list[str], deployment: PoolDeployment,
                 registry_addr: tuple[str, int], duration: float,
                 conn) -> None:
    """Worker process entry: one LiveRuntime over one host slice."""
    from repro.dproc.toolkit import deploy_dproc
    from repro.live.modules import host_module_factory
    from repro.live.runtime import LiveRuntime

    runtime = LiveRuntime(
        nodes=len(names), seed=deployment.seed, names=names,
        registry=registry_addr, batch=deployment.batch,
        flow=deployment.flow, use_uvloop=deployment.use_uvloop)

    def deploy(rt: LiveRuntime) -> None:
        bus = rt.make_bus()
        local = [n for n in deployment.monitored if n in set(names)]
        dprocs = deploy_dproc(
            rt.nodes, config=deployment.dmon,
            modules=deployment.modules, bus=bus, hosts=local,
            module_factory=host_module_factory,
            config_fn=watcher_config_fn(deployment.dmon,
                                        deployment.watchers))
        for dproc in dprocs.values():
            for host in deployment.all_names:
                if host not in dproc._mounted_hosts:
                    dproc.add_cluster_node(host)
        conn.send(("ready", list(names)))

    runtime.setup(deploy)
    runtime.on_teardown(
        lambda rt: conn.send(("harvest",
                              pool_harvest(rt, duration))))
    try:
        runtime.run(duration)
    finally:
        conn.close()


class LivePool:
    """Worker-process manager owned by the parent LiveRuntime."""

    def __init__(self, slices: Sequence[Sequence[str]],
                 deployment: PoolDeployment) -> None:
        self.slices = [list(s) for s in slices]
        self.deployment = deployment
        self._procs: list[multiprocessing.Process] = []
        self._pipes: list = []
        self.harvests: list[dict] = []

    @property
    def host_names(self) -> list[str]:
        return [name for s in self.slices for name in s]

    def start(self, registry_addr: tuple[str, int],
              duration: float) -> None:
        ctx = multiprocessing.get_context("fork")
        for names in self.slices:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(names, self.deployment, registry_addr,
                      duration, child_conn),
                daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._pipes.append(parent_conn)

    def _recv(self, pipe, kind: str, timeout: float):
        while pipe.poll(timeout):
            msg = pipe.recv()
            if msg[0] == kind:
                return msg[1]
        raise TimeoutError(f"pool worker sent no {kind!r} message")

    async def wait_ready(self, timeout: float = READY_TIMEOUT) -> None:
        """Wait until every worker has deployed its dprocs.

        Runs the blocking pipe reads on executor threads: the parent's
        event loop must stay live — it serves the registry the workers
        are joining through.
        """
        import asyncio
        loop = asyncio.get_event_loop()
        for pipe in self._pipes:
            await loop.run_in_executor(None, self._recv, pipe,
                                       "ready", timeout)

    async def collect(self, timeout: float = HARVEST_TIMEOUT
                      ) -> list[dict]:
        """Harvest every worker's overhead/wire report and join it."""
        import asyncio
        loop = asyncio.get_event_loop()
        for pipe in self._pipes:
            try:
                self.harvests.append(await loop.run_in_executor(
                    None, self._recv, pipe, "harvest", timeout))
            except (TimeoutError, EOFError, OSError):
                self.harvests.append({})

        def _join() -> None:
            for proc in self._procs:
                proc.join(timeout=timeout)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=5.0)
        await loop.run_in_executor(None, _join)
        return self.harvests
