"""Length-prefixed binary event codec for the live TCP data plane.

A PBIO-style format in the spirit of the paper's ECho heritage: fixed
binary layout for the hot monitoring stream, self-describing fall-backs
for everything else.  Every frame on the wire is::

    u32  frame length (big-endian, excluding these 4 bytes)
    u16  magic (0xEC05)
    u8   kind
    str  tag      (transport dispatch tag, e.g. "kecho:dproc.monitor")
    str  channel
    str  source
    f64  submitted_at
    f64  declared size (bytes, the cost-model size)
    ...  kind-specific body

where ``str`` is a u16 byte length followed by UTF-8 bytes.  Kinds:

* ``MONITOR`` — a d-mon metric event: host string then a u16 record
  count, each record ``(u16 metric id, f64 value, f64 timestamp)``.
  MetricId values are part of the E-code filter ABI, so the ids on the
  wire are the ABI ids and decode back to :class:`MetricId`.  Two
  optional trailing sections carry the keyed per-process stream: a u16
  count of ``(u32 pid, f64 weight)`` top-K pairs, then a u16 count of
  ``(u32 pid, f64 cpu, f64 mem, f64 io)`` full rows.  Frames without
  the sections (older peers) decode as zero rows, and zero-row
  sections decode to payloads without the keys — round-trip safe in
  both directions.
* ``CONTROL`` — one control message (SetParameter, ClearParameter,
  DeployFilter, RemoveFilter) as a compact JSON object (control
  traffic is rare; self-describing beats packed here).
* ``JSON`` — any other JSON-serialisable payload.
* ``BATCH`` — a super-frame coalescing many MONITOR/CONTROL/JSON
  frames into one socket write: magic + kind, a u32 member count,
  then each member as a complete length-prefixed frame.  The decoder
  unwraps batches transparently (``FrameDecoder.feed`` returns the
  member frame bodies), so :func:`decode_frame` never sees one;
  nesting is rejected.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional, Sequence

from repro.dproc.metrics import MetricId
from repro.errors import ChannelError
from repro.kecho.control import (ClearParameter, ControlMessage,
                                 DeployFilter, RemoveFilter,
                                 SetParameter)
from repro.kecho.event import ChannelEvent

__all__ = ["encode_frame", "decode_frame", "encode_batch",
           "FrameDecoder", "MAGIC", "KIND_MONITOR", "KIND_CONTROL",
           "KIND_JSON", "KIND_BATCH", "MAX_FRAME_BYTES",
           "MAX_BATCH_FRAMES"]

MAGIC = 0xEC05
KIND_MONITOR = 1
KIND_CONTROL = 2
KIND_JSON = 3
KIND_BATCH = 4

#: Upper bound on one frame; protects the decoder from a corrupt or
#: hostile length prefix.  A ``BATCH`` super-frame is bounded like any
#: other frame, so a batch can never smuggle more than this through.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Upper bound on members per ``BATCH`` super-frame.
MAX_BATCH_FRAMES = 4096

_CONTROL_TYPES = {cls.__name__: cls for cls in
                  (SetParameter, ClearParameter, DeployFilter,
                   RemoveFilter)}

_RECORD = struct.Struct(">Hdd")
_TOP_ROW = struct.Struct(">Id")
_PROC_ROW = struct.Struct(">Iddd")
_HEAD = struct.Struct(">HB")
_F64 = struct.Struct(">d")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ChannelError("string too long for wire format")
    return _U16.pack(len(raw)) + raw


class _Reader:
    """Cursor over one frame's bytes."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise ChannelError("truncated frame")
        chunk = self.buf[self.pos:end]
        self.pos = end
        return chunk

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def string(self) -> str:
        return self.take(self.u16()).decode("utf-8")


def encode_frame(tag: str, event: ChannelEvent) -> bytes:
    """Encode one event (with its transport tag) as a complete frame."""
    payload = event.payload
    if (isinstance(payload, dict) and "host" in payload
            and "metrics" in payload):
        kind = KIND_MONITOR
        metrics = payload["metrics"]
        body = [_pack_str(payload["host"]),
                _U16.pack(len(metrics))]
        for metric, (value, ts) in metrics.items():
            body.append(_RECORD.pack(int(metric), float(value),
                                     float(ts)))
        top = payload.get("proc_top") or {}
        procs = payload.get("procs") or {}
        if len(top) > 0xFFFF or len(procs) > 0xFFFF:
            raise ChannelError("too many keyed rows for wire format")
        body.append(_U16.pack(len(top)))
        for pid in sorted(top):
            body.append(_TOP_ROW.pack(int(pid), float(top[pid])))
        body.append(_U16.pack(len(procs)))
        for pid in sorted(procs):
            cpu, mem, io = procs[pid]
            body.append(_PROC_ROW.pack(int(pid), float(cpu),
                                       float(mem), float(io)))
        body_bytes = b"".join(body)
    elif isinstance(payload, ControlMessage):
        kind = KIND_CONTROL
        doc = {"type": type(payload).__name__, "sender": payload.sender,
               "target": payload.target}
        for attr in ("metric", "parameter", "spec", "source",
                     "filter_id"):
            if hasattr(payload, attr):
                doc[attr] = getattr(payload, attr)
        raw = json.dumps(doc, separators=(",", ":")).encode("utf-8")
        body_bytes = _U32.pack(len(raw)) + raw
    else:
        kind = KIND_JSON
        try:
            raw = json.dumps(payload,
                             separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise ChannelError(
                f"live payload is not wire-encodable: {exc}") from exc
        body_bytes = _U32.pack(len(raw)) + raw
    frame = b"".join([
        _HEAD.pack(MAGIC, kind),
        _pack_str(tag),
        _pack_str(event.channel),
        _pack_str(event.source),
        _F64.pack(float(event.submitted_at)),
        _F64.pack(float(event.size)),
        body_bytes,
    ])
    return _U32.pack(len(frame)) + frame


def decode_frame(frame: bytes) -> tuple[str, ChannelEvent]:
    """Decode one frame body (without length prefix) → (tag, event)."""
    reader = _Reader(frame)
    magic, kind = _HEAD.unpack(reader.take(_HEAD.size))
    if magic != MAGIC:
        raise ChannelError(f"bad frame magic {magic:#x}")
    if kind == KIND_BATCH:
        raise ChannelError(
            "BATCH super-frames must be unwrapped by FrameDecoder "
            "before decode_frame")
    tag = reader.string()
    channel = reader.string()
    source = reader.string()
    submitted_at = reader.f64()
    size = reader.f64()
    payload: Any
    if kind == KIND_MONITOR:
        host = reader.string()
        count = reader.u16()
        metrics: dict[MetricId, tuple[float, float]] = {}
        for _ in range(count):
            mid, value, ts = _RECORD.unpack(reader.take(_RECORD.size))
            metrics[MetricId(mid)] = (value, ts)
        payload = {"host": host, "metrics": metrics}
        if reader.pos < len(reader.buf):
            n_top = reader.u16()
            if n_top:
                top: dict[int, float] = {}
                for _ in range(n_top):
                    pid, weight = _TOP_ROW.unpack(
                        reader.take(_TOP_ROW.size))
                    top[pid] = weight
                payload["proc_top"] = top
            n_procs = reader.u16()
            if n_procs:
                procs: dict[int, tuple[float, float, float]] = {}
                for _ in range(n_procs):
                    pid, cpu, mem, io = _PROC_ROW.unpack(
                        reader.take(_PROC_ROW.size))
                    procs[pid] = (cpu, mem, io)
                payload["procs"] = procs
    elif kind == KIND_CONTROL:
        raw = reader.take(_U32.unpack(reader.take(4))[0])
        doc = json.loads(raw.decode("utf-8"))
        cls = _CONTROL_TYPES.get(doc.pop("type", ""))
        if cls is None:
            raise ChannelError("unknown control message type on wire")
        payload = cls(**doc)
    elif kind == KIND_JSON:
        raw = reader.take(_U32.unpack(reader.take(4))[0])
        payload = json.loads(raw.decode("utf-8"))
    else:
        raise ChannelError(f"unknown frame kind {kind}")
    event = ChannelEvent(channel=channel, source=source,
                         payload=payload, size=size,
                         submitted_at=submitted_at)
    return tag, event


def encode_batch(frames: Sequence[bytes]) -> bytes:
    """Coalesce complete length-prefixed frames into one super-frame.

    ``frames`` are outputs of :func:`encode_frame` (length prefix
    included); they are embedded verbatim, so unwrapping is the same
    splitting loop the decoder already runs on the outer stream.
    """
    if not frames:
        raise ChannelError("cannot encode an empty batch")
    if len(frames) > MAX_BATCH_FRAMES:
        raise ChannelError(
            f"batch of {len(frames)} frames exceeds the "
            f"{MAX_BATCH_FRAMES}-member bound")
    body = b"".join([_HEAD.pack(MAGIC, KIND_BATCH),
                     _U32.pack(len(frames))] + list(frames))
    if len(body) > MAX_FRAME_BYTES:
        raise ChannelError(
            f"batch of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound")
    return _U32.pack(len(body)) + body


class FrameDecoder:
    """Incremental splitter: feed stream chunks, get whole frames.

    ``BATCH`` super-frames are unwrapped transparently: ``feed``
    returns their member frame bodies in wire order, never the batch
    itself.  Zero-length frames, oversized frames/batches and nested
    batches are protocol errors.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every now-complete frame body."""
        self._buf.extend(data)
        frames: list[bytes] = []
        buf = self._buf
        while len(buf) >= 4:
            (length,) = _U32.unpack(bytes(buf[:4]))
            self._check_length(length)
            if len(buf) < 4 + length:
                break
            body = bytes(buf[4:4 + length])
            del buf[:4 + length]
            if (length >= _HEAD.size
                    and body[2] == KIND_BATCH
                    and _U16.unpack(body[:2])[0] == MAGIC):
                frames.extend(self._unwrap_batch(body))
            else:
                frames.append(body)
        return frames

    def finish(self) -> None:
        """Assert a clean end-of-stream.

        Raises :class:`ChannelError` when the stream ended inside a
        frame — a partial length header or a truncated body.
        """
        if self._buf:
            raise ChannelError(
                f"stream ended mid-frame ({len(self._buf)} trailing "
                f"bytes buffered)")

    @staticmethod
    def _check_length(length: int) -> None:
        if length == 0:
            raise ChannelError("zero-length frame on the wire")
        if length > MAX_FRAME_BYTES:
            raise ChannelError(
                f"frame of {length} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte bound")

    def _unwrap_batch(self, body: bytes) -> list[bytes]:
        """Split one BATCH super-frame body into member frame bodies."""
        reader = _Reader(body)
        reader.take(_HEAD.size)  # magic/kind validated by the caller
        (count,) = _U32.unpack(reader.take(4))
        if count == 0:
            raise ChannelError("empty BATCH super-frame")
        if count > MAX_BATCH_FRAMES:
            raise ChannelError(
                f"BATCH of {count} members exceeds the "
                f"{MAX_BATCH_FRAMES}-member bound")
        members: list[bytes] = []
        for _ in range(count):
            (length,) = _U32.unpack(reader.take(4))
            self._check_length(length)
            member = reader.take(length)
            if (length >= _HEAD.size
                    and member[2] == KIND_BATCH
                    and _U16.unpack(member[:2])[0] == MAGIC):
                raise ChannelError("nested BATCH super-frame")
            members.append(member)
        if reader.pos != len(body):
            raise ChannelError(
                f"BATCH has {len(body) - reader.pos} trailing bytes "
                f"after {count} members")
        return members
