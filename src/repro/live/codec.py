"""Length-prefixed binary event codec for the live TCP data plane.

A PBIO-style format in the spirit of the paper's ECho heritage: fixed
binary layout for the hot monitoring stream, self-describing fall-backs
for everything else.  Every frame on the wire is::

    u32  frame length (big-endian, excluding these 4 bytes)
    u16  magic (0xEC05)
    u8   kind
    str  tag      (transport dispatch tag, e.g. "kecho:dproc.monitor")
    str  channel
    str  source
    f64  submitted_at
    f64  declared size (bytes, the cost-model size)
    ...  kind-specific body

where ``str`` is a u16 byte length followed by UTF-8 bytes.  Kinds:

* ``MONITOR`` — a d-mon metric event: host string then a u16 record
  count, each record ``(u16 metric id, f64 value, f64 timestamp)``.
  MetricId values are part of the E-code filter ABI, so the ids on the
  wire are the ABI ids and decode back to :class:`MetricId`.  Two
  optional trailing sections carry the keyed per-process stream: a u16
  count of ``(u32 pid, f64 weight)`` top-K pairs, then a u16 count of
  ``(u32 pid, f64 cpu, f64 mem, f64 io)`` full rows.  Frames without
  the sections (older peers) decode as zero rows, and zero-row
  sections decode to payloads without the keys — round-trip safe in
  both directions.
* ``CONTROL`` — one control message (SetParameter, ClearParameter,
  DeployFilter, RemoveFilter) as a compact JSON object (control
  traffic is rare; self-describing beats packed here).
* ``JSON`` — any other JSON-serialisable payload.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional

from repro.dproc.metrics import MetricId
from repro.errors import ChannelError
from repro.kecho.control import (ClearParameter, ControlMessage,
                                 DeployFilter, RemoveFilter,
                                 SetParameter)
from repro.kecho.event import ChannelEvent

__all__ = ["encode_frame", "decode_frame", "FrameDecoder",
           "MAGIC", "KIND_MONITOR", "KIND_CONTROL", "KIND_JSON",
           "MAX_FRAME_BYTES"]

MAGIC = 0xEC05
KIND_MONITOR = 1
KIND_CONTROL = 2
KIND_JSON = 3

#: Upper bound on one frame; protects the decoder from a corrupt or
#: hostile length prefix.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_CONTROL_TYPES = {cls.__name__: cls for cls in
                  (SetParameter, ClearParameter, DeployFilter,
                   RemoveFilter)}

_RECORD = struct.Struct(">Hdd")
_TOP_ROW = struct.Struct(">Id")
_PROC_ROW = struct.Struct(">Iddd")
_HEAD = struct.Struct(">HB")
_F64 = struct.Struct(">d")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ChannelError("string too long for wire format")
    return _U16.pack(len(raw)) + raw


class _Reader:
    """Cursor over one frame's bytes."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise ChannelError("truncated frame")
        chunk = self.buf[self.pos:end]
        self.pos = end
        return chunk

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def string(self) -> str:
        return self.take(self.u16()).decode("utf-8")


def encode_frame(tag: str, event: ChannelEvent) -> bytes:
    """Encode one event (with its transport tag) as a complete frame."""
    payload = event.payload
    if (isinstance(payload, dict) and "host" in payload
            and "metrics" in payload):
        kind = KIND_MONITOR
        metrics = payload["metrics"]
        body = [_pack_str(payload["host"]),
                _U16.pack(len(metrics))]
        for metric, (value, ts) in metrics.items():
            body.append(_RECORD.pack(int(metric), float(value),
                                     float(ts)))
        top = payload.get("proc_top") or {}
        procs = payload.get("procs") or {}
        if len(top) > 0xFFFF or len(procs) > 0xFFFF:
            raise ChannelError("too many keyed rows for wire format")
        body.append(_U16.pack(len(top)))
        for pid in sorted(top):
            body.append(_TOP_ROW.pack(int(pid), float(top[pid])))
        body.append(_U16.pack(len(procs)))
        for pid in sorted(procs):
            cpu, mem, io = procs[pid]
            body.append(_PROC_ROW.pack(int(pid), float(cpu),
                                       float(mem), float(io)))
        body_bytes = b"".join(body)
    elif isinstance(payload, ControlMessage):
        kind = KIND_CONTROL
        doc = {"type": type(payload).__name__, "sender": payload.sender,
               "target": payload.target}
        for attr in ("metric", "parameter", "spec", "source",
                     "filter_id"):
            if hasattr(payload, attr):
                doc[attr] = getattr(payload, attr)
        raw = json.dumps(doc, separators=(",", ":")).encode("utf-8")
        body_bytes = _U32.pack(len(raw)) + raw
    else:
        kind = KIND_JSON
        try:
            raw = json.dumps(payload,
                             separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise ChannelError(
                f"live payload is not wire-encodable: {exc}") from exc
        body_bytes = _U32.pack(len(raw)) + raw
    frame = b"".join([
        _HEAD.pack(MAGIC, kind),
        _pack_str(tag),
        _pack_str(event.channel),
        _pack_str(event.source),
        _F64.pack(float(event.submitted_at)),
        _F64.pack(float(event.size)),
        body_bytes,
    ])
    return _U32.pack(len(frame)) + frame


def decode_frame(frame: bytes) -> tuple[str, ChannelEvent]:
    """Decode one frame body (without length prefix) → (tag, event)."""
    reader = _Reader(frame)
    magic, kind = _HEAD.unpack(reader.take(_HEAD.size))
    if magic != MAGIC:
        raise ChannelError(f"bad frame magic {magic:#x}")
    tag = reader.string()
    channel = reader.string()
    source = reader.string()
    submitted_at = reader.f64()
    size = reader.f64()
    payload: Any
    if kind == KIND_MONITOR:
        host = reader.string()
        count = reader.u16()
        metrics: dict[MetricId, tuple[float, float]] = {}
        for _ in range(count):
            mid, value, ts = _RECORD.unpack(reader.take(_RECORD.size))
            metrics[MetricId(mid)] = (value, ts)
        payload = {"host": host, "metrics": metrics}
        if reader.pos < len(reader.buf):
            n_top = reader.u16()
            if n_top:
                top: dict[int, float] = {}
                for _ in range(n_top):
                    pid, weight = _TOP_ROW.unpack(
                        reader.take(_TOP_ROW.size))
                    top[pid] = weight
                payload["proc_top"] = top
            n_procs = reader.u16()
            if n_procs:
                procs: dict[int, tuple[float, float, float]] = {}
                for _ in range(n_procs):
                    pid, cpu, mem, io = _PROC_ROW.unpack(
                        reader.take(_PROC_ROW.size))
                    procs[pid] = (cpu, mem, io)
                payload["procs"] = procs
    elif kind == KIND_CONTROL:
        raw = reader.take(_U32.unpack(reader.take(4))[0])
        doc = json.loads(raw.decode("utf-8"))
        cls = _CONTROL_TYPES.get(doc.pop("type", ""))
        if cls is None:
            raise ChannelError("unknown control message type on wire")
        payload = cls(**doc)
    elif kind == KIND_JSON:
        raw = reader.take(_U32.unpack(reader.take(4))[0])
        payload = json.loads(raw.decode("utf-8"))
    else:
        raise ChannelError(f"unknown frame kind {kind}")
    event = ChannelEvent(channel=channel, source=source,
                         payload=payload, size=size,
                         submitted_at=submitted_at)
    return tag, event


class FrameDecoder:
    """Incremental splitter: feed stream chunks, get whole frames."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every now-complete frame body."""
        self._buf.extend(data)
        frames: list[bytes] = []
        buf = self._buf
        while len(buf) >= 4:
            (length,) = _U32.unpack(bytes(buf[:4]))
            if length > MAX_FRAME_BYTES:
                raise ChannelError(
                    f"frame of {length} bytes exceeds the "
                    f"{MAX_FRAME_BYTES}-byte bound")
            if len(buf) < 4 + length:
                break
            frames.append(bytes(buf[4:4 + length]))
            del buf[:4 + length]
        return frames
