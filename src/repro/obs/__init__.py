"""The time-series metrics plane: TSDB, exposition, health, export.

Everything the dproc stack retains *about itself over time* lives
here: a deterministic ring-buffer TSDB with rollup tiers and windowed
queries (:mod:`repro.obs.tsdb`), an OpenMetrics text renderer and
validating mini-parser (:mod:`repro.obs.openmetrics`), a declarative
health/SLO engine with hysteresis and fault attribution
(:mod:`repro.obs.health`), and the :class:`ObservabilityPlane` that
feeds them from periodic telemetry snapshots and durable-stream
replay (:mod:`repro.obs.plane`).

Attach it with ``Scenario.with_observability()`` — the same code path
drives the simulator (virtual-time sampling, byte-stable exports) and
the live asyncio backend (wall-clock sampling plus the
``/metrics``-and-``/healthz`` scrape endpoint in
:mod:`repro.live.scrape`).  The plane is passive by construction:
goldens, causal traces and data-plane stream bytes are bit-identical
with observability on or off.
"""

from repro.obs.health import (DEGRADED, HEALTHY, HealthEngine,
                              HealthRule, HealthTransition,
                              attribute_transitions, default_rules,
                              health_section_from_overhead)
from repro.obs.openmetrics import (CONTENT_TYPE, Sample, metric_name,
                                   parse_openmetrics,
                                   render_openmetrics)
from repro.obs.plane import ObservabilityPlane, merge_planes
from repro.obs.tsdb import (Bucket, ObsError, Series, TimeSeriesDB,
                            merge_tsdbs, series_key)

__all__ = [
    "ObsError", "Bucket", "Series", "TimeSeriesDB", "merge_tsdbs",
    "series_key",
    "CONTENT_TYPE", "Sample", "metric_name", "parse_openmetrics",
    "render_openmetrics",
    "HEALTHY", "DEGRADED", "HealthRule", "HealthTransition",
    "HealthEngine", "default_rules", "attribute_transitions",
    "health_section_from_overhead",
    "ObservabilityPlane", "merge_planes",
]
