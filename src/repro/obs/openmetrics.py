"""OpenMetrics / Prometheus text exposition over telemetry registries.

:func:`render_openmetrics` turns a cluster's per-node
:class:`~repro.telemetry.TelemetryRegistry` instruments (plus an
optional health verdict) into the OpenMetrics text format the live
``/metrics`` endpoint serves: counters as ``_total`` samples, gauges
plain, histograms as cumulative ``_bucket{le=...}`` ladders with
``_sum``/``_count``, every sample labelled ``node="<host>"``.

:func:`parse_openmetrics` is the deliberately tiny validating parser
the CI scrape smoke and ``harness obs --watch`` use: it checks the
family/sample grammar, ``# EOF`` termination, and type consistency,
and hands back the samples — it is not a full OpenMetrics
implementation (no exemplars, no timestamps).

Rendering is a pure read: sorted nodes, sorted instrument names, no
wall-clock timestamps, so the same cluster state always yields the
same bytes.
"""

from __future__ import annotations

import math
import re
from typing import Mapping, Optional

from repro.obs.tsdb import ObsError
from repro.telemetry.instruments import (Counter, Gauge, Histogram,
                                         SpanLog)

__all__ = ["render_openmetrics", "parse_openmetrics",
           "CONTENT_TYPE", "Sample"]

#: The content type the scrape endpoint declares.
CONTENT_TYPE = ("application/openmetrics-text; version=1.0.0; "
                "charset=utf-8")

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')


def metric_name(instrument_name: str, prefix: str = "repro") -> str:
    """Map a dotted instrument name to an OpenMetrics family name."""
    flat = instrument_name.replace(".", "_").replace("-", "_")
    return f"{prefix}_{flat}" if prefix else flat


def _fmt(value: float) -> str:
    if value != value:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labelstr(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_openmetrics(registries: Mapping[str, object],
                       health: Optional[dict] = None,
                       prefix: str = "repro") -> str:
    """Render per-node registries (name → registry) as OpenMetrics text.

    ``health`` is an optional health-engine verdict document
    (:meth:`repro.obs.health.HealthEngine.verdict`); when given, a
    ``<prefix>_health_ok`` gauge per rule/subject and an overall
    ``<prefix>_healthy`` gauge are appended.
    """
    # family name -> (type, [(labels, value), ...]); insertion keyed on
    # sorted traversal so the output is stable.
    families: dict[str, tuple[str, list]] = {}

    def fam(name: str, kind: str) -> list:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = (kind, [])
        elif entry[0] != kind:
            raise ObsError(
                f"metric family {name!r} rendered as both "
                f"{entry[0]} and {kind}")
        return entry[1]

    for node in sorted(registries):
        registry = registries[node]
        for iname in registry.names():
            instrument = registry.get(iname)
            base = metric_name(iname, prefix)
            labels = {"node": node}
            if isinstance(instrument, Counter):
                fam(base, "counter").append(
                    ({**labels}, instrument.value, "_total"))
            elif isinstance(instrument, Gauge):
                fam(base, "gauge").append(({**labels},
                                           instrument.value, ""))
            elif isinstance(instrument, Histogram):
                rows = fam(base, "histogram")
                cumulative = 0
                for edge, count in zip(instrument.bounds,
                                       instrument.counts):
                    cumulative += count
                    rows.append(({**labels, "le": _fmt(edge)},
                                 cumulative, "_bucket"))
                rows.append(({**labels, "le": "+Inf"},
                             instrument.count, "_bucket"))
                rows.append(({**labels}, instrument.total, "_sum"))
                rows.append(({**labels}, instrument.count, "_count"))
            elif isinstance(instrument, SpanLog):
                fam(base + "_spans_recorded", "counter").append(
                    ({**labels}, instrument.recorded, "_total"))
    if health is not None:
        rows = fam(f"{prefix}_health_ok", "gauge")
        for check in health.get("rules", []):
            rows.append(({"rule": check["rule"],
                          "subject": check.get("subject", "cluster")},
                         0.0 if check["status"] != "healthy" else 1.0,
                         ""))
        fam(f"{prefix}_healthy", "gauge").append(
            ({}, 1.0 if health.get("healthy", True) else 0.0, ""))

    lines: list[str] = []
    for name in families:
        kind, rows = families[name]
        if not _NAME_OK.match(name):  # pragma: no cover - defensive
            raise ObsError(f"bad metric name {name!r}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value, suffix in rows:
            lines.append(f"{name}{suffix}{_labelstr(labels)} "
                         f"{_fmt(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class Sample:
    """One parsed sample line."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str],
                 value: float) -> None:
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Sample {self.name}{self.labels} {self.value}>"


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Validate exposition ``text``; returns family → parsed document.

    The result maps family name to ``{"type": ..., "samples":
    [Sample, ...]}``.  Raises :class:`ObsError` on grammar violations:
    missing ``# EOF``, samples for undeclared families with suffixes,
    malformed label sets, non-numeric values, duplicate TYPE lines.
    """
    if not text.endswith("\n"):
        raise ObsError("exposition must end with a newline")
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ObsError("exposition must terminate with '# EOF'")
    families: dict[str, dict] = {}
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line:
            raise ObsError(f"line {lineno}: blank line in exposition")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP",
                                                  "UNIT"):
                raise ObsError(f"line {lineno}: bad comment {line!r}")
            if parts[1] == "TYPE":
                name = parts[2]
                if len(parts) < 4:
                    raise ObsError(
                        f"line {lineno}: TYPE without a type")
                if name in families:
                    raise ObsError(
                        f"line {lineno}: duplicate TYPE for {name!r}")
                families[name] = {"type": parts[3], "samples": []}
            continue
        m = _SAMPLE.match(line)
        if m is None:
            raise ObsError(f"line {lineno}: bad sample {line!r}")
        sample_name = m.group("name")
        family = _family_of(sample_name, families)
        if family is None:
            raise ObsError(
                f"line {lineno}: sample {sample_name!r} has no "
                f"preceding TYPE")
        labels: dict[str, str] = {}
        raw = m.group("labels")
        if raw:
            for part in raw.split(","):
                lm = _LABEL.match(part)
                if lm is None:
                    raise ObsError(
                        f"line {lineno}: bad label {part!r}")
                labels[lm.group("key")] = lm.group("val")
        value_text = m.group("value")
        try:
            value = float(value_text)
        except ValueError:
            raise ObsError(
                f"line {lineno}: non-numeric value {value_text!r}")
        families[family]["samples"].append(
            Sample(sample_name, labels, value))
    return families


def _family_of(sample_name: str,
               families: Mapping[str, dict]) -> Optional[str]:
    if sample_name in families:
        return sample_name
    for suffix in ("_total", "_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return None
