"""The declarative health/SLO engine over the metrics plane.

Rules are data (:class:`HealthRule`): *which* windowed query to run
against the TSDB (``agg`` ∈ rate / avg / p50 / p99 / max / min over
``window`` seconds), *what* must hold of the result (``op`` +
``threshold``), and *how sticky* the verdict is (``for_bad`` /
``for_ok`` consecutive evaluations — the hysteresis that keeps one
noisy sample from flapping an alert).  A rule with ``scope="node"``
is evaluated once per monitored node against that node's series; a
``scope="cluster"`` rule runs once against an unlabelled series.

The engine is deterministic and passive: evaluation order is (sorted
rule name, sorted subject), queries are pure reads, and every state
flip is recorded as a :class:`HealthTransition` — both on the engine
and, when a durable log is attached, as an entry on the dedicated
``obs.health`` channel (the PR 7 stream machinery reused, but a
*separate* broker: the data-plane stream's bytes stay bit-identical
with the health engine on or off, which the passivity tests pin).

:func:`attribute_transitions` closes the audit loop: each
degraded→recovered window is matched against the fault-plane drop
entries the durable stream recorded inside it, so a chaos run's alert
can name the injected fault that caused it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.obs.tsdb import ObsError, TimeSeriesDB

__all__ = ["HealthRule", "HealthTransition", "HealthEngine",
           "default_rules", "attribute_transitions",
           "health_section_from_overhead", "HEALTHY", "DEGRADED"]

HEALTHY = "healthy"
DEGRADED = "degraded"

_OPS = {
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
}


@dataclass(frozen=True)
class HealthRule:
    """One SLO: ``agg(metric[stat] over window) op threshold`` must hold.

    A query that returns NaN (no samples yet) is *vacuously healthy*:
    silence is the steady state before the first scrape, not an alert.
    """

    name: str
    metric: str
    threshold: float
    op: str = "<"
    agg: str = "avg"
    window: float = 10.0
    #: Value of the ``stat`` label on sampled histogram series
    #: ("count", "mean", "p99"); "" selects the plain series.
    stat: str = ""
    scope: str = "node"
    #: Consecutive failing evaluations before the verdict degrades.
    for_bad: int = 2
    #: Consecutive passing evaluations before it recovers.
    for_ok: int = 2

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ObsError(f"rule {self.name!r}: unknown op {self.op!r}")
        if self.scope not in ("node", "cluster"):
            raise ObsError(
                f"rule {self.name!r}: unknown scope {self.scope!r}")
        if self.window <= 0 or self.for_bad < 1 or self.for_ok < 1:
            raise ObsError(f"rule {self.name!r}: bad window/hysteresis")

    def labels(self, node: str = "") -> tuple:
        labels = []
        if self.scope == "node":
            labels.append(("node", node))
        if self.stat:
            labels.append(("stat", self.stat))
        return tuple(labels)

    def query(self, tsdb: TimeSeriesDB, node: str,
              now: float) -> float:
        labels = self.labels(node)
        if self.agg == "rate":
            return tsdb.rate(self.metric, labels,
                             window=self.window, now=now)
        if self.agg == "avg":
            return tsdb.avg_over_time(self.metric, labels,
                                      window=self.window, now=now)
        if self.agg == "max":
            return tsdb.max_over_time(self.metric, labels,
                                      window=self.window, now=now)
        if self.agg == "min":
            return tsdb.min_over_time(self.metric, labels,
                                      window=self.window, now=now)
        if self.agg.startswith("p"):
            try:
                q = float(self.agg[1:]) / 100.0
            except ValueError:
                raise ObsError(
                    f"rule {self.name!r}: bad aggregation "
                    f"{self.agg!r}")
            return tsdb.quantile_over_time(
                q, self.metric, labels, window=self.window, now=now)
        raise ObsError(f"rule {self.name!r}: unknown aggregation "
                       f"{self.agg!r}")

    def holds(self, value: float) -> bool:
        if value != value:
            return True
        return _OPS[self.op](value, self.threshold)


@dataclass(frozen=True)
class HealthTransition:
    """One verdict flip for (rule, subject)."""

    time: float
    rule: str
    #: Node name, or "cluster" for rollups and cluster-scope rules.
    subject: str
    from_status: str
    to_status: str
    #: The query value that tripped (or cleared) the rule.
    value: float
    threshold: float

    def to_record(self) -> dict:
        return {"time": self.time, "rule": self.rule,
                "subject": self.subject, "from": self.from_status,
                "to": self.to_status, "value": self.value,
                "threshold": self.threshold}


@dataclass
class _RuleState:
    status: str = HEALTHY
    bad_streak: int = 0
    ok_streak: int = 0
    last_value: float = math.nan


class HealthEngine:
    """Evaluates rules against a TSDB and tracks sticky verdicts."""

    #: Channel the durable transition log writes to.
    CHANNEL = "obs.health"

    def __init__(self, tsdb: TimeSeriesDB,
                 rules: Sequence[HealthRule],
                 nodes: Sequence[str] = (),
                 log_broker=None) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ObsError("duplicate health rule names")
        self.tsdb = tsdb
        self.rules = tuple(sorted(rules, key=lambda r: r.name))
        self.nodes = tuple(sorted(nodes))
        self.transitions: list[HealthTransition] = []
        self._states: dict[tuple[str, str], _RuleState] = {}
        self._log = log_broker
        self.evaluations = 0

    def _subjects(self, rule: HealthRule) -> tuple[str, ...]:
        return self.nodes if rule.scope == "node" else ("cluster",)

    def _state(self, rule: str, subject: str) -> _RuleState:
        key = (rule, subject)
        st = self._states.get(key)
        if st is None:
            st = self._states[key] = _RuleState()
        return st

    def evaluate(self, now: float) -> None:
        """Run every rule once at time ``now`` (deterministic order)."""
        self.evaluations += 1
        for rule in self.rules:
            for subject in self._subjects(rule):
                node = subject if rule.scope == "node" else ""
                value = rule.query(self.tsdb, node, now)
                st = self._state(rule.name, subject)
                st.last_value = value
                if rule.holds(value):
                    st.ok_streak += 1
                    st.bad_streak = 0
                    if st.status == DEGRADED \
                            and st.ok_streak >= rule.for_ok:
                        self._flip(now, rule, subject, st, HEALTHY,
                                   value)
                else:
                    st.bad_streak += 1
                    st.ok_streak = 0
                    if st.status == HEALTHY \
                            and st.bad_streak >= rule.for_bad:
                        self._flip(now, rule, subject, st, DEGRADED,
                                   value)

    def _flip(self, now: float, rule: HealthRule, subject: str,
              st: _RuleState, to_status: str, value: float) -> None:
        transition = HealthTransition(
            time=now, rule=rule.name, subject=subject,
            from_status=st.status, to_status=to_status, value=value,
            threshold=rule.threshold)
        st.status = to_status
        self.transitions.append(transition)
        if self._log is not None:
            # Durable audit trail: the stream machinery's append path,
            # on a broker of its own (never the data-plane broker).
            self._log.stream(self.CHANNEL).append(
                kind="health", source=subject, dest="",
                time=now, submitted_at=now, size=0.0,
                summary=f"{rule.name}:{st.status}",
                fault=f"{transition.from_status}->{to_status}")

    # -- read side ----------------------------------------------------------

    def status(self, rule: str, subject: str) -> str:
        return self._state(rule, subject).status

    def verdict(self, now: Optional[float] = None) -> dict:
        """The rolled-up verdict document ``/healthz`` serves.

        Per rule: every degraded subject is listed; the cluster row
        for a node-scope rule is degraded iff any node is.
        """
        rows: list[dict] = []
        healthy = True
        for rule in self.rules:
            degraded_subjects = []
            worst_value = math.nan
            for subject in self._subjects(rule):
                st = self._state(rule.name, subject)
                if st.status == DEGRADED:
                    degraded_subjects.append(subject)
                    worst_value = st.last_value
            status = DEGRADED if degraded_subjects else HEALTHY
            healthy = healthy and status == HEALTHY
            row = {"rule": rule.name, "subject": "cluster",
                   "status": status,
                   "threshold": rule.threshold,
                   "degraded_subjects": degraded_subjects}
            if degraded_subjects:
                row["value"] = worst_value
            rows.append(row)
        doc = {"healthy": healthy, "rules": rows,
               "transitions": len(self.transitions)}
        if now is not None:
            doc["time"] = now
        return doc

    def to_json(self) -> dict:
        """Full engine state for the canonical obs export."""
        return {
            "rules": [
                {"name": r.name, "metric": r.metric, "stat": r.stat,
                 "agg": r.agg, "window": r.window, "op": r.op,
                 "threshold": r.threshold, "scope": r.scope,
                 "for_bad": r.for_bad, "for_ok": r.for_ok}
                for r in self.rules],
            "transitions": [t.to_record() for t in self.transitions],
            "verdict": self.verdict(),
        }


def default_rules(poll_interval: float = 1.0,
                  monitor_channel: str = "dproc.monitor"
                  ) -> tuple[HealthRule, ...]:
    """The stock SLO set the harness and benchmarks evaluate.

    * ``delivery-latency-p99`` — p99 of the monitoring channel's
      sampled delivery-latency p99 series stays under 250 ms;
    * ``drop-burn`` — the fault-plane drop counter burns less than
      one drop per node-second over a 10-poll window (the paper's
      loss windows trip this);
    * ``monitor-cpu-burn`` — the monitor's own collect+submit CPU
      burns below 5% of a core per node.
    """
    window = 10.0 * poll_interval
    metric = f"kecho.{monitor_channel}.delivery_seconds"
    return (
        HealthRule(name="delivery-latency-p99", metric=metric,
                   stat="p99", agg="p99", window=window,
                   op="<", threshold=0.25),
        HealthRule(name="drop-burn", metric="net.drops_fault",
                   agg="rate", window=window, op="<", threshold=1.0),
        HealthRule(name="monitor-cpu-burn",
                   metric="dmon.collect_seconds", agg="rate",
                   window=window, op="<", threshold=0.05),
    )


def attribute_transitions(transitions: Iterable[HealthTransition],
                          broker) -> list[dict]:
    """Attribute each degraded window to recorded fault-plane drops.

    Pairs each degraded→recovered flip per (rule, subject) — an open
    window uses +inf as its end — and collects the distinct ``fault``
    strings of the durable stream's DROP entries inside the window
    (``broker`` is the data-plane :class:`repro.stream.StreamBroker`).
    A window with at least one overlapping drop is ``attributed``.
    """
    from repro.stream import DROP
    windows: list[dict] = []
    open_at: dict[tuple[str, str], HealthTransition] = {}
    for tr in sorted(transitions,
                     key=lambda t: (t.time, t.rule, t.subject)):
        key = (tr.rule, tr.subject)
        if tr.to_status == DEGRADED:
            open_at[key] = tr
        elif tr.to_status == HEALTHY and key in open_at:
            start = open_at.pop(key)
            windows.append({"rule": tr.rule, "subject": tr.subject,
                            "start": start.time, "end": tr.time})
    for key, start in sorted(open_at.items()):
        windows.append({"rule": key[0], "subject": key[1],
                        "start": start.time, "end": math.inf})
    drops = []
    if broker is not None:
        for channel in broker.channels():
            for entry in broker.entries(channel):
                if entry.kind == DROP:
                    drops.append(entry)
    for window in windows:
        subject = window["subject"]
        faults = sorted({
            d.fault for d in drops
            if window["start"] - 1e-9 <= d.time <= window["end"]
            and (subject == "cluster" or subject in (d.source, d.dest))
        })
        window["faults"] = faults
        window["attributed"] = bool(faults)
    return windows


def health_section_from_overhead(overhead: Optional[dict],
                                 cpu_fraction_slo: float = 0.05
                                 ) -> dict:
    """The ``health`` section every ``BENCH_*.json`` writer embeds.

    A compact SLO readout over the run's overhead summary: the
    monitor's CPU burn against the 5 % budget, and the fault-plane
    drop count for context.  Benchmarks that never produced an
    overhead summary report an ``unknown`` verdict rather than
    guessing.
    """
    if not overhead:
        return {"verdict": "unknown", "checks": []}
    cpu_fraction = overhead.get("cpu_fraction_of_node_time", 0.0)
    network = overhead.get("network", {})
    drops = (network.get("drops_fault", 0.0)
             + network.get("drops_congestion", 0.0))
    events = overhead.get("events_published", 0.0)
    drop_ratio = (drops / events) if events else 0.0
    checks = [
        {"name": "monitor-cpu-fraction", "value": cpu_fraction,
         "threshold": cpu_fraction_slo, "op": "<",
         "ok": cpu_fraction < cpu_fraction_slo},
        {"name": "fault-drop-ratio", "value": drop_ratio,
         "threshold": 0.5, "op": "<", "ok": drop_ratio < 0.5},
    ]
    verdict = HEALTHY if all(c["ok"] for c in checks) else DEGRADED
    return {"verdict": verdict, "checks": checks}
