"""The observability plane: sampler, stream ingest, health, export.

One :class:`ObservabilityPlane` per running world.  It is fed two
ways:

* **Periodic registry snapshots** — :meth:`sampler` is a process
  generator (``yield clock.timeout(interval)``) that both backends
  drive natively: the simulator schedules it in virtual time (so
  sampling is deterministic and the export byte-stable), the live
  backend drives it as an asyncio task on the wall clock.  Each tick
  walks every node's :class:`~repro.telemetry.TelemetryRegistry` and
  appends one sample per instrument: counters and gauges by value,
  histograms as ``stat``-labelled count/mean/p99 series.
* **Stream replay** — :meth:`ingest_stream` converts the PR 7 durable
  log into per-channel rate and latency series (submits / delivers /
  drops per interval, delivery latency distributions), so windowed
  queries run over the exact data plane the broker recorded.

Feeding is strictly passive: pure reads of registries and brokers, no
RNG, no CPU charges, no scheduled events beyond the sampler's own
timer — the passivity tests pin that goldens, traces and stream bytes
are bit-identical with the plane on or off.
"""

from __future__ import annotations

import json
import math
import time
from typing import Iterable, Optional, Sequence

from repro.obs.health import (HealthEngine, HealthRule, default_rules)
from repro.obs.tsdb import TimeSeriesDB, merge_tsdbs
from repro.telemetry.instruments import (Counter, Gauge, Histogram)

__all__ = ["ObservabilityPlane", "merge_planes"]


class ObservabilityPlane:
    """TSDB + health engine + the sampling loop that feeds them."""

    def __init__(self, *, sample_interval: float = 1.0,
                 rules: Optional[Sequence[HealthRule]] = None,
                 capacity: int = 240, rollup_factor: int = 4,
                 n_tiers: int = 3, health_every: int = 1,
                 name_prefixes: Optional[Sequence[str]] = None,
                 health_log=None) -> None:
        """``name_prefixes`` restricts sampling to instruments whose
        dotted name starts with one of the prefixes (None = all);
        ``health_every`` evaluates the rules every k-th sample;
        ``health_log`` is an optional broker for the durable
        ``obs.health`` transition channel."""
        self.sample_interval = float(sample_interval)
        self.tsdb = TimeSeriesDB(interval=self.sample_interval,
                                 capacity=capacity,
                                 rollup_factor=rollup_factor,
                                 n_tiers=n_tiers)
        self.rules = tuple(rules) if rules is not None \
            else default_rules()
        self.health_every = max(1, int(health_every))
        self.name_prefixes = (tuple(name_prefixes)
                              if name_prefixes is not None else None)
        self.engine: Optional[HealthEngine] = None
        self._health_log = health_log
        self.samples_taken = 0
        self.last_sample_at: Optional[float] = None
        #: Host CPU-clock seconds spent inside :meth:`sample` — the
        #: plane accounting for its own cost, the way the telemetry
        #: subsystem accounts for the monitor's.  Deliberately NOT
        #: part of :meth:`snapshot`: it is wall-clock noise, and the
        #: export must stay byte-identical across same-seed runs.
        self.sample_cost_seconds = 0.0
        # Per-node sampling plans: resolved Series handles so repeat
        # ticks skip key construction and dict lookups entirely.
        # Keyed by node name; extended in place when the registry
        # grows (instruments are never removed).
        self._plans: dict[str, tuple[int, list, list, set]] = {}

    # -- wiring --------------------------------------------------------------

    def bind(self, node_names: Iterable[str]) -> None:
        """Create the health engine over the monitored node set."""
        self.engine = HealthEngine(self.tsdb, self.rules,
                                   nodes=sorted(node_names),
                                   log_broker=self._health_log)

    def sampler(self, nodes, clock):
        """The sampling loop, as a backend-neutral process generator.

        ``nodes`` is the runtime's node group; ``clock`` its
        :class:`~repro.runtime.protocol.Clock`.  Spawn it with
        ``node.spawn(plane.sampler(nodes, clock))`` on either backend.
        """
        if self.engine is None:
            self.bind(n.name for n in nodes)
        while True:
            self.sample(nodes, clock.now)
            yield clock.timeout(self.sample_interval)

    # -- feeding -------------------------------------------------------------

    def _wanted(self, name: str) -> bool:
        if self.name_prefixes is None:
            return True
        return name.startswith(self.name_prefixes)

    def _node_plan(self, node) -> tuple[list, list]:
        """Resolved ``(series, instrument)`` pairs for one node.

        Built on the first tick (``len(registry)`` is the version
        stamp) and extended in place when the registry gains
        instruments; every later tick reuses the handles, which is
        what keeps the sampler inside the bench overhead budget at
        n=1000.
        """
        registry = node.telemetry
        cached = self._plans.get(node.name)
        if cached is not None and cached[0] == len(registry):
            return cached[1], cached[2]
        tsdb = self.tsdb
        labels = (("node", node.name),)
        if cached is not None:
            _, scalars, hists, planned = cached
        else:
            scalars, hists, planned = [], [], set()
        for name in registry.names():
            if name in planned or not self._wanted(name):
                continue
            planned.add(name)
            inst = registry.get(name)
            if isinstance(inst, Counter):
                scalars.append((tsdb.series(name, labels,
                                            kind="counter"), inst))
            elif isinstance(inst, Gauge):
                scalars.append((tsdb.series(name, labels), inst))
            elif isinstance(inst, Histogram):
                # mean/p99 series stay lazy (slots 1-2) so a
                # never-observed histogram exports exactly the count
                # series, as before.
                hists.append([tsdb.series(
                    name, labels + (("stat", "count"),),
                    kind="counter"), None, None, inst, name, labels])
            # span logs stay out: bounded but heavy, and the
            # tracing subsystem already owns span analysis
        self._plans[node.name] = (len(registry), scalars, hists,
                                  planned)
        return scalars, hists

    def prepare(self, nodes) -> int:
        """Pre-resolve sampling plans for every current instrument.

        Optional — the sampler builds plans on its first tick anyway.
        Calling it at deploy time (after the monitored processes have
        registered their instruments) moves series allocation out of
        the measured run, so the first in-run tick is a pure observe
        pass; the throughput bench does this at n=1000.  Purely a
        read of the registries.  Returns the planned instrument
        count.
        """
        return sum(len(scalars) + len(hists) for scalars, hists in
                   (self._node_plan(node) for node in nodes))

    def sample(self, nodes, now: float) -> None:
        """Snapshot every node's registry into the TSDB at ``now``."""
        t_start = time.perf_counter()
        idx = int(math.floor(now / self.tsdb.interval + 1e-9))
        for node in nodes:
            scalars, hists = self._node_plan(node)
            for series, inst in scalars:
                series.observe_idx(idx, inst.value)
            for entry in hists:
                inst = entry[3]
                count = inst.count
                entry[0].observe_idx(idx, count)
                if count:
                    if entry[1] is None:
                        name, labels = entry[4], entry[5]
                        entry[1] = self.tsdb.series(
                            name, labels + (("stat", "mean"),))
                        entry[2] = self.tsdb.series(
                            name, labels + (("stat", "p99"),))
                    entry[1].observe_idx(idx, inst.mean)
                    entry[2].observe_idx(idx, inst.quantile(0.99))
        self.samples_taken += 1
        self.last_sample_at = now
        if self.engine is not None \
                and self.samples_taken % self.health_every == 0:
            self.engine.evaluate(now)
        self.sample_cost_seconds += time.perf_counter() - t_start

    def ingest_stream(self, broker) -> int:
        """Replay a durable stream broker into per-channel series.

        Per channel: ``stream.submits`` / ``stream.delivers`` /
        ``stream.drops`` (events per sample interval) and
        ``stream.deliver_latency`` (per-delivery latency
        distribution).  Returns the number of entries ingested.
        Deterministic: channels sorted, entries in seq order, series
        points applied in time order.
        """
        from repro.stream import DELIVER, DROP, SUBMIT
        interval = self.sample_interval
        kind_series = {SUBMIT: "stream.submits",
                       DELIVER: "stream.delivers",
                       DROP: "stream.drops"}
        ingested = 0
        for channel in broker.channels():
            labels = (("channel", channel),)
            counts: dict[tuple[str, int], int] = {}
            latencies: list[tuple[float, float]] = []
            for entry in broker.entries(channel):
                series = kind_series.get(entry.kind)
                if series is None:  # pragma: no cover - future kinds
                    continue
                bucket = int(math.floor(entry.time / interval + 1e-9))
                counts[(series, bucket)] = \
                    counts.get((series, bucket), 0) + 1
                if entry.kind == DELIVER:
                    latencies.append((entry.time, entry.latency))
                ingested += 1
            for (series, bucket) in sorted(counts):
                self.tsdb.observe(series, labels, bucket * interval,
                                  counts[(series, bucket)])
            latencies.sort(key=lambda r: r[0])
            for t, latency in latencies:
                self.tsdb.observe("stream.deliver_latency", labels,
                                  t, latency)
        return ingested

    # -- read side -----------------------------------------------------------

    def verdict(self, now: Optional[float] = None) -> dict:
        if self.engine is None:
            return {"healthy": True, "rules": [], "transitions": 0}
        return self.engine.verdict(now)

    @property
    def transitions(self) -> list:
        return self.engine.transitions if self.engine is not None \
            else []

    def snapshot(self) -> dict:
        """JSON document of the whole plane (sorted, reproducible)."""
        return {
            "schema": "repro.obs/1",
            "sample_interval": self.sample_interval,
            "samples_taken": self.samples_taken,
            "last_sample_at": self.last_sample_at,
            "tsdb": self.tsdb.snapshot(),
            "health": (self.engine.to_json()
                       if self.engine is not None else None),
        }

    def export_json(self) -> str:
        """Canonical bytes: same seed ⇒ identical string (test-pinned)."""
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":"))


def merge_planes(planes: Sequence[ObservabilityPlane]
                 ) -> ObservabilityPlane:
    """Fold per-shard planes into one global plane.

    TSDBs merge via :func:`repro.obs.tsdb.merge_tsdbs`; transitions
    concatenate in ``(time, rule, subject)`` order; per-subject final
    verdict states are adopted (node subjects are disjoint across
    shards — each node lives in exactly one shard).
    """
    planes = list(planes)
    if not planes:
        return ObservabilityPlane()
    first = planes[0]
    merged = ObservabilityPlane(
        sample_interval=first.sample_interval, rules=first.rules,
        capacity=first.tsdb.capacity,
        rollup_factor=first.tsdb.rollup_factor,
        n_tiers=first.tsdb.n_tiers,
        health_every=first.health_every)
    merged.tsdb = merge_tsdbs(p.tsdb for p in planes)
    nodes = sorted({n for p in planes if p.engine is not None
                    for n in p.engine.nodes})
    merged.bind(nodes)
    assert merged.engine is not None
    transitions = [t for p in planes for t in p.transitions]
    transitions.sort(key=lambda t: (t.time, t.rule, t.subject))
    merged.engine.transitions = transitions
    for p in planes:
        if p.engine is None:
            continue
        for key, state in sorted(p.engine._states.items()):
            merged.engine._states.setdefault(key, state)
        merged.engine.evaluations += p.engine.evaluations
    merged.samples_taken = sum(p.samples_taken for p in planes)
    merged.last_sample_at = max(
        (p.last_sample_at for p in planes
         if p.last_sample_at is not None), default=None)
    return merged
