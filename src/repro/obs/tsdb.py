"""A deterministic, bounded, in-memory time-series store.

The metrics plane's substrate: fixed-interval ring series with labels,
multi-tier min/max/mean/last rollups, and windowed queries
(:meth:`TimeSeriesDB.rate`, :meth:`~TimeSeriesDB.avg_over_time`,
:meth:`~TimeSeriesDB.quantile_over_time`).  Design constraints mirror
:mod:`repro.telemetry.instruments` — the store observes the monitor,
so it must never perturb it:

* **Deterministic.**  No wall-clock reads, no RNG, no dict-order
  dependence: every timestamp is caller-supplied, bucket indices are
  integers (``floor(t / interval)``), and every export walks keys in
  sorted order.  Two seeded runs produce byte-identical
  :meth:`TimeSeriesDB.export_json` documents.
* **Bounded.**  Each series is a pyramid of ring tiers: the base tier
  holds per-interval buckets; when a bucket falls off a tier's ring it
  is folded into the next, coarser tier (interval × ``rollup_factor``)
  as a min/max/mean/last aggregate; the last tier drops (counted in
  :attr:`Series.dropped`).  Memory per series is
  ``O(tiers × capacity)`` regardless of run length.
* **Passive.**  Observing a sample only appends to the store; queries
  are pure reads.

Sharded runs build one TSDB per shard (each node's series lives in
exactly one shard) and :func:`merge_tsdbs` folds them into one global
store in deterministic ``(series key, time)`` order — the same pattern
as :func:`repro.stream.merge_brokers`.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import ReproError

__all__ = ["ObsError", "Bucket", "Series", "TimeSeriesDB",
           "merge_tsdbs", "series_key"]


class ObsError(ReproError):
    """Misuse of the observability plane (bad window, unknown series)."""


def series_key(name: str, labels: Mapping[str, str] | Sequence = ()
               ) -> str:
    """Canonical series identity: ``name{k=v,...}`` with sorted labels."""
    if isinstance(labels, Mapping):
        items = sorted(labels.items())
    else:
        items = sorted(tuple(pair) for pair in labels)
    if not items:
        return name
    inner = ",".join(f"{k}={v}" for k, v in items)
    return f"{name}{{{inner}}}"


class Bucket:
    """One fixed-interval aggregate: count/sum/min/max/last.

    ``idx`` is the integer bucket index (``floor(t / interval)`` of the
    tier it lives in); the bucket's nominal time is ``idx * interval``.
    """

    __slots__ = ("idx", "count", "total", "min", "max", "last")

    def __init__(self, idx: int, value: float) -> None:
        self.idx = idx
        self.count = 1
        self.total = value
        self.min = value
        self.max = value
        self.last = value

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value

    def fold(self, other: "Bucket") -> None:
        """Absorb a finer bucket that rolls up into this one.

        ``other`` is always *newer* than anything previously folded
        (tiers evict oldest-first), so ``last`` takes its value.
        """
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.last = other.last

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def to_row(self, interval: float) -> list:
        """JSON row ``[t, count, sum, min, max, last]``."""
        return [self.idx * interval, self.count, self.total,
                self.min, self.max, self.last]


class _Tier:
    """One ring of buckets at a fixed interval."""

    __slots__ = ("interval", "capacity", "buckets")

    def __init__(self, interval: float, capacity: int) -> None:
        self.interval = interval
        self.capacity = capacity
        self.buckets: list[Bucket] = []


class Series:
    """One labelled series: a pyramid of ring tiers.

    ``kind`` is advisory ("counter" for sampled cumulative values,
    "gauge" for point-in-time values) — it picks the natural reading
    in reports but does not change storage.
    """

    __slots__ = ("name", "labels", "kind", "tiers", "dropped")

    def __init__(self, name: str, labels: Sequence = (), *,
                 kind: str = "gauge", interval: float = 1.0,
                 capacity: int = 240, rollup_factor: int = 4,
                 n_tiers: int = 3) -> None:
        if interval <= 0:
            raise ObsError(f"series {name!r}: interval must be positive")
        if capacity < 1 or n_tiers < 1 or rollup_factor < 2:
            raise ObsError(f"series {name!r}: bad ring geometry")
        self.name = name
        self.labels = tuple(sorted(tuple(pair) for pair in labels))
        self.kind = kind
        self.tiers = [
            _Tier(interval * rollup_factor ** i, capacity)
            for i in range(n_tiers)]
        #: Buckets that fell off the coarsest tier.
        self.dropped = 0

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)

    @property
    def interval(self) -> float:
        return self.tiers[0].interval

    def observe(self, t: float, value: float) -> None:
        """Record ``value`` at time ``t`` (NaN samples are ignored)."""
        # + epsilon so exact multiples of the interval land in the
        # bucket they open rather than flapping on float error.
        self.observe_idx(
            int(math.floor(t / self.tiers[0].interval + 1e-9)), value)

    def observe_idx(self, idx: int, value: float) -> None:
        """:meth:`observe` with the base bucket index precomputed.

        The sampler's hot path: one tick lands tens of thousands of
        observations at the same instant, so the caller computes the
        bucket index once and every series skips the float math; the
        fold check only runs when the ring actually overflows.
        """
        if value != value:
            return
        tier = self.tiers[0]
        buckets = tier.buckets
        if buckets:
            last = buckets[-1]
            if last.idx == idx:
                last.observe(value)
                return
            if idx < last.idx:
                raise ObsError(
                    f"series {self.key!r}: time went backwards "
                    f"(bucket {idx} after {last.idx})")
        buckets.append(Bucket(idx, value))
        if len(buckets) > tier.capacity:
            self._enforce(0)

    def _enforce(self, level: int) -> None:
        """Fold a tier's overflow into the next tier (recursively)."""
        tier = self.tiers[level]
        while len(tier.buckets) > tier.capacity:
            oldest = tier.buckets.pop(0)
            if level + 1 >= len(self.tiers):
                self.dropped += 1
                continue
            nxt = self.tiers[level + 1]
            # Index of the finer bucket re-expressed at the coarser
            # interval; both intervals share t=0 so integer division
            # by the factor is exact.
            factor = round(nxt.interval / tier.interval)
            idx = oldest.idx // factor
            if nxt.buckets and nxt.buckets[-1].idx == idx:
                nxt.buckets[-1].fold(oldest)
            else:
                fresh = Bucket(idx, oldest.last)
                fresh.count = oldest.count
                fresh.total = oldest.total
                fresh.min = oldest.min
                fresh.max = oldest.max
                nxt.buckets.append(fresh)
                self._enforce(level + 1)

    # -- reads -------------------------------------------------------------

    def samples(self, start: float = -math.inf,
                end: float = math.inf) -> list[tuple[float, Bucket]]:
        """``(t, bucket)`` pairs in [start, end], oldest first.

        Walks coarse → fine so older rolled-up history precedes the
        recent full-resolution window; tiers never overlap in time
        (folding removes from the finer tier).
        """
        out: list[tuple[float, Bucket]] = []
        for tier in reversed(self.tiers):
            for bucket in tier.buckets:
                t = bucket.idx * tier.interval
                if start <= t <= end:
                    out.append((t, bucket))
        return out

    def points(self, start: float = -math.inf,
               end: float = math.inf) -> list[tuple[float, float]]:
        """``(t, value)`` pairs: last for counters, mean otherwise."""
        use_last = self.kind == "counter"
        return [(t, b.last if use_last else b.mean)
                for t, b in self.samples(start, end)]

    @property
    def latest(self) -> Optional[float]:
        """The most recent observed value (None when empty)."""
        # The base tier always holds the newest bucket (folding only
        # evicts oldest-first), so the first non-empty tier is enough.
        for tier in self.tiers:
            if tier.buckets:
                return tier.buckets[-1].last
        return None

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "labels": {k: v for k, v in self.labels},
            "kind": self.kind,
            "dropped": self.dropped,
            "tiers": [
                {"interval": tier.interval,
                 "samples": [b.to_row(tier.interval)
                             for b in tier.buckets]}
                for tier in self.tiers],
        }


class TimeSeriesDB:
    """Labelled ring series with rollups and windowed queries."""

    def __init__(self, interval: float = 1.0, capacity: int = 240,
                 rollup_factor: int = 4, n_tiers: int = 3) -> None:
        self.interval = interval
        self.capacity = capacity
        self.rollup_factor = rollup_factor
        self.n_tiers = n_tiers
        self._series: dict[str, Series] = {}

    def __len__(self) -> int:
        return len(self._series)

    def __contains__(self, key: str) -> bool:
        return key in self._series

    def series(self, name: str, labels: Sequence = (), *,
               kind: str = "gauge") -> Series:
        """Get or create the series ``name{labels}``."""
        key = series_key(name, labels)
        s = self._series.get(key)
        if s is None:
            s = Series(name, labels, kind=kind,
                       interval=self.interval, capacity=self.capacity,
                       rollup_factor=self.rollup_factor,
                       n_tiers=self.n_tiers)
            self._series[key] = s
        return s

    def get(self, name: str, labels: Sequence = ()) -> Optional[Series]:
        return self._series.get(series_key(name, labels))

    def observe(self, name: str, labels: Sequence, t: float,
                value: float, kind: str = "gauge") -> None:
        self.series(name, labels, kind=kind).observe(t, value)

    def keys(self, pattern: str = "") -> list[str]:
        """Sorted series keys, filtered by substring ``pattern``."""
        return sorted(k for k in self._series if pattern in k)

    def all_series(self) -> list[Series]:
        """Every series, in sorted key order."""
        return [self._series[k] for k in sorted(self._series)]

    # -- windowed queries ---------------------------------------------------

    def _window(self, name: str, labels: Sequence, window: float,
                now: float) -> list[tuple[float, Bucket]]:
        if window <= 0:
            raise ObsError(f"window must be positive, got {window!r}")
        s = self.get(name, labels)
        if s is None:
            return []
        return s.samples(now - window, now)

    def avg_over_time(self, name: str, labels: Sequence = (), *,
                      window: float, now: float) -> float:
        """Observation-weighted mean over the window (NaN if empty)."""
        rows = self._window(name, labels, window, now)
        count = sum(b.count for _, b in rows)
        if not count:
            return math.nan
        return sum(b.total for _, b in rows) / count

    def min_over_time(self, name: str, labels: Sequence = (), *,
                      window: float, now: float) -> float:
        rows = self._window(name, labels, window, now)
        return min((b.min for _, b in rows), default=math.nan)

    def max_over_time(self, name: str, labels: Sequence = (), *,
                      window: float, now: float) -> float:
        rows = self._window(name, labels, window, now)
        return max((b.max for _, b in rows), default=math.nan)

    def quantile_over_time(self, q: float, name: str,
                           labels: Sequence = (), *, window: float,
                           now: float) -> float:
        """Nearest-rank quantile of the window's bucket values.

        Values are per-bucket means (multi-observation buckets carry
        their average); with one sample per bucket — the sampler's
        case — this is the exact quantile of the observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1], got {q!r}")
        rows = self._window(name, labels, window, now)
        values = sorted(b.mean for _, b in rows if b.count)
        if not values:
            return math.nan
        if q <= 0.0:
            return values[0]
        rank = math.ceil(q * len(values))
        return values[min(len(values), rank) - 1]

    def rate(self, name: str, labels: Sequence = (), *, window: float,
             now: float) -> float:
        """Per-second increase of a cumulative series over the window.

        Sums the positive increments between consecutive samples
        (a value drop is a counter reset and contributes the new
        value), divided by the covered span.  NaN with fewer than two
        samples.
        """
        rows = self._window(name, labels, window, now)
        if len(rows) < 2:
            return math.nan
        increase = 0.0
        prev = rows[0][1].last
        for _, bucket in rows[1:]:
            cur = bucket.last
            increase += cur - prev if cur >= prev else cur
            prev = cur
        span = rows[-1][0] - rows[0][0]
        if span <= 0:
            return math.nan
        return increase / span

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serialisable document of every series, sorted keys."""
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "rollup_factor": self.rollup_factor,
            "n_tiers": self.n_tiers,
            "series": {key: self._series[key].to_json()
                       for key in sorted(self._series)},
        }

    def export_json(self) -> str:
        """Canonical byte form: same run ⇒ same string (test-pinned)."""
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":"))


def merge_tsdbs(tsdbs: Iterable[TimeSeriesDB]) -> TimeSeriesDB:
    """Fold per-shard stores into one global store.

    Series keys are disjoint across shards for the sampler's per-node
    series; when a key does appear in several stores (cluster-level
    series) its samples are replayed in ``(time, shard index)`` order.
    """
    tsdbs = list(tsdbs)
    if not tsdbs:
        return TimeSeriesDB()
    first = tsdbs[0]
    merged = TimeSeriesDB(interval=first.interval,
                          capacity=first.capacity,
                          rollup_factor=first.rollup_factor,
                          n_tiers=first.n_tiers)
    keys = sorted({k for db in tsdbs for k in db._series})
    for key in keys:
        sources = [(i, db._series[key]) for i, db in enumerate(tsdbs)
                   if key in db._series]
        template = sources[0][1]
        out = merged.series(template.name, template.labels,
                            kind=template.kind)
        rows: list[tuple[float, int, Bucket]] = []
        for shard, s in sources:
            for t, bucket in s.samples():
                rows.append((t, shard, bucket))
            out.dropped += s.dropped
        rows.sort(key=lambda r: (r[0], r[1]))
        for t, _, bucket in rows:
            # Replay the aggregate rather than synthetic points so
            # multi-observation buckets keep exact count/sum/min/max.
            tier = out.tiers[0]
            idx = int(math.floor(t / tier.interval + 1e-9))
            if tier.buckets and tier.buckets[-1].idx == idx:
                tier.buckets[-1].fold(bucket)
            else:
                fresh = Bucket(idx, bucket.last)
                fresh.count = bucket.count
                fresh.total = bucket.total
                fresh.min = bucket.min
                fresh.max = bucket.max
                tier.buckets.append(fresh)
                out._enforce(0)
    return merged
