"""The stable scenario API: one object that wires a whole deployment.

Before this facade every harness and example hand-wired
``Environment`` + ``build_cluster`` + ``deploy_dproc`` + fault
injector + tracer in slightly different ways.  :class:`Scenario` owns
that wiring behind one fluent builder and — because it talks to the
backend only through :class:`repro.runtime.protocol.Runtime` — the
same scenario script drives either backend::

    from repro.api import Scenario

    report = (Scenario(nodes=100, seed=7)
              .with_faults(lambda sc: sc.faults.schedule_loss(5, 0.3))
              .with_tracing()
              .run(60.0))
    print(report.dprocs["alan"].read("/proc/cluster/node42/loadavg"))

Backends
--------
``backend="sim"`` (default) builds eagerly: after :meth:`build` the
environment, cluster and dprocs all exist and virtual time is advanced
with :meth:`run_until` (repeatable) or :meth:`run` (one shot).

``backend="live"`` runs real asyncio tasks over localhost TCP, so
everything must be constructed *inside* a running event loop:
construction is deferred and :meth:`run` performs build + wall-clock
run + teardown in one call.  Hooks added with :meth:`with_setup` run
at build time on both backends, which is the portable place for
control-file writes, workload starts, and observers.

Fault injection and causal tracing are simulator-only instruments
(they hook the virtual transport); requesting them on the live backend
raises immediately rather than silently measuring nothing.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

from repro.dproc.dmon import DMonConfig
from repro.dproc.toolkit import DEFAULT_MODULES, Dproc, deploy_dproc
from repro.errors import ReproError
from repro.runtime.protocol import NodeGroup, Runtime
from repro.runtime.sim import SimRuntime

__all__ = ["Scenario", "ScenarioError"]

#: A scenario hook: receives the built scenario, returns nothing.
Hook = Callable[["Scenario"], None]


class ScenarioError(ReproError):
    """Misuse of the Scenario facade (wrong backend, wrong phase)."""


class Scenario:
    """Fluent builder for a full dproc deployment on either backend."""

    def __init__(self, nodes: int = 8, seed: int = 0, *,
                 backend: str = "sim",
                 dmon: Optional[DMonConfig] = None,
                 modules: Sequence[str] = DEFAULT_MODULES,
                 monitor_hosts: Union[int, Sequence[str], None] = None,
                 names: Optional[Sequence[str]] = None,
                 node_config=None,
                 node_configs: Optional[Sequence] = None) -> None:
        """Describe the deployment; nothing is built yet.

        ``monitor_hosts`` restricts which nodes run dproc: an int
        means "the first k hosts", a sequence names them, None (the
        default) deploys everywhere.  ``node_config`` /
        ``node_configs`` are the simulator's hardware descriptions
        (ignored by the live backend, whose hardware is the real
        host).
        """
        if backend not in ("sim", "live"):
            raise ScenarioError(f"unknown backend {backend!r}")
        self._nodes = nodes
        self._seed = seed
        self._backend = backend
        self._dmon = dmon
        self._modules = tuple(modules)
        self._monitor_hosts = monitor_hosts
        self._names = list(names) if names is not None else None
        self._node_config = node_config
        self._node_configs = node_configs
        self._workers = 1
        self._workers_mode = "auto"
        self._lookahead: Optional[float] = None
        self._experiments: list = []
        self._engines: list = []
        self._want_pool = False
        self._pool_workers = 1
        self._pool_watchers = None
        self._pool_batch = None
        self._pool_flow = None
        self._pool_uvloop = False
        self._pool_deployment = None
        self._cluster_hooks: list[Hook] = []
        self._setup_hooks: list[Hook] = []
        self._fault_hooks: list[Hook] = []
        self._want_faults = False
        self._want_tracing = False
        self._tracer_arg = None
        self._tracer_kwargs: dict = {}
        self._want_stream = False
        self._stream_dir = None
        self._stream_max_len: Optional[int] = None
        self._stream_broker = None
        self._shard_brokers: list = []
        self._want_obs = False
        self._obs_interval = 1.0
        self._obs_rules = None
        self._obs_kwargs: dict = {}
        self._obs_scrape: Optional[tuple[str, int]] = None
        self._obs_plane = None
        self._obs_log = None
        self._shard_planes: list = []
        self._shard_obs_logs: list = []
        self._obs_ingested = False
        #: The live scrape endpoint (``with_observability(scrape_port=...)``).
        self.scrape = None
        #: Populated by :meth:`build`.
        self.runtime: Optional[Runtime] = None
        self.dprocs: dict[str, Dproc] = {}
        self.faults = None
        self.tracer = None
        self._duration = 0.0

    # -- fluent configuration ---------------------------------------------

    def with_cluster_setup(self, fn: Hook) -> "Scenario":
        """Run ``fn(scenario)`` after nodes exist, before dproc deploys.

        The hook for topology surgery (shared segments) and ambient
        workloads that must start ahead of monitoring.
        """
        self._check_mutable()
        self._cluster_hooks.append(fn)
        return self

    def with_setup(self, fn: Hook) -> "Scenario":
        """Run ``fn(scenario)`` once dprocs are deployed and started."""
        self._check_mutable()
        self._setup_hooks.append(fn)
        return self

    def with_faults(self, configure: Optional[Hook] = None) -> "Scenario":
        """Attach a :class:`repro.sim.faults.FaultInjector` (sim only).

        ``configure(scenario)`` runs right after the injector exists
        (``scenario.faults``), the place to register crash handlers
        and schedule the fault timeline.
        """
        self._check_mutable()
        if self._backend != "sim":
            raise ScenarioError(
                "fault injection hooks the simulated transport; the "
                "live backend fails for real")
        self._want_faults = True
        if configure is not None:
            self._fault_hooks.append(configure)
        return self

    def with_tracing(self, collector=None, **kwargs) -> "Scenario":
        """Attach a causal-trace collector (sim only).

        With no ``collector`` a fresh
        :class:`repro.tracing.TraceCollector` is created; ``kwargs``
        (e.g. ``sample_rate``) pass through to its constructor.
        """
        self._check_mutable()
        if self._backend != "sim":
            raise ScenarioError(
                "causal tracing instruments the simulated pipeline; "
                "it is not available on the live backend")
        self._want_tracing = True
        self._tracer_arg = collector
        self._tracer_kwargs = kwargs
        return self

    def with_stream(self, directory=None, *,
                    max_len: Optional[int] = None) -> "Scenario":
        """Tee the channel data plane into a durable stream broker.

        Every KECho submit, delivery and transport drop is appended to
        a per-channel log (:class:`repro.stream.StreamBroker`,
        available as :attr:`stream` after the run) that the replay
        toolkit — reconciler, stats-by-replay, stream-fed top — reads.
        Recording is passive: the sim event schedule is bit-identical
        with the stream on or off.

        ``directory`` additionally persists every entry eagerly as
        JSONL segments (the live backend's durable log; works on sim
        too).  ``max_len`` bounds each channel's retained entries
        (hard ring bound; use the :class:`repro.stream.Janitor` for
        ack-respecting trims).
        """
        self._check_mutable()
        self._want_stream = True
        self._stream_dir = directory
        self._stream_max_len = max_len
        return self

    def with_observability(self, *, sample_interval: float = 1.0,
                           rules=None, scrape_port: Optional[int] = None,
                           scrape_host: str = "127.0.0.1",
                           health_every: int = 1,
                           name_prefixes: Optional[Sequence[str]] = None,
                           capacity: int = 240) -> "Scenario":
        """Attach the time-series metrics plane (both backends).

        A :class:`repro.obs.ObservabilityPlane` samples every node's
        telemetry registry each ``sample_interval`` seconds (virtual
        seconds on sim — deterministic, byte-stable exports; wall
        seconds on live) into a bounded ring-buffer TSDB, and a
        health/SLO engine (``rules``, default
        :func:`repro.obs.default_rules`) evaluates windowed queries
        with hysteresis, logging every verdict flip to a durable
        ``obs.health`` channel.  The plane is passive: goldens, traces
        and data-plane stream bytes are identical with it on or off.

        ``scrape_port`` (live only) additionally serves OpenMetrics
        ``/metrics`` and JSON ``/healthz`` over HTTP for the cluster
        (port 0 picks a free port; see :attr:`scrape` for the bound
        address).  After the run, :attr:`obs` is the plane — on
        sharded runs the per-shard planes merged in global time order;
        when a stream was recorded it is replayed into per-channel
        series on first access.
        """
        self._check_mutable()
        if scrape_port is not None and self._backend != "live":
            raise ScenarioError(
                "the scrape endpoint serves real HTTP; on the "
                "simulator export with scenario.obs / harness obs")
        self._want_obs = True
        self._obs_interval = float(sample_interval)
        self._obs_rules = tuple(rules) if rules is not None else None
        self._obs_kwargs = {"health_every": health_every,
                            "name_prefixes": name_prefixes,
                            "capacity": capacity}
        self._obs_scrape = ((scrape_host, scrape_port)
                            if scrape_port is not None else None)
        return self

    def with_workers(self, workers: int, *, mode: str = "auto",
                     lookahead: Optional[float] = None) -> "Scenario":
        """Shard the simulation across ``workers`` workers (sim only).

        Nodes are partitioned into shards synchronized with
        conservative lookahead (:mod:`repro.sim.shard`); cross-shard
        KECho traffic rides a WAN-class conduit.  ``workers=1`` is the
        plain single-process kernel, bit-identical to not calling this
        at all.  ``mode`` picks where shards run:

        * ``"processes"`` — one forked worker per shard (parallel);
          incompatible with hooks/faults/tracing, which close over
          parent state a fork cannot share back;
        * ``"inline"`` — all shards in this process, round-robin per
          window; the full Scenario surface works on a merged view;
        * ``"auto"`` (default) — inline when any hook, fault or
          tracing request is present, processes otherwise.

        ``lookahead`` overrides the conduit latency (seconds); the
        default is the WAN-hop latency the conduit models.  A sharded
        scenario is one-shot: ``run`` once, no ``build``/``run_until``.
        """
        self._check_mutable()
        if self._backend != "sim":
            raise ScenarioError(
                "sharding partitions the simulated cluster; the live "
                "backend already runs real parallel tasks")
        if workers < 1:
            raise ScenarioError(f"workers must be >= 1, got {workers}")
        if mode not in ("auto", "processes", "inline"):
            raise ScenarioError(f"unknown workers mode {mode!r}")
        self._workers = int(workers)
        self._workers_mode = mode
        self._lookahead = lookahead
        return self

    def with_experiment(self, *experiments) -> "Scenario":
        """Attach declarative experiments (both backends).

        Each :class:`repro.experiment.Experiment` spawns an engine on
        its observer node that ticks the policy every
        ``decide_interval`` seconds (virtual on sim, wall on live) and
        applies its adaptations through the real control plane.  After
        the run, :meth:`experiment_reports` returns one comparable
        :class:`~repro.experiment.ExperimentReport` per experiment.
        With no experiments attached nothing changes — the sim event
        schedule (and the goldens pinned to it) is untouched.
        """
        self._check_mutable()
        self._experiments.extend(experiments)
        return self

    def with_node_pool(self, workers: int = 2, *,
                       watchers: Union[int, Sequence[str],
                                       None] = None,
                       batch=None, flow=None,
                       uvloop: bool = False) -> "Scenario":
        """Scale the live backend across worker processes (live only).

        The cluster's hosts are partitioned contiguously; this process
        keeps slice 0 (plus the registry server), each extra worker
        forks with its own event loop over one slice
        (:mod:`repro.live.pool`).  ``watchers`` bounds subscription
        fan-in — an int means "the first k hosts", a sequence names
        them; only those subscribe to the monitoring channel, so a
        200-node pool opens O(nodes x watchers) sockets instead of
        O(nodes^2).  ``batch`` (a
        :class:`~repro.live.transport.BatchConfig`) coalesces frames
        per destination, ``flow`` (a
        :class:`~repro.live.transport.FlowConfig`) sets the
        backpressure watermarks, and ``uvloop=True`` installs uvloop
        when available.  ``workers=1`` keeps everything in-process but
        still applies batch/flow/watchers.
        """
        self._check_mutable()
        if self._backend != "live":
            raise ScenarioError(
                "node pools fork real processes; shard the simulator "
                "with with_workers() instead")
        if workers < 1:
            raise ScenarioError(f"workers must be >= 1, got {workers}")
        self._want_pool = True
        self._pool_workers = int(workers)
        self._pool_watchers = watchers
        self._pool_batch = batch
        self._pool_flow = flow
        self._pool_uvloop = uvloop
        return self

    # -- build and run -----------------------------------------------------

    def build(self) -> "Scenario":
        """Construct everything now (simulator backend only)."""
        if self._backend != "sim":
            raise ScenarioError(
                "the live backend builds inside its event loop; "
                "call run() directly")
        if self._workers > 1:
            raise ScenarioError(
                "a sharded scenario builds and runs in one shot; "
                "call run(duration) directly")
        if self.runtime is None:
            runtime = SimRuntime(
                nodes=self._nodes, seed=self._seed,
                config=self._node_config, names=self._names,
                node_configs=self._node_configs)
            self._construct(runtime)
        return self

    def run(self, duration: float) -> "Scenario":
        """Run the scenario for ``duration`` seconds and return it.

        Simulated seconds on the sim backend (repeatable — time keeps
        advancing across calls); wall seconds including full
        build/teardown on the live backend (one shot).
        """
        if self._backend == "sim":
            if self._workers > 1:
                return self._run_sharded(duration)
            self.build()
            return self.run_until(self.env.now + duration)
        if self.runtime is not None:
            raise ScenarioError("a live scenario runs exactly once")
        runtime = self._make_live_runtime()
        runtime.setup(self._construct)
        self._duration = duration
        runtime.run(duration)
        if self._stream_broker is not None:
            # Flush the live JSONL segments once the loop is down.
            self._stream_broker.close()
        return self

    def run_until(self, until: float) -> "Scenario":
        """Advance the simulator to absolute time ``until`` (sim only)."""
        if self._backend != "sim":
            raise ScenarioError(
                "stepped execution needs virtual time; the live "
                "backend runs wall-clock in one shot")
        if self._workers > 1:
            raise ScenarioError(
                "a sharded scenario runs in one shot; call "
                "run(duration)")
        self.build()
        self.runtime.run(until)
        self._duration = until
        return self

    # -- the built world ---------------------------------------------------

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def nodes(self) -> NodeGroup:
        """The node group (``scenario.nodes["alan"]``, iterable)."""
        self._check_built()
        return self.runtime.nodes

    @property
    def cluster(self):
        """Alias for :attr:`nodes` (the simulator's Cluster object)."""
        return self.nodes

    @property
    def env(self):
        """The simulator environment (sim only; live has no env)."""
        self._check_built()
        if self._backend != "sim":
            raise ScenarioError("the live backend has no Environment")
        return self.runtime.env

    @property
    def clock(self):
        self._check_built()
        return self.runtime.clock

    def overhead(self, sim_seconds: Optional[float] = None) -> dict:
        """Cluster-wide monitoring-overhead summary for this run."""
        from repro.telemetry import overhead_summary
        self._check_built()
        runtime_overhead = getattr(self.runtime, "overhead", None)
        if runtime_overhead is not None and sim_seconds is None:
            return runtime_overhead()
        span = sim_seconds if sim_seconds is not None else self._duration
        return overhead_summary(
            {node.name: node.telemetry for node in self.nodes},
            sim_seconds=span)

    @property
    def stream(self):
        """The durable stream broker (``with_stream`` scenarios only).

        On sharded runs this is the merged global view of the
        per-shard brokers, re-sequenced deterministically; it is
        assembled on first access after the run completes.
        """
        if not self._want_stream:
            raise ScenarioError(
                "no stream was recorded; call with_stream() before "
                "build()/run()")
        if self._stream_broker is not None:
            return self._stream_broker
        if self._shard_brokers:
            from repro.stream import merge_brokers
            merged = merge_brokers(self._shard_brokers)
            if getattr(self.runtime, "result", None) is not None:
                # The run is over: the merged view is final — cache it.
                self._stream_broker = merged
            return merged
        self._check_built()
        raise ScenarioError(
            "stream recording runs inline; no broker exists yet")

    @property
    def obs(self):
        """The observability plane (``with_observability`` scenarios).

        On sharded runs the per-shard planes are merged into one
        global plane on first access after the run; when the scenario
        also recorded a durable stream, its entries are replayed into
        per-channel ``stream.*`` series once, on first access.
        """
        if not self._want_obs:
            raise ScenarioError(
                "no observability plane; call with_observability() "
                "before build()/run()")
        plane = self._obs_plane
        if plane is None and self._shard_planes:
            from repro.obs import merge_planes
            plane = merge_planes(self._shard_planes)
            if getattr(self.runtime, "result", None) is not None:
                # The run is over: the merged plane is final — cache it.
                self._obs_plane = plane
        if plane is None:
            self._check_built()
            raise ScenarioError(
                "observability runs inline; no plane exists yet")
        if self._want_stream and not self._obs_ingested \
                and plane is self._obs_plane:
            plane.ingest_stream(self.stream)
            self._obs_ingested = True
        return plane

    @property
    def obs_log(self):
        """The durable ``obs.health`` transition log (a stream broker)."""
        if not self._want_obs:
            raise ScenarioError(
                "no observability plane; call with_observability() "
                "before build()/run()")
        if self._obs_log is not None:
            return self._obs_log
        if self._shard_obs_logs:
            from repro.stream import merge_brokers
            return merge_brokers(self._shard_obs_logs)
        self._check_built()
        raise ScenarioError(
            "observability runs inline; no transition log exists yet")

    def experiment_reports(self, *, duration: Optional[float] = None
                           ) -> list:
        """One :class:`~repro.experiment.ExperimentReport` per
        attached experiment, in attach order (after the run)."""
        if not self._experiments:
            raise ScenarioError(
                "no experiments attached; call with_experiment() "
                "before build()/run()")
        self._check_built()
        from repro.experiment import build_report
        workers = (self._workers if self._backend == "sim"
                   else self._pool_workers)
        return [build_report(self, engine, workers=workers,
                             duration=duration)
                for engine in self._engines]

    @property
    def shard_result(self):
        """Per-shard execution statistics (sharded runs only)."""
        self._check_built()
        result = getattr(self.runtime, "result", None)
        if result is None or self._workers <= 1:
            raise ScenarioError("no sharded run has completed")
        return result

    # -- internals ---------------------------------------------------------

    def _check_mutable(self) -> None:
        if self.runtime is not None:
            raise ScenarioError(
                "scenario already built; add hooks before build()/run()")

    def _check_built(self) -> None:
        if self.runtime is None:
            raise ScenarioError("scenario not built yet; call build() "
                                "or run() first")

    def _make_live_runtime(self):
        """Build the live runtime — plain, or the parent of a pool."""
        from repro.live.runtime import LiveRuntime
        if not self._want_pool:
            return LiveRuntime(nodes=self._nodes, seed=self._seed,
                               names=self._names)
        from repro.live.pool import (LivePool, PoolDeployment,
                                     partition_hosts)
        names = self._global_names()
        slices = partition_hosts(names, self._pool_workers)
        runtime = LiveRuntime(
            nodes=len(slices[0]), seed=self._seed, names=slices[0],
            batch=self._pool_batch, flow=self._pool_flow,
            use_uvloop=self._pool_uvloop)
        monitored = self._monitor_hosts
        if monitored is None:
            monitored = names
        elif isinstance(monitored, int):
            monitored = names[:monitored]
        watchers = self._pool_watchers
        if isinstance(watchers, int):
            watchers = tuple(names[:watchers])
        elif watchers is not None:
            watchers = tuple(watchers)
        self._pool_deployment = PoolDeployment(
            seed=self._seed, dmon=self._dmon, modules=self._modules,
            all_names=tuple(names), monitored=tuple(monitored),
            watchers=watchers, batch=self._pool_batch,
            flow=self._pool_flow, use_uvloop=self._pool_uvloop)
        if len(slices) > 1:
            runtime.pool = LivePool(slices[1:],
                                    self._pool_deployment)
        return runtime

    def _resolve_hosts(self, group: NodeGroup) -> Optional[list[str]]:
        spec = self._monitor_hosts
        if spec is None:
            return None
        if isinstance(spec, int):
            return group.names[:spec]
        return list(spec)

    def _construct(self, runtime: Runtime) -> None:
        """Wire the world on a ready runtime (either backend).

        Construction order is frozen — cluster hooks, dproc
        deployment, tracer, faults, setup hooks — because on the
        simulator it fixes the event/RNG schedule that the golden
        pins assert.
        """
        self.runtime = runtime
        for fn in self._cluster_hooks:
            fn(self)
        hosts = self._resolve_hosts(runtime.nodes)
        bus = runtime.make_bus()
        if self._want_stream:
            # Attach before deployment so the very first submits (the
            # d-mon start-up polls) are already on the record.  Purely
            # passive: no RNG, CPU or event-schedule interaction.
            from repro.stream import (JsonlSink, StreamBroker,
                                      attach_stream)
            sink = (JsonlSink(self._stream_dir)
                    if self._stream_dir is not None else None)
            self._stream_broker = StreamBroker(
                sink=sink, max_len=self._stream_max_len)
            attach_stream(self._stream_broker, bus, runtime.nodes)
        config_fn = None
        if self._pool_deployment is not None:
            from repro.live.pool import watcher_config_fn
            config_fn = watcher_config_fn(
                self._dmon, self._pool_deployment.watchers)
        self.dprocs = deploy_dproc(
            runtime.nodes, config=self._dmon, modules=self._modules,
            bus=bus, hosts=hosts,
            module_factory=getattr(runtime, "module_factory", None),
            config_fn=config_fn)
        if self._pool_deployment is not None:
            # The parent slice's /proc trees must show the whole
            # cluster, including hosts that live in worker processes.
            for dproc in self.dprocs.values():
                for host in self._pool_deployment.all_names:
                    if host not in dproc._mounted_hosts:
                        dproc.add_cluster_node(host)
        if self._want_tracing:
            from repro.tracing import TraceCollector, attach_tracer
            self.tracer = (self._tracer_arg if self._tracer_arg
                           is not None
                           else TraceCollector(**self._tracer_kwargs))
            attach_tracer(runtime.nodes, self.tracer)
        if self._want_faults:
            from repro.sim.faults import FaultInjector
            self.faults = FaultInjector(runtime.nodes)
            for fn in self._fault_hooks:
                fn(self)
        for fn in self._setup_hooks:
            fn(self)
        if self._want_obs:
            # Last on purpose: the plane only reads, and its sampler is
            # a pure timer process, so attaching it after the frozen
            # order leaves the golden-pinned schedule untouched.
            self._obs_plane, self._obs_log = self._attach_obs(
                runtime.nodes, runtime.clock)
            if self._backend == "live" and self._obs_scrape is not None:
                from repro.live.scrape import ScrapeServer
                host, port = self._obs_scrape
                self.scrape = ScrapeServer(runtime.nodes,
                                           self._obs_plane,
                                           host=host, port=port)
                runtime.add_server(self.scrape)
        if self._experiments:
            # After the frozen order for the same reason as the obs
            # plane: engines add pure timer processes, so a scenario
            # with no experiments keeps a bit-identical schedule.
            for exp in self._experiments:
                self._attach_experiment(exp, runtime.nodes,
                                        runtime.clock)

    def _attach_obs(self, nodes, clock):
        """Build a plane over ``nodes`` and start its sampler."""
        from repro.obs import ObservabilityPlane
        from repro.stream import StreamBroker
        log = StreamBroker()
        plane = ObservabilityPlane(
            sample_interval=self._obs_interval,
            rules=self._obs_rules, health_log=log,
            **self._obs_kwargs)
        plane.bind(node.name for node in nodes)
        first = nodes[nodes.names[0]]
        first.spawn(plane.sampler(nodes, clock), name="obs-sampler")
        return plane, log

    def _attach_experiment(self, exp, nodes, clock) -> None:
        """Spawn one experiment engine on its observer node."""
        from repro.experiment import ExperimentEngine
        if not 0 <= exp.observer < len(nodes.names):
            raise ScenarioError(
                f"experiment {exp.name!r} observer index "
                f"{exp.observer} out of range")
        observer = nodes.names[exp.observer]
        dproc = self.dprocs.get(observer)
        if dproc is None:
            raise ScenarioError(
                f"experiment {exp.name!r} observer {observer!r} "
                f"runs no dproc (check monitor_hosts)")
        engine = ExperimentEngine(exp, dproc, clock)
        self._engines.append(engine)
        nodes[observer].spawn(engine.ticker(),
                              name=f"experiment-{exp.name}")

    def _global_names(self) -> list[str]:
        if self._names is not None:
            return list(self._names)
        from repro.sim.cluster import PAPER_NODE_NAMES
        return [PAPER_NODE_NAMES[i] if i < len(PAPER_NODE_NAMES)
                else f"node{i}" for i in range(self._nodes)]

    def _run_sharded(self, duration: float) -> "Scenario":
        """One-shot sharded run (``with_workers(n > 1)``)."""
        from repro.runtime.sharded import (ShardedFaultInjector,
                                           ShardedRuntime,
                                           _ShardDeployment)
        from repro.sim.topology import (DEFAULT_SHARD_LOOKAHEAD,
                                        partition_nodes)
        if self.runtime is not None:
            raise ScenarioError("a sharded scenario runs exactly once")
        if self._cluster_hooks:
            raise ScenarioError(
                "cluster-setup hooks rewire one fabric; a sharded "
                "run has one fabric per worker")
        wants_inline = bool(self._setup_hooks or self._fault_hooks
                            or self._want_faults or self._want_tracing
                            or self._want_stream or self._want_obs
                            or self._experiments)
        mode = self._workers_mode
        if mode == "auto":
            mode = "inline" if wants_inline else "processes"
        elif mode == "processes" and wants_inline:
            raise ScenarioError(
                "hooks, faults, tracing and streams close over parent "
                "state that forked workers cannot share back; use "
                "with_workers(..., mode='inline')")
        names = self._global_names()
        plan = partition_nodes(
            names, self._workers,
            lookahead=self._lookahead if self._lookahead is not None
            else DEFAULT_SHARD_LOOKAHEAD)
        monitored = self._monitor_hosts
        if monitored is None:
            monitored = names
        elif isinstance(monitored, int):
            monitored = names[:monitored]
        node_configs = (dict(zip(names, self._node_configs))
                        if self._node_configs is not None else None)
        deployment = _ShardDeployment(
            seed=self._seed, dmon=self._dmon, modules=self._modules,
            names=tuple(names), monitored=tuple(monitored),
            node_config=self._node_config,
            node_configs=node_configs)
        runtime = ShardedRuntime(plan=plan, deployment=deployment,
                                 processes=(mode == "processes"))
        self.runtime = runtime
        self._duration = duration
        if mode == "inline":
            runtime.build_worlds(duration)
            self.dprocs = runtime.dprocs
            if self._want_stream:
                from repro.stream import StreamBroker, attach_stream
                for world in runtime.worlds:
                    broker = StreamBroker(max_len=self._stream_max_len)
                    attach_stream(broker, world.bus, world.cluster)
                    self._shard_brokers.append(broker)
            if self._want_tracing:
                from repro.tracing import TraceCollector, attach_tracer
                self.tracer = (self._tracer_arg if self._tracer_arg
                               is not None
                               else TraceCollector(
                                   **self._tracer_kwargs))
                attach_tracer(runtime.nodes, self.tracer)
            if self._want_faults:
                self.faults = ShardedFaultInjector(plan,
                                                   runtime.worlds)
                for fn in self._fault_hooks:
                    fn(self)
            for fn in self._setup_hooks:
                fn(self)
            if self._want_obs:
                # One plane per shard world, merged on .obs access —
                # same shape as the per-shard stream brokers.
                for world in runtime.worlds:
                    plane, log = self._attach_obs(world.cluster,
                                                  world.env)
                    self._shard_planes.append(plane)
                    self._shard_obs_logs.append(log)
            if self._experiments:
                # Same placement rule as the unsharded path; the
                # engine lives in the observer's shard and adapts
                # remote shards through the cross-shard conduit.
                from repro.experiment import ExperimentEngine
                for exp in self._experiments:
                    if not 0 <= exp.observer < len(names):
                        raise ScenarioError(
                            f"experiment {exp.name!r} observer index "
                            f"{exp.observer} out of range")
                    observer = names[exp.observer]
                    dproc = self.dprocs.get(observer)
                    if dproc is None:
                        raise ScenarioError(
                            f"experiment {exp.name!r} observer "
                            f"{observer!r} runs no dproc")
                    world = next(w for w in runtime.worlds
                                 if observer in w.cluster.names)
                    engine = ExperimentEngine(exp, dproc, world.env)
                    self._engines.append(engine)
                    world.cluster[observer].spawn(
                        engine.ticker(),
                        name=f"experiment-{exp.name}")
        runtime.run(duration)
        return self
